//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no network access, so the small
//! slice of the rand 0.9 API that the workspace actually uses is vendored here:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::random`], [`Rng::random_range`] and
//!   [`Rng::random_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a seeded deterministic generator (xoshiro256**).
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12): streams produced
//! for a given seed differ from the real crate. Nothing in this workspace
//! depends on the exact stream — seeds only make experiments reproducible
//! within the workspace itself.

#![warn(missing_docs)]

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (e.g. `rng.random_range(0..n)`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from fixed-size seeds, with the derived
/// [`SeedableRng::seed_from_u64`] convenience constructor.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in bytes.chunks_mut(8) {
            let word = sm.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Standard-distribution sampling for primitive types.
pub trait SampleStandard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Samples uniformly from `[0, len)` by widening multiplication (Lemire);
/// the modulo bias is below 2⁻⁶⁴·len, negligible for every use here.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, len: u64) -> u64 {
    ((rng.next_u64() as u128 * len as u128) >> 64) as u64
}

macro_rules! impl_range {
    ($t:ty) => {
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let len = (self.end - self.start) as u64;
                self.start + sample_below(rng, len) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let len = (end - start) as u64 + 1;
                start + sample_below(rng, len) as $t
            }
        }
    };
}

impl_range!(usize);
impl_range!(u64);
impl_range!(u32);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn range_sampling_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(5..17usize);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn unsized_rng_usable_through_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
    }
}
