//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand small seeds into full generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next word of the stream.
    pub fn next_word(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard deterministic generator (xoshiro256**).
///
/// Fast, passes standard statistical test batteries, and is seeded through
/// [`SeedableRng::seed_from_u64`] exactly like the real `StdRng` — but the
/// output stream differs from upstream `rand` (which uses ChaCha12).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
