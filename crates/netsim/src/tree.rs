//! Spanning trees, the terminal-tree construction of Section 3.3, and the
//! proof-labelling scheme of Lemma 18.
//!
//! The general-graph dQMA protocols (Algorithms 5, 8 and 9 of the paper) do
//! not run on the raw network: the prover announces a spanning tree `T`
//! rooted at the most central terminal, with all terminals as leaves, depth at
//! most `r + 1` and maximum degree at most `t`. The nodes verify the
//! announced tree with a classical deterministic proof-labelling scheme
//! (Lemma 18, from Korman–Kutten–Peleg) and then run the quantum protocol on
//! the tree. This module implements both the construction and the
//! verification.

use crate::graph::Graph;

/// A rooted spanning tree of (a subset of) a graph's nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningTree {
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<Option<usize>>,
    num_graph_nodes: usize,
}

impl SpanningTree {
    /// Builds the BFS spanning tree of a connected graph rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `root` is out of range.
    pub fn bfs(graph: &Graph, root: usize) -> Self {
        Self::bfs_inner(graph, root, None)
    }

    /// As [`SpanningTree::bfs`], but breaking the parent-choice ties of the
    /// BFS layer-by-layer sweep with a seeded permutation of each node's
    /// neighbour list. Depths are unchanged (BFS layering is order-free), so
    /// every §3.3 depth bound still holds — only *which* shortest-path tree
    /// is announced varies with `seed`. This is the re-randomisation hook of
    /// the peer-churn runtime: a supervisor can re-announce a fresh spanning
    /// tree mid-workload without touching the underlying graph.
    pub fn bfs_seeded(graph: &Graph, root: usize, seed: u64) -> Self {
        Self::bfs_inner(graph, root, Some(seed))
    }

    fn bfs_inner(graph: &Graph, root: usize, seed: Option<u64>) -> Self {
        assert!(root < graph.num_nodes(), "root out of range");
        assert!(
            graph.is_connected(),
            "BFS spanning tree requires a connected graph"
        );
        let n = graph.num_nodes();
        let mut rng = seed.map(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64);
        let mut parent = vec![None; n];
        let mut depth = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut queue = std::collections::VecDeque::new();
        let mut nbrs: Vec<usize> = Vec::new();
        depth[root] = Some(0);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            nbrs.clear();
            nbrs.extend_from_slice(graph.neighbors(u));
            if let Some(rng) = rng.as_mut() {
                // Fisher–Yates with the vendored generator (no shuffle
                // adaptor in the stub).
                for i in (1..nbrs.len()).rev() {
                    let j = (rand::Rng::random::<u64>(rng) % (i as u64 + 1)) as usize;
                    nbrs.swap(i, j);
                }
            }
            for &v in &nbrs {
                if depth[v].is_none() {
                    depth[v] = Some(depth[u].expect("queued node has depth") + 1);
                    parent[v] = Some(u);
                    children[u].push(v);
                    queue.push_back(v);
                }
            }
        }
        SpanningTree {
            root,
            parent,
            children,
            depth,
            num_graph_nodes: n,
        }
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The parent of `v` (`None` for the root or for nodes not in the tree).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// The children of `v` in the tree.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// The depth of `v` (`None` if `v` is not in the tree).
    pub fn depth(&self, v: usize) -> Option<usize> {
        self.depth[v]
    }

    /// Returns `true` if `v` belongs to the tree.
    pub fn contains(&self, v: usize) -> bool {
        self.depth[v].is_some()
    }

    /// Returns `true` if `v` is a leaf of the tree.
    pub fn is_leaf(&self, v: usize) -> bool {
        self.contains(v) && self.children[v].is_empty() && v != self.root
    }

    /// Maximum depth over the tree.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }

    /// All nodes currently in the tree.
    pub fn nodes(&self) -> Vec<usize> {
        (0..self.num_graph_nodes)
            .filter(|&v| self.contains(v))
            .collect()
    }

    /// The path from `v` to the root (inclusive of both).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn path_to_root(&self, v: usize) -> Vec<usize> {
        assert!(self.contains(v), "node {v} is not in the tree");
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Removes the subtree strictly below every node for which `keep` returns
    /// `false` on *all* nodes of that subtree, keeping exactly the nodes that
    /// are ancestors of (or equal to) a node satisfying `keep`.
    pub fn prune_to_ancestors_of(&mut self, keep: impl Fn(usize) -> bool) {
        // Mark nodes whose subtree contains a kept node, by processing nodes in
        // decreasing depth order.
        let mut order: Vec<usize> = self.nodes();
        order.sort_by_key(|&v| std::cmp::Reverse(self.depth[v]));
        let n = self.num_graph_nodes;
        let mut marked = vec![false; n];
        for &v in &order {
            if keep(v) || self.children[v].iter().any(|&c| marked[c]) {
                marked[v] = true;
            }
        }
        // Drop unmarked nodes.
        for (v, &kept) in marked.iter().enumerate() {
            if self.contains(v) && !kept {
                self.depth[v] = None;
                self.parent[v] = None;
                self.children[v].clear();
            }
        }
        for v in 0..n {
            self.children[v].retain(|&c| marked[c]);
        }
    }

    /// Maximum number of children over nodes in the tree.
    pub fn max_children(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of nodes of the underlying graph (not all of which need be in
    /// the tree after pruning).
    pub fn num_graph_nodes(&self) -> usize {
        self.num_graph_nodes
    }
}

/// A logical node of a [`TerminalTree`]: either a real graph node or the
/// virtual relay copy `u'_i` of a terminal that was not a leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// The physical graph node that simulates this logical node.
    pub physical: usize,
    /// Whether this is a virtual relay copy inserted by the construction.
    pub is_virtual: bool,
}

/// The tree constructed in Section 3.3 of the paper: rooted at the most
/// central terminal, all terminals appear as leaves, depth at most `r + 1`.
///
/// Logical nodes are indexed `0..num_nodes()`; each maps to a physical graph
/// node via [`TerminalTree::node`]. A physical node may simulate up to two
/// logical nodes (a non-leaf terminal and its virtual relay copy), which by
/// the paper's argument does not affect completeness or soundness.
#[derive(Clone, Debug)]
pub struct TerminalTree {
    nodes: Vec<TreeNode>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    depth: Vec<usize>,
    root: usize,
    /// terminal_leaf[i] = logical index of the leaf holding terminal i's input.
    terminal_leaves: Vec<usize>,
}

impl TerminalTree {
    /// Builds the terminal tree for the given terminals following §3.3:
    ///
    /// 1. pick the most central terminal `u_1` as root,
    /// 2. take the BFS tree from `u_1`,
    /// 3. truncate below terminals that have no terminal descendants,
    /// 4. give every non-leaf terminal a virtual relay copy so that all
    ///    terminals become leaves.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than 2 terminals, if terminals repeat, or if
    /// the graph is disconnected.
    pub fn build(graph: &Graph, terminals: &[usize]) -> Self {
        Self::build_inner(graph, terminals, None)
    }

    /// As [`TerminalTree::build`], but with the underlying BFS tree drawn by
    /// [`SpanningTree::bfs_seeded`]: the root choice and every depth bound
    /// are unchanged, while the announced shortest-path tree varies with
    /// `seed`. Used by the churn runtime to re-randomise the §3.3 tree
    /// mid-workload.
    pub fn build_seeded(graph: &Graph, terminals: &[usize], seed: u64) -> Self {
        Self::build_inner(graph, terminals, Some(seed))
    }

    fn build_inner(graph: &Graph, terminals: &[usize], seed: Option<u64>) -> Self {
        assert!(terminals.len() >= 2, "need at least two terminals");
        for (i, &t) in terminals.iter().enumerate() {
            assert!(t < graph.num_nodes(), "terminal {t} out of range");
            assert!(!terminals[(i + 1)..].contains(&t), "duplicate terminal {t}");
        }
        let root_terminal = graph.most_central_of(terminals);
        let mut bfs = match seed {
            Some(s) => SpanningTree::bfs_seeded(graph, root_terminal, s),
            None => SpanningTree::bfs(graph, root_terminal),
        };
        // Keep only ancestors of terminals.
        let term_set: Vec<bool> = {
            let mut s = vec![false; graph.num_nodes()];
            for &t in terminals {
                s[t] = true;
            }
            s
        };
        bfs.prune_to_ancestors_of(|v| term_set[v]);

        // Convert to logical nodes, inserting virtual relay copies for
        // non-leaf terminals (including the root terminal).
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut parent: Vec<Option<usize>> = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        let mut depth: Vec<usize> = Vec::new();
        let mut logical_of_physical: Vec<Option<usize>> = vec![None; graph.num_nodes()];

        // First pass: create one logical node per kept physical node, in BFS order
        // (parents before children).
        let mut order: Vec<usize> = bfs.nodes();
        order.sort_by_key(|&v| bfs.depth(v));
        for &v in &order {
            let idx = nodes.len();
            logical_of_physical[v] = Some(idx);
            nodes.push(TreeNode {
                physical: v,
                is_virtual: false,
            });
            depth.push(bfs.depth(v).expect("kept node has depth"));
            parent.push(
                bfs.parent(v)
                    .map(|p| logical_of_physical[p].expect("parent precedes child")),
            );
            children.push(Vec::new());
        }
        for (idx, maybe_parent) in parent.iter().enumerate() {
            if let Some(p) = *maybe_parent {
                children[p].push(idx);
            }
        }

        // Second pass: for every terminal that is not a leaf of the pruned tree,
        // swap roles: the existing logical node becomes the virtual relay copy
        // u'_i (it keeps the tree position), and a fresh leaf logical node is
        // attached below it to hold the terminal's input.
        let mut terminal_leaves = vec![usize::MAX; terminals.len()];
        for (i, &t) in terminals.iter().enumerate() {
            let idx = logical_of_physical[t].expect("terminal kept in pruned tree");
            let is_leaf_here = children[idx].is_empty() && parent[idx].is_some();
            if is_leaf_here {
                terminal_leaves[i] = idx;
            } else {
                // idx becomes the virtual relay u'_i; attach the true terminal leaf.
                nodes[idx].is_virtual = true;
                let leaf = nodes.len();
                nodes.push(TreeNode {
                    physical: t,
                    is_virtual: false,
                });
                depth.push(depth[idx] + 1);
                parent.push(Some(idx));
                children.push(Vec::new());
                children[idx].push(leaf);
                terminal_leaves[i] = leaf;
            }
        }

        let root = logical_of_physical[root_terminal].expect("root kept");
        TerminalTree {
            nodes,
            parent,
            children,
            depth,
            root,
            terminal_leaves,
        }
    }

    /// Number of logical nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The logical node descriptor.
    pub fn node(&self, idx: usize) -> TreeNode {
        self.nodes[idx]
    }

    /// The logical root index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of a logical node.
    pub fn parent(&self, idx: usize) -> Option<usize> {
        self.parent[idx]
    }

    /// Children of a logical node.
    pub fn children(&self, idx: usize) -> &[usize] {
        &self.children[idx]
    }

    /// Depth of a logical node (root has depth 0).
    pub fn depth(&self, idx: usize) -> usize {
        self.depth[idx]
    }

    /// Maximum depth of the tree.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of children of any logical node.
    pub fn max_children(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The logical leaf holding terminal `i`'s input.
    pub fn terminal_leaf(&self, i: usize) -> usize {
        self.terminal_leaves[i]
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminal_leaves.len()
    }

    /// The logical leaves holding the terminals' inputs, in terminal order.
    pub fn terminal_leaves(&self) -> &[usize] {
        &self.terminal_leaves
    }

    /// Returns `true` if the logical node is a leaf.
    pub fn is_leaf(&self, idx: usize) -> bool {
        self.children[idx].is_empty() && idx != self.root
    }

    /// The logical nodes in post-order (every node after all of its
    /// descendants) — the order in which a bottom-up protocol sweep can run
    /// each node's permutation test after all of its children have forwarded
    /// their registers.
    pub fn post_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit visited flag per stack entry.
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                out.push(v);
            } else {
                stack.push((v, true));
                for &c in &self.children[v] {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// The logical path from a leaf up to the root (inclusive).
    pub fn path_to_root(&self, idx: usize) -> Vec<usize> {
        let mut path = vec![idx];
        let mut cur = idx;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }
}

/// The per-node label of the Lemma 18 proof-labelling scheme for a spanning
/// tree: each node is told the root identifier, its distance to the root and
/// its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeLabel {
    /// Claimed identifier of the tree root.
    pub root_id: usize,
    /// Claimed distance from this node to the root.
    pub dist: usize,
    /// Claimed parent of this node (`None` for the root).
    pub parent: Option<usize>,
}

/// The honest Lemma 18 proof for a full BFS spanning tree: one label per node.
pub fn tree_proof(tree: &SpanningTree) -> Vec<TreeLabel> {
    (0..tree.num_graph_nodes())
        .map(|v| TreeLabel {
            root_id: tree.root(),
            dist: tree.depth(v).unwrap_or(usize::MAX),
            parent: tree.parent(v),
        })
        .collect()
}

/// Size in bits of one [`TreeLabel`] for a graph on `n` nodes: `O(log n)`.
pub fn tree_label_bits(n: usize) -> usize {
    let log = (usize::BITS - n.next_power_of_two().leading_zeros()) as usize;
    3 * log
}

/// Locally verifies a claimed spanning-tree labelling (Lemma 18): every node
/// checks its own label against its neighbours' labels. Returns the per-node
/// accept decisions; the labelling encodes a spanning tree rooted at the
/// common `root_id` if and only if every node accepts.
pub fn verify_tree_proof(graph: &Graph, labels: &[TreeLabel]) -> Vec<bool> {
    let n = graph.num_nodes();
    assert_eq!(labels.len(), n, "one label per node required");
    (0..n)
        .map(|v| {
            let l = labels[v];
            // Root id must be consistent with every neighbour.
            if graph
                .neighbors(v)
                .iter()
                .any(|&u| labels[u].root_id != l.root_id)
            {
                return false;
            }
            match l.parent {
                None => {
                    // Claims to be the root.
                    l.dist == 0 && l.root_id == v
                }
                Some(p) => {
                    // Parent must be an adjacent node one step closer to the root.
                    graph.has_edge(v, p) && l.dist == labels[p].dist + 1 && l.dist > 0
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn bfs_tree_on_path() {
        let g = topology::path(4);
        let t = SpanningTree::bfs(&g, 0);
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(4), Some(4));
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.children(2), &[3]);
        assert!(t.is_leaf(4));
        assert_eq!(t.max_depth(), 4);
    }

    #[test]
    fn bfs_tree_spans_connected_graph() {
        let g = topology::random_connected(20, 0.2, 5);
        let t = SpanningTree::bfs(&g, 3);
        assert_eq!(t.nodes().len(), 20);
        // Every non-root node has a parent that is adjacent in the graph.
        for v in t.nodes() {
            if v != 3 {
                let p = t.parent(v).expect("non-root has parent");
                assert!(g.has_edge(v, p));
                assert_eq!(t.depth(v), Some(t.depth(p).unwrap() + 1));
            }
        }
    }

    #[test]
    fn prune_keeps_only_ancestors_of_marked() {
        let g = topology::star(5);
        let mut t = SpanningTree::bfs(&g, 0);
        t.prune_to_ancestors_of(|v| v == 2 || v == 4);
        let mut kept = t.nodes();
        kept.sort();
        assert_eq!(kept, vec![0, 2, 4]);
    }

    #[test]
    fn terminal_tree_on_path_keeps_endpoints_as_leaves() {
        let g = topology::path(6);
        let tt = TerminalTree::build(&g, &[0, 6]);
        // The root is the most central terminal (an endpoint here, dist 6).
        let root_phys = tt.node(tt.root()).physical;
        assert!(root_phys == 0 || root_phys == 6);
        // Both terminals appear as leaves.
        for i in 0..2 {
            let leaf = tt.terminal_leaf(i);
            assert!(tt.is_leaf(leaf) || leaf == tt.root());
        }
        // Depth is at most r + 1 = 7.
        assert!(tt.max_depth() <= 7);
    }

    #[test]
    fn terminal_tree_on_spider_has_all_terminals_as_leaves() {
        let g = topology::spider(4, 3);
        let terminals: Vec<usize> = (0..4).map(|k| topology::spider_leaf(k, 3)).collect();
        let tt = TerminalTree::build(&g, &terminals);
        for (i, &t) in terminals.iter().enumerate() {
            let leaf = tt.terminal_leaf(i);
            assert!(tt.children(leaf).is_empty(), "terminal {i} must be a leaf");
            assert_eq!(tt.node(leaf).physical, t);
        }
        assert!(tt.max_depth() <= g.radius() + 1 + 3); // depth bounded by eccentricity of root terminal + 1
    }

    #[test]
    fn terminal_tree_with_internal_terminal_gets_virtual_copy() {
        // Path 0-1-2-3-4 with terminals 0, 2, 4: terminal 2 is internal.
        let g = topology::path(4);
        let tt = TerminalTree::build(&g, &[0, 2, 4]);
        // Terminal 2 is the most central, so it is the root; it must still own a leaf.
        let root = tt.root();
        assert_eq!(tt.node(root).physical, 2);
        assert!(
            tt.node(root).is_virtual,
            "root position is the virtual relay copy"
        );
        let leaf_idx = tt.terminal_leaf(1);
        assert_eq!(tt.node(leaf_idx).physical, 2);
        assert!(!tt.node(leaf_idx).is_virtual);
        assert!(tt.children(leaf_idx).is_empty());
        // Depth grew by at most 1 over the pruned BFS tree.
        assert!(tt.max_depth() <= g.radius() + 1 + 1);
    }

    #[test]
    fn terminal_tree_prunes_irrelevant_branches() {
        // A star with 6 leaves but only 2 terminals: other leaves are pruned.
        let g = topology::star(6);
        let tt = TerminalTree::build(&g, &[1, 2]);
        // Logical nodes: the two terminals plus possibly the centre and a virtual copy.
        assert!(tt.num_nodes() <= 4);
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let g = topology::spider(3, 2);
        let terminals: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 2)).collect();
        let tt = TerminalTree::build(&g, &terminals);
        let order = tt.post_order();
        assert_eq!(
            order.len(),
            tt.num_nodes(),
            "post-order must visit every node once"
        );
        let position = |v: usize| order.iter().position(|&x| x == v).unwrap();
        for v in 0..tt.num_nodes() {
            for &c in tt.children(v) {
                assert!(
                    position(c) < position(v),
                    "child {c} must precede parent {v}"
                );
            }
        }
        assert_eq!(*order.last().unwrap(), tt.root());
    }

    #[test]
    fn honest_tree_proof_verifies() {
        let g = topology::random_connected(12, 0.3, 9);
        let t = SpanningTree::bfs(&g, 2);
        let labels = tree_proof(&t);
        let verdicts = verify_tree_proof(&g, &labels);
        assert!(
            verdicts.iter().all(|&b| b),
            "honest proof must be accepted everywhere"
        );
    }

    #[test]
    fn forged_tree_proof_is_rejected_somewhere() {
        let g = topology::path(5);
        let t = SpanningTree::bfs(&g, 0);
        let mut labels = tree_proof(&t);
        // Forge: claim node 3's parent is node 5 (not adjacent).
        labels[3].parent = Some(5);
        let verdicts = verify_tree_proof(&g, &labels);
        assert!(!verdicts[3]);
        // Forge: two different roots.
        let mut labels2 = tree_proof(&t);
        labels2[5] = TreeLabel {
            root_id: 5,
            dist: 0,
            parent: None,
        };
        let verdicts2 = verify_tree_proof(&g, &labels2);
        assert!(verdicts2.iter().any(|&b| !b));
    }

    #[test]
    fn cycle_proof_without_root_is_rejected() {
        // A labelling where everyone has a parent (no root) must be rejected:
        // distances cannot all decrease along a cycle.
        let g = topology::cycle(4);
        let labels = vec![
            TreeLabel {
                root_id: 0,
                dist: 1,
                parent: Some(1),
            },
            TreeLabel {
                root_id: 0,
                dist: 1,
                parent: Some(2),
            },
            TreeLabel {
                root_id: 0,
                dist: 1,
                parent: Some(3),
            },
            TreeLabel {
                root_id: 0,
                dist: 1,
                parent: Some(0),
            },
        ];
        let verdicts = verify_tree_proof(&g, &labels);
        assert!(verdicts.iter().any(|&b| !b));
    }

    #[test]
    fn tree_label_bits_grow_logarithmically() {
        assert!(tree_label_bits(1024) <= 3 * 11);
        assert!(tree_label_bits(16) < tree_label_bits(1 << 20));
    }
}
