//! Undirected simple graphs and their metric structure.
//!
//! The dQMA model places verifier nodes on a connected simple graph; the
//! quantities that enter every cost bound are the radius `r` (eccentricity of
//! the most central node) and pairwise distances. This module provides the
//! graph type plus BFS-based metric queries.

use std::collections::VecDeque;
use std::fmt;

/// An undirected simple graph on nodes `0..n`.
///
/// # Examples
///
/// ```
/// use netsim::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.distance(0, 3), Some(3));
/// assert_eq!(g.radius(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge between `u` and `v`.
    ///
    /// Self-loops and duplicate edges are ignored (the graph stays simple).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u == v || self.adj[u].contains(&v) {
            return;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns an iterator over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// BFS distances from `source`; unreachable nodes get `None`.
    pub fn bfs_distances(&self, source: usize) -> Vec<Option<usize>> {
        assert!(source < self.n, "source out of range");
        let mut dist = vec![None; self.n];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued node has a distance");
            for &v in &self.adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest-path distance between `u` and `v`, if connected.
    pub fn distance(&self, u: usize, v: usize) -> Option<usize> {
        self.bfs_distances(u)[v]
    }

    /// Returns `true` when the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(Option::is_some)
    }

    /// Eccentricity of `u`: the maximum distance from `u` to any node.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn eccentricity(&self, u: usize) -> usize {
        self.bfs_distances(u)
            .iter()
            .map(|d| d.expect("eccentricity requires a connected graph"))
            .max()
            .unwrap_or(0)
    }

    /// Radius of the graph: `min_u max_v dist(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or empty.
    pub fn radius(&self) -> usize {
        assert!(self.n > 0, "radius of an empty graph");
        (0..self.n)
            .map(|u| self.eccentricity(u))
            .min()
            .expect("non-empty")
    }

    /// Diameter of the graph: `max_u max_v dist(u, v)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or empty.
    pub fn diameter(&self) -> usize {
        assert!(self.n > 0, "diameter of an empty graph");
        (0..self.n)
            .map(|u| self.eccentricity(u))
            .max()
            .expect("non-empty")
    }

    /// A node achieving the radius (a centre of the graph).
    pub fn center(&self) -> usize {
        (0..self.n)
            .min_by_key(|&u| self.eccentricity(u))
            .expect("center of an empty graph")
    }

    /// The node among `candidates` minimising the maximum distance to the
    /// other candidates (used in the paper's §3.3 construction to pick the
    /// most central terminal).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or contains out-of-range nodes.
    pub fn most_central_of(&self, candidates: &[usize]) -> usize {
        assert!(
            !candidates.is_empty(),
            "most_central_of requires candidates"
        );
        *candidates
            .iter()
            .min_by_key(|&&u| {
                let d = self.bfs_distances(u);
                candidates
                    .iter()
                    .map(|&v| d[v].expect("candidates must be connected"))
                    .max()
                    .unwrap_or(0)
            })
            .expect("non-empty candidates")
    }

    /// A shortest path between two mutually eccentric nodes, found with the
    /// double-BFS sweep: start from node 0, take a farthest node `u`, then a
    /// node `v` farthest from `u`, and return the `u`–`v` path (inclusive).
    /// On trees this realises the diameter exactly; on general connected
    /// graphs it is the standard 2-approximation. Used by the adversarial
    /// sweeps to extract the longest relay line a random topology embeds.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or disconnected.
    pub fn peripheral_path(&self) -> Vec<usize> {
        assert!(self.n > 0, "peripheral_path of an empty graph");
        let far_from = |s: usize| -> usize {
            self.bfs_distances(s)
                .iter()
                .enumerate()
                .max_by_key(|(_, d)| d.expect("peripheral_path requires a connected graph"))
                .map(|(v, _)| v)
                .expect("non-empty")
        };
        let u = far_from(0);
        let v = far_from(u);
        self.shortest_path(u, v)
            .expect("connected graph has a path between any two nodes")
    }

    /// One shortest path from `u` to `v` (inclusive of both endpoints).
    ///
    /// Returns `None` when `v` is unreachable from `u`.
    pub fn shortest_path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        let mut prev = vec![usize::MAX; self.n];
        let mut dist = vec![None; self.n];
        let mut queue = VecDeque::new();
        dist[u] = Some(0);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                break;
            }
            let dx = dist[x].expect("queued node has distance");
            for &y in &self.adj[x] {
                if dist[y].is_none() {
                    dist[y] = Some(dx + 1);
                    prev[y] = x;
                    queue.push_back(y);
                }
            }
        }
        dist[v]?;
        let mut path = vec![v];
        let mut cur = v;
        while cur != u {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peripheral_path_on_path_graph_is_the_whole_path() {
        let g = path_graph(6);
        let p = g.peripheral_path();
        assert_eq!(p.len(), 7);
        assert_eq!(p.len() - 1, g.diameter());
    }

    #[test]
    fn peripheral_path_on_star_spans_two_leaves() {
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_edge(0, leaf);
        }
        let p = g.peripheral_path();
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], 0);
        assert_ne!(p[0], p[2]);
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::new(len + 1);
        for i in 0..len {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn path_metric() {
        let g = path_graph(4);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.distance(0, 4), Some(4));
        assert_eq!(g.radius(), 2);
        assert_eq!(g.diameter(), 4);
        assert_eq!(g.center(), 2);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn star_radius_is_one() {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(0, i);
        }
        assert_eq!(g.radius(), 1);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.center(), 0);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
        assert_eq!(g.distance(0, 3), None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_graph(5);
        let p = g.shortest_path(1, 4).expect("connected");
        assert_eq!(p.first(), Some(&1));
        assert_eq!(p.last(), Some(&4));
        assert_eq!(p.len(), 4);
        // Consecutive path nodes are adjacent.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn most_central_of_terminals_on_a_path() {
        let g = path_graph(6);
        assert_eq!(g.most_central_of(&[0, 6]), 0); // either endpoint ties; min index wins
        assert_eq!(g.most_central_of(&[0, 3, 6]), 3);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::new(1);
        assert!(g.is_connected());
        assert_eq!(g.radius(), 0);
        assert_eq!(g.eccentricity(0), 0);
    }

    #[test]
    fn edges_listing() {
        let g = path_graph(3);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }
}
