//! # netsim — network substrate for distributed verification protocols
//!
//! The dQMA protocols of *Hasegawa, Kundu, Nishimura — "On the Power of
//! Quantum Distributed Proofs"* (PODC 2024) run on a connected network of
//! verifier nodes. This crate provides:
//!
//! * the graph model with the metric quantities entering every bound
//!   (radius, eccentricities, distances) — [`graph`];
//! * standard topologies: paths, stars, spiders, grids, random trees and
//!   connected random graphs — [`topology`];
//! * the spanning-tree construction of the paper's Section 3.3 (root at the
//!   most central terminal, terminals as leaves, depth ≤ r + 1) and the
//!   Lemma 18 proof-labelling scheme that lets nodes verify an announced
//!   tree — [`tree`];
//! * cost accounting for proofs and messages matching Definitions 5–8 —
//!   [`transcript`];
//! * a message-passing transport layer with deterministic fault injection —
//!   [`transport`].
//!
//! # Transport and fault model
//!
//! The [`transport`] module replaces the synchronous in-process transcript
//! model with genuine per-node message passing: protocols exchange
//! sequence-numbered [`transport::Envelope`]s (`src`, `dst`, `seq`,
//! `attempt`, 64-bit payload) over a [`transport::Transport`] — either plain
//! in-memory mailboxes ([`transport::ChannelTransport`]) or the same
//! mailboxes wrapped in a seeded [`transport::FaultyTransport`] that injects
//! drops, acknowledgement loss, latency/reordering, duplication, partitions
//! and node crash/restart from a [`transport::FaultPlan`]. Delivery is
//! idempotent (receivers deduplicate on `(src, seq)`), timeouts and
//! exponential-backoff retries run on a *virtual* clock, and every fault
//! decision is a pure hash of the trial salt and the message identity — so a
//! trial is bit-reproducible at any worker count. Rounds that exhaust their
//! retry budget degrade gracefully to
//! [`transport::RoundOutcome::Aborted`] with a [`transport::FaultReport`]
//! carrying the partial [`CostTracker`] state of the affected verifier.
//!
//! # Example
//!
//! ```
//! use netsim::{topology, tree::TerminalTree};
//!
//! // Terminals on three legs of a spider; all of them become leaves of the
//! // announced tree and the depth stays within radius + 1.
//! let g = topology::spider(3, 2);
//! let terminals: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 2)).collect();
//! let t = TerminalTree::build(&g, &terminals);
//! assert!(t.max_depth() <= g.radius() + 1 + 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod policy;
pub mod tcp;
pub mod topology;
pub mod transcript;
pub mod transport;
pub mod tree;

pub use graph::Graph;
pub use policy::RetryPolicy;
pub use tcp::TcpTransport;
pub use transcript::{CostTracker, ProtocolCosts};
pub use transport::{
    ChannelTransport, CrashWindow, Envelope, FaultCause, FaultPlan, FaultReport, FaultyTransport,
    LocalChannelTransport, NodeId, PartitionWindow, RoundOutcome, Transport, VTime,
};
pub use tree::{SpanningTree, TerminalTree, TreeLabel};
