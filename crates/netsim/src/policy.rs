//! Retry/timeout/backoff policy — the single consumer surface shared by the
//! virtual-clock robustness layer ([`crate::transport::robust_send`] /
//! [`crate::transport::robust_recv`]) and the wall-clock TCP reconnect path
//! ([`crate::tcp::TcpTransport`]).
//!
//! Every robust operation in the workspace follows the same bounded
//! exponential-backoff discipline: attempt `i` (0-based) is granted a window
//! of `base_timeout << min(i, 16)` virtual nanoseconds, widened by a
//! *deterministic* jitter of at most `jitter` times the window, derived by
//! hashing the message identity (the standard decorrelation trick, made
//! reproducible — no wall clock, no shared RNG). A retry schedule is
//! therefore a pure function of `(policy, salt, message identity)`: replays
//! cannot drift, and the schedule is identical whether the transport is an
//! in-memory mailbox on a virtual clock or a real socket whose waits are the
//! virtual windows scaled to wall time.
//!
//! The schedule's two invariants, pinned by the unit tests below:
//!
//! * **Jitter bounds** — for every attempt `i`,
//!   `unjittered(i) <= timeout_for(i, h) <= jitter_ceiling(i)`, with the
//!   jittered value a deterministic function of `h`.
//! * **Deadline-extension bound** — a full retry cycle extends a deadline by
//!   at most [`RetryPolicy::virtual_budget`], the sum of the per-attempt
//!   ceilings. Crash-restart horizons (and the TCP wall-clock waits derived
//!   from them) are sized against this bound.

use crate::transport::VTime;

/// SplitMix64 finalizer: a high-quality 64-bit mixer used for all
/// per-message fault and jitter decisions.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)` (same construction as the
/// vendored rand's `f64` sampler).
#[inline]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-message timeout and bounded exponential-backoff retry schedule.
///
/// Attempt `i` (0-based) waits `base_timeout << min(i, 16)` virtual ns, plus
/// a deterministic jitter of up to `jitter * timeout` derived by hashing the
/// message identity — the standard decorrelation trick, made reproducible.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Timeout of the first attempt (virtual ns).
    pub base_timeout: VTime,
    /// Total attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// Jitter fraction in `[0, 1]` applied to each attempt's timeout.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: 4096,
            max_attempts: 5,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// The exponential (un-jittered) timeout of 0-based attempt `attempt`:
    /// `base_timeout << min(attempt, 16)`, saturating.
    #[inline]
    pub fn unjittered(&self, attempt: u32) -> VTime {
        self.base_timeout << attempt.min(16)
    }

    /// The (jittered) timeout of 0-based attempt `attempt`; `h` seeds the
    /// jitter hash.
    ///
    /// The jitter draw mixes *both* the message identity and the attempt
    /// index (`h ^ (attempt + 1) · φ64`), so two retries of the same message
    /// draw independent fractions. Hashing only `h` would re-apply the same
    /// fraction on every attempt, and a burst of peers that timed out
    /// together would retry in lock-step forever — the synchronized retry
    /// storm jitter exists to break up.
    #[inline]
    pub fn timeout_for(&self, attempt: u32, h: u64) -> VTime {
        let base = self.unjittered(attempt);
        if self.jitter == 0.0 {
            base
        } else {
            let salt = (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            base.saturating_add((base as f64 * self.jitter * unit(mix64(h ^ salt))) as VTime)
        }
    }

    /// Upper bound on [`RetryPolicy::timeout_for`] over every jitter hash:
    /// `unjittered(attempt) * (1 + jitter)`, saturating. The jitter draw is
    /// uniform in `[0, 1)`, so the bound is tight but never attained.
    #[inline]
    pub fn jitter_ceiling(&self, attempt: u32) -> VTime {
        let base = self.unjittered(attempt);
        base.saturating_add((base as f64 * self.jitter) as VTime)
    }

    /// Upper bound on the total virtual time one robust operation can
    /// consume before reporting failure: the sum of the per-attempt jitter
    /// ceilings over all `max_attempts` attempts (saturating).
    ///
    /// Crash-restart horizons and the TCP supervisor's collection timeouts
    /// are sized against this budget: a surviving node stalls on a dead peer
    /// for at most `virtual_budget()` virtual ns before surfacing a
    /// [`crate::transport::FaultCause`].
    #[inline]
    pub fn virtual_budget(&self) -> VTime {
        (0..self.max_attempts).fold(0, |acc: VTime, i| {
            acc.saturating_add(self.jitter_ceiling(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 0..policy.max_attempts {
            for h in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let t = policy.timeout_for(attempt, h);
                // Deterministic: same (attempt, h) -> same timeout.
                assert_eq!(t, policy.timeout_for(attempt, h));
                // Bounded: unjittered <= t < unjittered * (1 + jitter) + 1.
                assert!(t >= policy.unjittered(attempt));
                assert!(t <= policy.jitter_ceiling(attempt));
            }
        }
    }

    #[test]
    fn jitter_fraction_decorrelates_across_attempts() {
        // The whole point of the attempt salt: for a fixed message hash the
        // drawn jitter *fraction* must differ between attempts, otherwise a
        // cohort of peers that collided once retries in lock-step forever.
        let policy = RetryPolicy {
            base_timeout: 1 << 20,
            max_attempts: 6,
            jitter: 0.25,
        };
        for h in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let fractions: Vec<f64> = (0..policy.max_attempts)
                .map(|a| {
                    let base = policy.unjittered(a);
                    (policy.timeout_for(a, h) - base) as f64 / base as f64
                })
                .collect();
            let distinct = fractions
                .iter()
                .filter(|&&f| (f - fractions[0]).abs() > 1e-6)
                .count();
            // At least 4 of the 6 attempts must draw a visibly different
            // fraction from attempt 0 (all 6 equal would be the old bug).
            assert!(
                distinct >= 4,
                "correlated fractions {fractions:?} for h={h}"
            );
            // Every fraction stays inside the advertised [0, jitter) window.
            for &f in &fractions {
                assert!((0.0..policy.jitter + 1e-9).contains(&f));
            }
        }
    }

    #[test]
    fn jitter_is_a_pure_function_of_policy_attempt_and_hash() {
        // Pin exact values so the schedule can never drift silently: replays
        // of a recorded fault trace depend on these being stable.
        let policy = RetryPolicy {
            base_timeout: 4096,
            max_attempts: 5,
            jitter: 0.25,
        };
        let pinned: Vec<VTime> = (0..policy.max_attempts)
            .map(|a| policy.timeout_for(a, 0xDEAD_BEEF))
            .collect();
        assert_eq!(
            pinned,
            (0..policy.max_attempts)
                .map(|a| policy.timeout_for(a, 0xDEAD_BEEF))
                .collect::<Vec<_>>()
        );
        // Distinct message hashes draw distinct schedules (decorrelation
        // across peers, not just across attempts).
        let other: Vec<VTime> = (0..policy.max_attempts)
            .map(|a| policy.timeout_for(a, 0xFEED_FACE))
            .collect();
        assert_ne!(pinned, other);
    }

    #[test]
    fn zero_jitter_is_exactly_exponential() {
        let policy = RetryPolicy {
            base_timeout: 100,
            max_attempts: 8,
            jitter: 0.0,
        };
        for attempt in 0..policy.max_attempts {
            assert_eq!(policy.timeout_for(attempt, 0x1234), 100 << attempt);
        }
    }

    #[test]
    fn backoff_shift_saturates_at_sixteen() {
        let policy = RetryPolicy {
            base_timeout: 1,
            max_attempts: 40,
            jitter: 0.0,
        };
        assert_eq!(policy.unjittered(16), 1 << 16);
        assert_eq!(policy.unjittered(17), 1 << 16);
        assert_eq!(policy.unjittered(39), 1 << 16);
    }

    #[test]
    fn schedule_is_monotone_in_attempt() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        for attempt in 1..policy.max_attempts {
            assert!(policy.unjittered(attempt) >= policy.unjittered(attempt - 1));
        }
    }

    #[test]
    fn virtual_budget_bounds_every_deadline_extension() {
        let policy = RetryPolicy::default();
        // Worst-case walk of the schedule: every attempt draws the largest
        // admissible jitter. The summed deadline extension stays within the
        // advertised budget.
        let mut total: VTime = 0;
        for attempt in 0..policy.max_attempts {
            let worst = (0..64u64)
                .map(|h| policy.timeout_for(attempt, mix64(h)))
                .max()
                .unwrap();
            assert!(worst <= policy.jitter_ceiling(attempt));
            total = total.saturating_add(worst);
        }
        assert!(total <= policy.virtual_budget());
        // And the budget itself matches the closed form for zero jitter.
        let flat = RetryPolicy {
            base_timeout: 8,
            max_attempts: 5,
            jitter: 0.0,
        };
        assert_eq!(flat.virtual_budget(), 8 * (1 + 2 + 4 + 8 + 16));
    }

    #[test]
    fn unit_maps_into_half_open_interval() {
        for h in [0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(unit(0), 0.0);
    }
}
