//! Message-passing transport layer with deterministic fault injection.
//!
//! This module turns the workspace's synchronous, in-process protocol rounds
//! into genuine per-node message passing while preserving the block-index
//! determinism contract of `dqma::trials` (same seed + fault schedule ⇒
//! bit-identical outcomes at any worker count).
//!
//! # Envelope format
//!
//! Every message on the wire is an [`Envelope`]:
//!
//! | field     | type     | meaning                                          |
//! |-----------|----------|--------------------------------------------------|
//! | `src`     | [`NodeId`] | sending node                                   |
//! | `dst`     | [`NodeId`] | destination node                               |
//! | `seq`     | `u32`    | per-sender sequence number (dedup key with `src`)|
//! | `attempt` | `u32`    | retransmission attempt, 0 for the first send     |
//! | `payload` | `u64`    | protocol payload (coin bits, tokens)             |
//!
//! Receivers deduplicate on `(src, seq)`: a retransmission or a fault-injected
//! duplicate of an already-delivered envelope is silently discarded, so
//! delivery is idempotent and the retry layer never double-counts a message.
//!
//! # Virtual time
//!
//! All latency, timeout, backoff, and fault decisions are expressed in
//! *virtual* nanoseconds ([`VTime`]). Each node advances a local virtual
//! clock; the transport stamps every envelope with a virtual arrival time and
//! acknowledgements resolve to a virtual instant. Because no decision reads a
//! wall clock, a trial is a pure function of `(seed, fault schedule)` — the
//! foundation of the bit-reproducibility guarantee. Wall time appears in one
//! place only: the blocking receive mode of [`ChannelTransport`] bounds its
//! physical wait with a liveness guard so a lost message can never hang a
//! thread.
//!
//! # Fault model
//!
//! [`FaultyTransport`] decorates any inner [`Transport`] with a seeded
//! [`FaultPlan`]. Every stochastic fault decision is a pure hash of
//! `(trial salt, fault tag, src, dst, seq, attempt)` — no shared RNG state —
//! so the same trial replays identically regardless of scheduling:
//!
//! * **drop** — the envelope vanishes; the sender sees [`SendOutcome::Lost`];
//! * **ack drop** — the envelope is delivered but the acknowledgement is
//!   lost, forcing a (deduplicated) retransmission;
//! * **latency** — base + jittered per-message delay; unequal delays reorder
//!   messages in flight, exercising out-of-order delivery;
//! * **duplication** — a second copy arrives later and is discarded by the
//!   receiver's `(src, seq)` dedup;
//! * **partitions** — scheduled windows during which a set of undirected
//!   edges carries no traffic in either direction;
//! * **crash/restart** — scheduled windows (or a seeded per-trial coin)
//!   during which a node neither sends nor receives; with a restart horizon
//!   the node comes back and retries may still succeed.
//!
//! The robustness layer ([`robust_send`] / [`robust_recv`]) wraps the raw
//! trait with per-message deadlines and bounded exponential backoff with
//! deterministic jitter; exhausted budgets surface as a [`FaultCause`] so a
//! round resolves to [`RoundOutcome::Aborted`] instead of hanging.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::transcript::ProtocolCosts;

/// Virtual nanoseconds. All deadlines, latencies, and backoff schedules are
/// virtual-time quantities; see the module docs.
pub type VTime = u64;

/// Index of a node in the network (dense, `0..num_nodes`).
pub type NodeId = usize;

/// A sequence-numbered message; see the module docs for the wire format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Per-sender sequence number; `(src, seq)` is the dedup key.
    pub seq: u32,
    /// Retransmission attempt (0 for the first send).
    pub attempt: u32,
    /// Protocol payload.
    pub payload: u64,
}

/// Result of a single (unreliable) send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The acknowledgement arrived at the given virtual instant.
    Acked(VTime),
    /// No acknowledgement by the deadline: the message or its ack was
    /// dropped, a partition blocked the edge, or the peer is down.
    Lost,
}

/// Result of a single receive attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// An envelope arrived at the given virtual instant.
    Delivered(Envelope, VTime),
    /// Nothing arrived by the deadline.
    TimedOut,
}

/// A byte-moving substrate for one protocol round.
///
/// The trait itself is single-thread friendly — the batched fault-sweep
/// engine hands each worker an exclusively-owned transport
/// ([`LocalChannelTransport`]), which needs no synchronisation at all. Only
/// the threaded round driver, which shares one transport across per-node
/// executors, additionally requires `Sync` (an explicit bound at that call
/// site; [`ChannelTransport`] satisfies it).
pub trait Transport {
    /// Attempts to deliver `env`, returning the acknowledgement verdict.
    ///
    /// `now` is the sender's virtual clock; `ack_deadline` bounds how long
    /// the sender is willing to wait for the acknowledgement (virtual time).
    /// The outcome is resolved synchronously and deterministically — there is
    /// no physical reverse message.
    fn send(&self, now: VTime, env: &Envelope, ack_deadline: VTime) -> SendOutcome;

    /// Receives the earliest envelope addressed to `node` with a virtual
    /// arrival time `<= deadline`. Envelopes scheduled to arrive later stay
    /// queued for a future call with an extended deadline.
    fn recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome;

    /// Starts a fresh trial: clears all in-flight state and installs the
    /// trial's fault salt. Must be called between rounds.
    fn begin_trial(&self, salt: u64);

    /// If `node` is crashed at virtual instant `now`, returns the instant it
    /// restarts (`VTime::MAX` when it never does).
    fn node_down_until(&self, _node: NodeId, _now: VTime) -> Option<VTime> {
        None
    }

    /// True when this transport can never delay, drop, duplicate, or
    /// otherwise perturb a message, and never reports a node down. The
    /// robust send/receive layer collapses to a single un-jittered attempt
    /// over a quiet transport — the zero-fault hot path skips all
    /// per-message fault and backoff hashing.
    fn is_quiet(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault hashing
// ---------------------------------------------------------------------------

pub(crate) use crate::policy::{mix64, unit};

/// Packs a message identity into one word for hashing. Node ids are < 2^12
/// in every workspace topology; sequence numbers fit 32 bits per round.
#[inline]
fn pack(env: &Envelope) -> u64 {
    ((env.src as u64) << 52)
        ^ ((env.dst as u64) << 40)
        ^ ((env.seq as u64) << 8)
        ^ (env.attempt as u64 & 0xFF)
}

#[inline]
fn fault_hash(salt: u64, tag: u64, env: &Envelope) -> u64 {
    mix64(mix64(salt ^ tag) ^ pack(env))
}

const TAG_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const TAG_ACK_DROP: u64 = 0xC2B2_AE3D_27D4_EB4F;
const TAG_DUP: u64 = 0x1656_67B1_9E37_79F9;
const TAG_LATENCY: u64 = 0x2545_F491_4F6C_DD1D;
const TAG_ACK_LATENCY: u64 = 0x9E6D_62D0_6F6A_9A9B;
const TAG_CRASH: u64 = 0xD6E8_FEB8_6659_FD93;
const TAG_SEND_JITTER: u64 = 0xA0761D6478BD642F;
const TAG_RECV_JITTER: u64 = 0xE703_7ED1_A0B4_28DB;

// ---------------------------------------------------------------------------
// Spin-locked mailboxes
// ---------------------------------------------------------------------------

/// A minimal spinlock. Mailbox critical sections are a handful of Vec
/// operations, far below the cost of parking a thread, and the batch engine
/// runs one transport per worker (zero contention) — so a spinlock beats a
/// `std::sync::Mutex` on the hot path and can never be poisoned.
struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock bit serialises all access to `value`.
unsafe impl<T: Send> Sync for SpinLock<T> {}

struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        SpinGuard { lock: self }
    }
}

impl<T> std::ops::Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> std::ops::DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard holds the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A queued message, packed to 32 bytes: the destination is implicit (it is
/// the mailbox's own node) and the `usize` source id narrows to `u32`
/// (workspace node ids are < 2^12). On the per-message hot path the copy
/// traffic of this struct is a measurable cost, so it stays small.
#[derive(Clone, Copy)]
struct Queued {
    arrival: VTime,
    payload: u64,
    src: u32,
    seq: u32,
    order: u32,
    attempt: u32,
}

impl Queued {
    /// Delivery-dedup key: one word combining `(src, seq)`.
    #[inline]
    fn key(&self) -> u64 {
        (u64::from(self.src) << 32) | u64::from(self.seq)
    }

    /// Reconstructs the envelope for delivery to `node`.
    #[inline]
    fn envelope(&self, node: NodeId) -> Envelope {
        Envelope {
            src: self.src as NodeId,
            dst: node,
            seq: self.seq,
            attempt: self.attempt,
            payload: self.payload,
        }
    }
}

/// Sentinel for "no delivery recorded yet": real keys have `src < 2^32`, and
/// a `u64::MAX` key would need `src == u32::MAX`, which `push` rejects.
const NO_KEY: u64 = u64::MAX;

/// One node's inbox. Cleared lazily: instead of locking every mailbox at the
/// start of each trial, `begin_trial` bumps a shared epoch and each mailbox
/// self-clears on first touch in the new epoch — one atomic per reset.
///
/// Layout is tuned for the dominant traffic pattern of the protocol rounds —
/// exactly one in-flight message per node: `slot` is an inline fast path
/// that avoids all `Vec` bookkeeping, and `queue` is the overflow for
/// fault-injected duplicates, retransmissions, and jitter pile-ups.
struct Mailbox {
    epoch: u64,
    order: u32,
    slot: Option<Queued>,
    /// Most recent delivery's [`Queued::key`] ([`NO_KEY`] when none):
    /// single-message trials never touch the `delivered` vector.
    last_key: u64,
    queue: Vec<Queued>,
    /// Keys of deliveries *before* `last_key`.
    delivered: Vec<u64>,
}

impl Mailbox {
    fn sync(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.order = 0;
            self.slot = None;
            self.last_key = NO_KEY;
            self.queue.clear();
            self.delivered.clear();
        }
    }

    fn fresh() -> Self {
        Mailbox {
            epoch: 0,
            order: 0,
            slot: None,
            last_key: NO_KEY,
            queue: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Queues `env` for delivery at virtual instant `arrival`.
    #[inline]
    fn push(&mut self, arrival: VTime, env: Envelope) {
        debug_assert!(env.src < u32::MAX as usize, "node id out of mailbox range");
        let order = self.order;
        self.order += 1;
        let q = Queued {
            arrival,
            payload: env.payload,
            src: env.src as u32,
            seq: env.seq,
            order,
            attempt: env.attempt,
        };
        if self.slot.is_none() {
            self.slot = Some(q);
        } else {
            self.queue.push(q);
        }
    }

    /// One non-blocking delivery attempt for `node`'s mailbox; loops
    /// internally past duplicates.
    #[inline]
    fn take(&mut self, node: NodeId, deadline: VTime) -> RecvOutcome {
        loop {
            // Fast path: a single queued message in the inline slot.
            if self.queue.is_empty() {
                let Some(q) = self.slot else {
                    return RecvOutcome::TimedOut;
                };
                if q.arrival > deadline {
                    return RecvOutcome::TimedOut;
                }
                self.slot = None;
                if self.mark_delivered(q.key()) {
                    return RecvOutcome::Delivered(q.envelope(node), q.arrival);
                }
                continue; // retransmission or injected duplicate
            }
            // Overflow path: earliest arrival wins across slot + queue; the
            // enqueue order breaks ties so equal latencies preserve FIFO and
            // unequal latencies genuinely reorder.
            let mut best_in_queue = 0usize;
            let mut best_key = (self.queue[0].arrival, self.queue[0].order);
            for (i, q) in self.queue.iter().enumerate().skip(1) {
                if (q.arrival, q.order) < best_key {
                    best_key = (q.arrival, q.order);
                    best_in_queue = i;
                }
            }
            let q = match self.slot {
                Some(s) if (s.arrival, s.order) < best_key => {
                    self.slot = None;
                    s
                }
                _ => self.queue.swap_remove(best_in_queue),
            };
            if q.arrival > deadline {
                // Put the minimum back: nothing eligible before the deadline.
                self.push_back(q);
                return RecvOutcome::TimedOut;
            }
            if self.mark_delivered(q.key()) {
                return RecvOutcome::Delivered(q.envelope(node), q.arrival);
            }
        }
    }

    /// Re-inserts a message removed by the min scan (preserving its original
    /// order stamp) after it turned out to be past the deadline.
    #[inline]
    fn push_back(&mut self, q: Queued) {
        if self.slot.is_none() {
            self.slot = Some(q);
        } else {
            self.queue.push(q);
        }
    }

    /// Records `key` as delivered; false if it already was.
    #[inline]
    fn mark_delivered(&mut self, key: u64) -> bool {
        if key == self.last_key {
            return false;
        }
        if self.last_key != NO_KEY {
            if self.delivered.contains(&key) {
                return false;
            }
            self.delivered.push(self.last_key);
        }
        self.last_key = key;
        true
    }
}

/// In-memory channel transport: one spin-locked mailbox per node.
///
/// Two receive modes:
///
/// * **poll** ([`ChannelTransport::poll`]) — `recv` returns
///   [`RecvOutcome::TimedOut`] immediately when nothing eligible is queued.
///   Correct for the sequential executor, which runs nodes in schedule order
///   so every expected message is already enqueued when its receiver runs.
/// * **blocking** ([`ChannelTransport::blocking`]) — `recv` physically waits
///   (bounded by a wall-clock liveness guard) until an eligible envelope
///   appears. Used by the threaded executor where sender and receiver run on
///   different `qsim::pool` workers.
pub struct ChannelTransport {
    boxes: Vec<SpinLock<Mailbox>>,
    epoch: AtomicU64,
    latency: VTime,
    wall_guard: Option<Duration>,
}

impl ChannelTransport {
    /// Non-blocking transport over `nodes` mailboxes (see the type docs).
    pub fn poll(nodes: usize) -> Self {
        Self::build(nodes, None)
    }

    /// Blocking transport over `nodes` mailboxes; `guard` bounds the physical
    /// wait of a single `recv` so a lost message cannot hang a worker.
    pub fn blocking(nodes: usize, guard: Duration) -> Self {
        Self::build(nodes, Some(guard))
    }

    fn build(nodes: usize, wall_guard: Option<Duration>) -> Self {
        ChannelTransport {
            boxes: (0..nodes)
                .map(|_| SpinLock::new(Mailbox::fresh()))
                .collect(),
            epoch: AtomicU64::new(0),
            latency: 0,
            wall_guard,
        }
    }

    /// Sets a uniform per-hop base latency (virtual ns).
    pub fn with_latency(mut self, latency: VTime) -> Self {
        self.latency = latency;
        self
    }

    /// Number of mailboxes.
    pub fn num_nodes(&self) -> usize {
        self.boxes.len()
    }

    /// Queues `env` for delivery at virtual instant `arrival`.
    #[inline]
    fn enqueue(&self, arrival: VTime, env: Envelope) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut mbox = self.boxes[env.dst].lock();
        mbox.sync(epoch);
        mbox.push(arrival, env);
    }

    /// One non-blocking delivery attempt; loops internally past duplicates.
    #[inline]
    fn try_recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut mbox = self.boxes[node].lock();
        mbox.sync(epoch);
        mbox.take(node, deadline)
    }
}

impl Transport for ChannelTransport {
    #[inline]
    fn send(&self, now: VTime, env: &Envelope, _ack_deadline: VTime) -> SendOutcome {
        self.enqueue(now.saturating_add(self.latency), *env);
        SendOutcome::Acked(now.saturating_add(2 * self.latency))
    }

    #[inline]
    fn recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome {
        match self.wall_guard {
            None => self.try_recv(node, deadline),
            Some(guard) => {
                let give_up = Instant::now() + guard;
                loop {
                    if let RecvOutcome::Delivered(env, at) = self.try_recv(node, deadline) {
                        return RecvOutcome::Delivered(env, at);
                    }
                    if Instant::now() >= give_up {
                        return RecvOutcome::TimedOut;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    fn begin_trial(&self, _salt: u64) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn is_quiet(&self) -> bool {
        // A raw channel perturbs nothing; a configured base latency delays
        // (and therefore reorders against other transports), so it opts out.
        self.latency == 0
    }
}

/// Single-threaded channel transport: the mailbox semantics of
/// [`ChannelTransport`] in poll mode with **no synchronisation** — mailboxes
/// live in [`UnsafeCell`](std::cell::UnsafeCell)s, so the type is
/// deliberately `!Sync` and can only back the sequential round driver.
///
/// This is the scratch transport of the batched fault-sweep engine: each
/// `qsim::pool` worker owns one exclusively, so the per-message atomic
/// acquire/release pairs of the shared transport are pure overhead there —
/// dropping them roughly halves the zero-fault round cost.
pub struct LocalChannelTransport {
    boxes: Vec<std::cell::UnsafeCell<Mailbox>>,
    epoch: std::cell::Cell<u64>,
}

impl LocalChannelTransport {
    /// Non-blocking transport over `nodes` mailboxes.
    pub fn poll(nodes: usize) -> Self {
        LocalChannelTransport {
            boxes: (0..nodes)
                .map(|_| std::cell::UnsafeCell::new(Mailbox::fresh()))
                .collect(),
            epoch: std::cell::Cell::new(0),
        }
    }

    /// Number of mailboxes.
    pub fn num_nodes(&self) -> usize {
        self.boxes.len()
    }

    /// Exclusive access to one mailbox.
    ///
    /// SAFETY invariant: the `&mut` never escapes a single `send`/`recv`
    /// call, those calls never nest (no callbacks, no reentrancy), and
    /// `UnsafeCell` keeps the type `!Sync` — so at most one mutable
    /// reference to any mailbox exists at a time. This is exactly the
    /// discipline `RefCell` checks dynamically, minus the flag traffic on
    /// the per-message hot path.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    fn mailbox(&self, node: NodeId) -> &mut Mailbox {
        unsafe { &mut *self.boxes[node].get() }
    }
}

impl Transport for LocalChannelTransport {
    #[inline]
    fn send(&self, now: VTime, env: &Envelope, _ack_deadline: VTime) -> SendOutcome {
        let mbox = self.mailbox(env.dst);
        mbox.sync(self.epoch.get());
        mbox.push(now, *env);
        SendOutcome::Acked(now)
    }

    #[inline]
    fn recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome {
        let mbox = self.mailbox(node);
        mbox.sync(self.epoch.get());
        mbox.take(node, deadline)
    }

    fn begin_trial(&self, _salt: u64) {
        self.epoch.set(self.epoch.get().wrapping_add(1));
    }

    fn is_quiet(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// A scheduled partition: during `[start, end)` (virtual time) the listed
/// undirected edges carry no traffic in either direction.
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// Window start (inclusive, virtual ns).
    pub start: VTime,
    /// Window end (exclusive, virtual ns).
    pub end: VTime,
    /// Undirected edges blocked during the window.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// A scheduled crash: `node` is down during `[start, end)` (virtual time).
#[derive(Clone, Copy, Debug)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// Crash instant (inclusive, virtual ns).
    pub start: VTime,
    /// Restart instant (exclusive, virtual ns); `VTime::MAX` = never.
    pub end: VTime,
}

/// A seeded, deterministic fault schedule.
///
/// All stochastic fields are evaluated as pure hashes of the per-trial salt
/// and the message identity — see the module docs for the determinism
/// argument. The default plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability a data envelope vanishes in flight.
    pub drop_rate: f64,
    /// Probability a delivered envelope's acknowledgement is lost.
    pub ack_drop_rate: f64,
    /// Probability a delivered envelope arrives twice.
    pub duplicate_rate: f64,
    /// Base one-way delivery latency (virtual ns).
    pub latency_base: VTime,
    /// Uniform per-message latency jitter in `[0, latency_jitter]`; unequal
    /// draws reorder concurrent messages.
    pub latency_jitter: VTime,
    /// Probability a given node crashes during the trial.
    pub crash_rate: f64,
    /// Crash onset is drawn uniformly in `[0, crash_onset_window]`.
    pub crash_onset_window: VTime,
    /// Virtual delay until a randomly crashed node restarts; 0 = never.
    pub crash_restart_after: VTime,
    /// Scheduled (deterministic) partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled (deterministic) crashes.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Convenience constructor: drop each data envelope with `rate`.
    pub fn with_drop(rate: f64) -> Self {
        FaultPlan {
            drop_rate: rate,
            ..Self::default()
        }
    }

    /// True when the plan can never perturb a message — lets the decorator
    /// collapse to a plain delegation on the zero-fault hot path.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate == 0.0
            && self.ack_drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.latency_base == 0
            && self.latency_jitter == 0
            && self.crash_rate == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// True when the undirected edge `{a, b}` is inside a partition window
    /// at virtual instant `t`.
    pub fn edge_blocked(&self, a: NodeId, b: NodeId, t: VTime) -> bool {
        self.partitions.iter().any(|w| {
            t >= w.start
                && t < w.end
                && w.edges
                    .iter()
                    .any(|&(u, v)| (u == a && v == b) || (u == b && v == a))
        })
    }

    /// If `node` is down at virtual instant `now` under this plan and salt,
    /// returns the restart instant (`VTime::MAX` when it never restarts).
    pub fn node_down_until(&self, salt: u64, node: NodeId, now: VTime) -> Option<VTime> {
        for w in &self.crashes {
            if w.node == node && now >= w.start && now < w.end {
                return Some(w.end);
            }
        }
        if self.crash_rate > 0.0 {
            let h = mix64(mix64(salt ^ TAG_CRASH) ^ (node as u64));
            if unit(h) < self.crash_rate {
                let onset = if self.crash_onset_window == 0 {
                    0
                } else {
                    mix64(h) % (self.crash_onset_window + 1)
                };
                let end = if self.crash_restart_after == 0 {
                    VTime::MAX
                } else {
                    onset.saturating_add(self.crash_restart_after)
                };
                if now >= onset && now < end {
                    return Some(end);
                }
            }
        }
        None
    }
}

/// Decorator injecting a [`FaultPlan`] into any inner transport.
///
/// Latency is owned by the decorator: construct the inner transport with zero
/// base latency when wrapping it.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// `plan.is_quiet()`, cached at construction: the plan is immutable, and
    /// the zero-fault hot path tests this once per send instead of walking
    /// every plan field.
    quiet: bool,
    salt: AtomicU64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let quiet = plan.is_quiet();
        FaultyTransport {
            inner,
            plan,
            quiet,
            salt: AtomicU64::new(0),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The installed fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    #[inline]
    fn send(&self, now: VTime, env: &Envelope, ack_deadline: VTime) -> SendOutcome {
        if self.quiet {
            return self.inner.send(now, env, ack_deadline);
        }
        let salt = self.salt.load(Ordering::Relaxed);
        let plan = &self.plan;

        if plan.edge_blocked(env.src, env.dst, now) {
            return SendOutcome::Lost;
        }
        if plan.node_down_until(salt, env.src, now).is_some() {
            return SendOutcome::Lost;
        }
        if plan.drop_rate > 0.0 && unit(fault_hash(salt, TAG_DROP, env)) < plan.drop_rate {
            return SendOutcome::Lost;
        }

        let jitter = if plan.latency_jitter == 0 {
            0
        } else {
            fault_hash(salt, TAG_LATENCY, env) % (plan.latency_jitter + 1)
        };
        let arrival = now.saturating_add(plan.latency_base).saturating_add(jitter);

        // Receiver down at delivery time: the message is lost in the crash.
        if plan.node_down_until(salt, env.dst, arrival).is_some() {
            return SendOutcome::Lost;
        }

        self.inner.send(arrival, env, VTime::MAX);

        if plan.duplicate_rate > 0.0 && unit(fault_hash(salt, TAG_DUP, env)) < plan.duplicate_rate {
            let extra = 1 + fault_hash(salt, TAG_DUP ^ TAG_LATENCY, env)
                % (plan.latency_base + plan.latency_jitter + 16);
            self.inner
                .send(arrival.saturating_add(extra), env, VTime::MAX);
        }

        // Acknowledgement path: same fault surface in the reverse direction.
        if plan.ack_drop_rate > 0.0
            && unit(fault_hash(salt, TAG_ACK_DROP, env)) < plan.ack_drop_rate
        {
            return SendOutcome::Lost;
        }
        let ack_jitter = if plan.latency_jitter == 0 {
            0
        } else {
            fault_hash(salt, TAG_ACK_LATENCY, env) % (plan.latency_jitter + 1)
        };
        let acked = arrival
            .saturating_add(plan.latency_base)
            .saturating_add(ack_jitter);
        if acked > ack_deadline {
            return SendOutcome::Lost;
        }
        SendOutcome::Acked(acked)
    }

    #[inline]
    fn recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome {
        self.inner.recv(node, deadline)
    }

    fn begin_trial(&self, salt: u64) {
        self.salt.store(salt, Ordering::Relaxed);
        self.inner.begin_trial(salt);
    }

    #[inline]
    fn node_down_until(&self, node: NodeId, now: VTime) -> Option<VTime> {
        if self.quiet {
            return None;
        }
        self.plan
            .node_down_until(self.salt.load(Ordering::Relaxed), node, now)
    }

    fn is_quiet(&self) -> bool {
        self.quiet && self.inner.is_quiet()
    }
}

// ---------------------------------------------------------------------------
// Robustness layer: deadlines, retries, graceful degradation
// ---------------------------------------------------------------------------

pub use crate::policy::RetryPolicy;

/// Why a round aborted instead of completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// A sender exhausted its retry budget without an acknowledgement.
    RetriesExhausted {
        /// Destination of the undeliverable message.
        to: NodeId,
        /// Sequence number of the undeliverable message.
        seq: u32,
        /// Attempts made.
        attempts: u32,
    },
    /// A receiver's (repeatedly extended) deadline expired with no envelope.
    RecvTimeout {
        /// Receive attempts made.
        attempts: u32,
    },
    /// The node itself was crashed by the fault schedule.
    NodeCrashed {
        /// Virtual restart instant (`VTime::MAX` = never).
        until: VTime,
    },
    /// The node's executor thread panicked (contained by the round driver).
    NodePanicked,
}

/// Where, when, and why a round aborted — plus whatever cost accounting the
/// affected verifier had accumulated before the fault.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The node at which the round aborted.
    pub node: NodeId,
    /// The node's virtual clock at the abort.
    pub vtime: VTime,
    /// The underlying fault.
    pub cause: FaultCause,
    /// Partial cost state gathered before the abort.
    pub partial: ProtocolCosts,
}

/// Terminal state of one protocol round under the fault-injecting runtime.
#[derive(Clone, Debug)]
pub enum RoundOutcome {
    /// Every verifier completed and all accepted.
    Accept,
    /// Every verifier completed and at least one rejected.
    Reject,
    /// A fault prevented some verifier from completing.
    Aborted(FaultReport),
}

impl RoundOutcome {
    /// True for [`RoundOutcome::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, RoundOutcome::Accept)
    }

    /// True for [`RoundOutcome::Aborted`].
    pub fn is_aborted(&self) -> bool {
        matches!(self, RoundOutcome::Aborted(_))
    }
}

/// Reliable send: retries `env` under `policy`, advancing `clock` through the
/// virtual backoff schedule. Returns the number of attempts used (>= 1), or
/// the cause after the budget is exhausted.
#[inline]
pub fn robust_send<T: Transport + ?Sized>(
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    clock: &mut VTime,
    mut env: Envelope,
) -> Result<u32, FaultCause> {
    // Quiet-transport fast path: the first attempt always acks, so skip the
    // jitter hashing of the backoff schedule entirely. Falls through to the
    // full retry loop (a deduplicated retransmission of attempt 0) if the
    // transport loses a message despite advertising quiescence.
    if transport.is_quiet() {
        let deadline = clock.saturating_add(policy.base_timeout);
        if let SendOutcome::Acked(at) = transport.send(*clock, &env, deadline) {
            *clock = at.max(*clock);
            return Ok(1);
        }
    }
    for attempt in 0..policy.max_attempts {
        env.attempt = attempt;
        let timeout = policy.timeout_for(attempt, fault_hash(salt, TAG_SEND_JITTER, &env));
        let deadline = clock.saturating_add(timeout);
        match transport.send(*clock, &env, deadline) {
            SendOutcome::Acked(at) => {
                *clock = at.max(*clock);
                return Ok(attempt + 1);
            }
            SendOutcome::Lost => {
                // Back off to the attempt deadline before retransmitting.
                *clock = deadline;
            }
        }
    }
    Err(FaultCause::RetriesExhausted {
        to: env.dst,
        seq: env.seq,
        attempts: policy.max_attempts,
    })
}

/// Reliable receive: extends the deadline through the same backoff schedule
/// as [`robust_send`], so a retransmitted envelope still finds a listener.
#[inline]
pub fn robust_recv<T: Transport + ?Sized>(
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    node: NodeId,
    clock: &mut VTime,
) -> Result<Envelope, FaultCause> {
    // Quiet-transport fast path mirroring `robust_send`: over a quiet
    // transport every expected envelope is already queued (sequential
    // driver) or arrives within one blocking wait, so the first un-jittered
    // attempt succeeds; a miss falls through to the full backoff loop.
    if transport.is_quiet() {
        let deadline = clock.saturating_add(policy.base_timeout);
        if let RecvOutcome::Delivered(env, at) = transport.recv(node, deadline) {
            *clock = at.max(*clock);
            return Ok(env);
        }
    }
    for attempt in 0..policy.max_attempts {
        let h = mix64(salt ^ TAG_RECV_JITTER ^ ((node as u64) << 32) ^ attempt as u64);
        let deadline = clock.saturating_add(policy.timeout_for(attempt, h));
        match transport.recv(node, deadline) {
            RecvOutcome::Delivered(env, at) => {
                *clock = at.max(*clock);
                return Ok(env);
            }
            RecvOutcome::TimedOut => {
                *clock = deadline;
            }
        }
    }
    Err(FaultCause::RecvTimeout {
        attempts: policy.max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: NodeId, dst: NodeId, seq: u32, payload: u64) -> Envelope {
        Envelope {
            src,
            dst,
            seq,
            attempt: 0,
            payload,
        }
    }

    #[test]
    fn channel_delivers_in_arrival_order() {
        let t = ChannelTransport::poll(2);
        t.begin_trial(1);
        // Same arrival time: FIFO by enqueue order.
        assert_eq!(
            t.send(0, &env(0, 1, 0, 10), VTime::MAX),
            SendOutcome::Acked(0)
        );
        assert_eq!(
            t.send(0, &env(0, 1, 1, 20), VTime::MAX),
            SendOutcome::Acked(0)
        );
        let RecvOutcome::Delivered(a, _) = t.recv(1, VTime::MAX) else {
            panic!("expected delivery");
        };
        let RecvOutcome::Delivered(b, _) = t.recv(1, VTime::MAX) else {
            panic!("expected delivery");
        };
        assert_eq!((a.payload, b.payload), (10, 20));
        assert_eq!(t.recv(1, VTime::MAX), RecvOutcome::TimedOut);
    }

    #[test]
    fn late_arrivals_wait_for_an_extended_deadline() {
        let t = ChannelTransport::poll(2).with_latency(100);
        t.begin_trial(1);
        t.send(0, &env(0, 1, 0, 7), VTime::MAX);
        assert_eq!(t.recv(1, 50), RecvOutcome::TimedOut);
        let RecvOutcome::Delivered(e, at) = t.recv(1, 100) else {
            panic!("expected delivery at the extended deadline");
        };
        assert_eq!((e.payload, at), (7, 100));
    }

    #[test]
    fn duplicates_are_discarded_by_seq_dedup() {
        let t = ChannelTransport::poll(2);
        t.begin_trial(1);
        let mut e = env(0, 1, 5, 99);
        t.send(0, &e, VTime::MAX);
        e.attempt = 1; // retransmission of the same (src, seq)
        t.send(0, &e, VTime::MAX);
        assert!(matches!(t.recv(1, VTime::MAX), RecvOutcome::Delivered(..)));
        assert_eq!(t.recv(1, VTime::MAX), RecvOutcome::TimedOut);
    }

    #[test]
    fn begin_trial_clears_mailboxes_lazily() {
        let t = ChannelTransport::poll(2);
        t.begin_trial(1);
        t.send(0, &env(0, 1, 0, 1), VTime::MAX);
        t.begin_trial(2);
        assert_eq!(t.recv(1, VTime::MAX), RecvOutcome::TimedOut);
        // Dedup state is also reset: the same (src, seq) delivers again.
        t.send(0, &env(0, 1, 0, 2), VTime::MAX);
        assert!(matches!(t.recv(1, VTime::MAX), RecvOutcome::Delivered(..)));
    }

    #[test]
    fn unequal_latency_reorders_messages() {
        let inner = ChannelTransport::poll(3);
        let plan = FaultPlan {
            latency_base: 0,
            latency_jitter: 1 << 20,
            ..FaultPlan::default()
        };
        let t = FaultyTransport::new(inner, plan);
        // Hunt for a salt where two concurrent sends swap their order.
        let mut swapped = false;
        for salt in 0..64 {
            t.begin_trial(salt);
            t.send(0, &env(0, 2, salt as u32, 1), VTime::MAX);
            t.send(0, &env(1, 2, salt as u32, 2), VTime::MAX);
            let RecvOutcome::Delivered(first, _) = t.recv(2, VTime::MAX) else {
                continue;
            };
            if first.payload == 2 {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "latency jitter never reordered two messages");
    }

    #[test]
    fn drop_rate_one_loses_everything_and_is_deterministic() {
        let t = FaultyTransport::new(ChannelTransport::poll(2), FaultPlan::with_drop(1.0));
        t.begin_trial(7);
        assert_eq!(t.send(0, &env(0, 1, 0, 1), VTime::MAX), SendOutcome::Lost);
        assert_eq!(t.recv(1, VTime::MAX), RecvOutcome::TimedOut);
    }

    #[test]
    fn fault_decisions_replay_bit_identically() {
        let plan = FaultPlan {
            drop_rate: 0.5,
            duplicate_rate: 0.3,
            latency_base: 10,
            latency_jitter: 100,
            ..FaultPlan::default()
        };
        let run = |salt: u64| -> Vec<SendOutcome> {
            let t = FaultyTransport::new(ChannelTransport::poll(4), plan.clone());
            t.begin_trial(salt);
            (0..32)
                .map(|i| t.send(0, &env(i % 3, 3, i as u32, i as u64), VTime::MAX))
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "distinct salts gave identical schedules");
    }

    #[test]
    fn partition_blocks_both_directions_inside_window() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                start: 100,
                end: 200,
                edges: vec![(0, 1)],
            }],
            ..FaultPlan::default()
        };
        let t = FaultyTransport::new(ChannelTransport::poll(2), plan);
        t.begin_trial(1);
        assert!(matches!(
            t.send(50, &env(0, 1, 0, 1), VTime::MAX),
            SendOutcome::Acked(_)
        ));
        assert_eq!(t.send(150, &env(0, 1, 1, 1), VTime::MAX), SendOutcome::Lost);
        assert_eq!(t.send(150, &env(1, 0, 0, 1), VTime::MAX), SendOutcome::Lost);
        assert!(matches!(
            t.send(250, &env(0, 1, 2, 1), VTime::MAX),
            SendOutcome::Acked(_)
        ));
    }

    #[test]
    fn scheduled_crash_downs_the_node_until_restart() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow {
                node: 1,
                start: 0,
                end: 1000,
            }],
            ..FaultPlan::default()
        };
        let t = FaultyTransport::new(ChannelTransport::poll(3), plan);
        t.begin_trial(1);
        assert_eq!(t.node_down_until(1, 500), Some(1000));
        assert_eq!(t.node_down_until(1, 1000), None);
        assert_eq!(t.node_down_until(0, 500), None);
        // Sends into the crash window are lost; after restart they deliver.
        assert_eq!(t.send(10, &env(0, 1, 0, 1), VTime::MAX), SendOutcome::Lost);
        assert!(matches!(
            t.send(1500, &env(0, 1, 1, 1), VTime::MAX),
            SendOutcome::Acked(_)
        ));
    }

    #[test]
    fn robust_send_retries_through_ack_drops() {
        // Drop only acks: delivery succeeds, sender retries, receiver dedups.
        let plan = FaultPlan {
            ack_drop_rate: 0.8,
            ..FaultPlan::default()
        };
        let t = FaultyTransport::new(ChannelTransport::poll(2), plan);
        let policy = RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        };
        let mut delivered = 0u32;
        let mut retried = false;
        for salt in 0..32 {
            t.begin_trial(salt);
            let mut clock = 0;
            if let Ok(attempts) = robust_send(&t, &policy, salt, &mut clock, env(0, 1, 0, 5)) {
                retried |= attempts > 1;
                let mut seen = 0;
                while let RecvOutcome::Delivered(..) = t.recv(1, VTime::MAX) {
                    seen += 1;
                }
                assert_eq!(seen, 1, "dedup must collapse retransmissions");
                delivered += 1;
            }
        }
        assert!(delivered > 0);
        assert!(retried, "ack drops never forced a retransmission");
    }

    #[test]
    fn robust_send_exhausts_and_reports_cause() {
        let t = FaultyTransport::new(ChannelTransport::poll(2), FaultPlan::with_drop(1.0));
        t.begin_trial(3);
        let mut clock = 0;
        let err = robust_send(&t, &RetryPolicy::default(), 3, &mut clock, env(0, 1, 9, 0));
        assert_eq!(
            err,
            Err(FaultCause::RetriesExhausted {
                to: 1,
                seq: 9,
                attempts: 5
            })
        );
        assert!(clock > 0, "backoff must advance the virtual clock");
    }

    #[test]
    fn robust_recv_waits_out_latency_then_times_out_when_dry() {
        let plan = FaultPlan {
            latency_base: 10_000,
            ..FaultPlan::default()
        };
        let t = FaultyTransport::new(ChannelTransport::poll(2), plan);
        t.begin_trial(1);
        let policy = RetryPolicy::default();
        t.send(0, &env(0, 1, 0, 42), VTime::MAX);
        let mut clock = 0;
        let got = robust_recv(&t, &policy, 1, 1, &mut clock).expect("latency within budget");
        assert_eq!(got.payload, 42);
        let mut clock2 = 0;
        assert_eq!(
            robust_recv(&t, &policy, 1, 1, &mut clock2),
            Err(FaultCause::RecvTimeout { attempts: 5 })
        );
    }

    #[test]
    fn blocking_recv_crosses_threads() {
        use std::sync::Arc;
        let t = Arc::new(ChannelTransport::blocking(2, Duration::from_secs(2)));
        let t2 = Arc::clone(&t);
        t.begin_trial(1);
        let handle = std::thread::spawn(move || t2.recv(1, VTime::MAX));
        std::thread::sleep(Duration::from_millis(20));
        t.send(0, &env(0, 1, 0, 77), VTime::MAX);
        match handle.join().expect("receiver thread") {
            RecvOutcome::Delivered(e, _) => assert_eq!(e.payload, 77),
            RecvOutcome::TimedOut => panic!("blocking recv missed the message"),
        }
    }
}
