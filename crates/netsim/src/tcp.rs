//! Real-socket transport: the [`crate::transport::Transport`] trait over
//! blocking `std::net` TCP, one OS process per protocol node.
//!
//! # Wire format
//!
//! Every frame is length-prefixed: `[u32 len][u8 kind][body]`, all integers
//! little-endian. Three kinds exist:
//!
//! * `HELLO` (`kind = 1`): `u32 src` — sent once by the connection
//!   initiator, identifying which node's outbound traffic the connection
//!   carries. Connections are direction-dedicated: node `a` dials node `b`
//!   to *send* to `b`; deliveries from `b` to `a` ride `b`'s own dial.
//! * `DATA` (`kind = 2`): `u64 epoch, u32 src, u32 dst, u32 seq,
//!   u32 attempt, u64 payload` — one [`Envelope`] stamped with the sender's
//!   trial epoch (the global trial index + 1; see below).
//! * `ACK` (`kind = 3`): `u64 epoch, u32 seq` — acknowledges receipt of the
//!   `DATA` frame with that `(epoch, seq)` on the same connection.
//!
//! # Epochs and the block-index determinism contract
//!
//! The in-process trial engine re-salts the transport between trials via
//! [`Transport::begin_trial`]; per-sender sequence numbers restart at zero
//! every trial, so `(src, seq)` alone cannot deduplicate across trials once
//! real sockets (which outlive trials) are involved. Each `DATA` frame
//! therefore carries the sender's *epoch* — a monotone trial counter that
//! every process derives from the same global trial index. A receiver:
//!
//! * delivers a frame whose epoch matches its own, deduplicating on
//!   `(epoch, src, seq)`;
//! * buffers a frame from the *future* (the peer has pipelined ahead within
//!   the batch) until [`TcpTransport::set_epoch`]/`begin_trial` catches up;
//! * drops — but still acknowledges — a *stale* frame (a retransmission of a
//!   trial this node has already finished or abandoned), so a lagging sender
//!   completes its round instead of retrying forever.
//!
//! # Time: virtual deadlines, wall waits
//!
//! The robustness layer ([`crate::transport::robust_send`] /
//! [`crate::transport::robust_recv`]) runs the shared
//! [`crate::policy::RetryPolicy`] backoff schedule in virtual nanoseconds.
//! This transport makes those windows physically real: a window of `w`
//! virtual ns becomes a wall-clock wait of `w * nanos_per_vns` (clamped to
//! `[min_wait, max_wait]`). An attempt that fails *early* — connection
//! refused while a peer restarts, connection reset when it dies — sleeps out
//! the remainder of its window before reporting [`SendOutcome::Lost`], so
//! the retry schedule paces reconnection exactly like the virtual backoff
//! discipline: attempt `i` rides out `~base_timeout << i` of peer downtime,
//! and a policy's [`crate::policy::RetryPolicy::virtual_budget`] bounds the wall time a
//! surviving node spends on a dead peer before surfacing a
//! [`crate::transport::FaultCause`] to the supervisor.
//!
//! Crash detection is thus two-level: in-band (connection refused/reset and
//! acknowledgement silence, absorbed by the retry schedule) and out-of-band
//! (the supervisor's control-channel heartbeat, which notices a dead child
//! immediately and restarts it; see `dqma::cluster`).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::transport::{Envelope, NodeId, RecvOutcome, SendOutcome, Transport, VTime};

const KIND_HELLO: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_ACK: u8 = 3;

/// Wall-clock shaping of the virtual-time retry windows.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Wall nanoseconds per virtual nanosecond (default 1000: 1 vns = 1 µs).
    pub nanos_per_vns: u64,
    /// Floor on any single wall wait, so sub-RTT virtual windows still give
    /// the socket a fighting chance (default 1 ms).
    pub min_wait: Duration,
    /// Cap on any single wall wait (default 2 s).
    pub max_wait: Duration,
    /// Cap on one TCP connect attempt (default 250 ms); also clamped to the
    /// attempt's wall window.
    pub connect_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            nanos_per_vns: 1000,
            min_wait: Duration::from_millis(1),
            max_wait: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
        }
    }
}

impl TcpConfig {
    /// Maps a virtual-time window to the wall wait this transport grants it.
    pub fn wall(&self, vns: VTime) -> Duration {
        let nanos = vns.saturating_mul(self.nanos_per_vns);
        Duration::from_nanos(nanos).clamp(self.min_wait, self.max_wait)
    }
}

/// Inbound state shared with the acceptor/handler threads.
struct MailState {
    /// Current epoch: frames stamped with it are deliverable now.
    epoch: u64,
    /// Deliverable / future envelopes, keyed by epoch, FIFO within a key.
    by_epoch: HashMap<u64, Vec<Envelope>>,
    /// Dedup keys `(epoch, src, seq)` of everything accepted so far.
    seen: HashMap<u64, Vec<(NodeId, u32)>>,
}

impl MailState {
    /// Drops buffered envelopes and dedup state of epochs before `epoch`.
    fn prune(&mut self) {
        let e = self.epoch;
        self.by_epoch.retain(|&k, _| k >= e);
        self.seen.retain(|&k, _| k >= e);
    }
}

/// [`Transport`] over real loopback/LAN TCP sockets; see the module docs.
///
/// One instance serves exactly one node (its `recv` mailbox is the node's
/// own). Peers are dialled lazily on first send and re-dialled after any
/// socket error, with pacing supplied by the caller's
/// [`crate::policy::RetryPolicy`]
/// windows; [`TcpTransport::set_peer`] re-points a peer at a new address
/// (process restart) and invalidates the cached connection.
pub struct TcpTransport {
    node: NodeId,
    cfg: TcpConfig,
    listener_addr: SocketAddr,
    /// Where each peer currently listens; `set_peer` updates this.
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Cached outbound connections, one per peer.
    conns: Mutex<HashMap<NodeId, TcpStream>>,
    mail: Arc<(Mutex<MailState>, Condvar)>,
    /// Virtual clock mirrored by the wall: reset each trial, advanced by
    /// elapsed wall time on every blocking operation.
    vclock: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl TcpTransport {
    /// Binds a listener for `node` on an ephemeral loopback port and starts
    /// the acceptor thread. Fails where loopback sockets are unavailable —
    /// callers (tests, CI) treat that error as a graceful skip.
    pub fn bind(node: NodeId) -> io::Result<TcpTransport> {
        TcpTransport::with_config(node, TcpConfig::default())
    }

    /// [`TcpTransport::bind`] with explicit wall-clock shaping.
    pub fn with_config(node: NodeId, cfg: TcpConfig) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let listener_addr = listener.local_addr()?;
        let mail = Arc::new((
            Mutex::new(MailState {
                epoch: 0,
                by_epoch: HashMap::new(),
                seen: HashMap::new(),
            }),
            Condvar::new(),
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        {
            let mail = Arc::clone(&mail);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || acceptor_loop(listener, mail, shutdown));
        }
        Ok(TcpTransport {
            node,
            cfg,
            listener_addr,
            peers: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            mail,
            vclock: AtomicU64::new(0),
            shutdown,
        })
    }

    /// The address peers should dial to reach this node.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener_addr
    }

    /// This transport's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Points `node` at `addr`, dropping any cached connection to it (a
    /// restarted process listens on a fresh port; the stale socket would
    /// only ever yield resets).
    pub fn set_peer(&self, node: NodeId, addr: SocketAddr) {
        self.peers.lock().unwrap().insert(node, addr);
        self.conns.lock().unwrap().remove(&node);
    }

    /// Forgets `node` entirely (peer leave): sends to it fail fast as
    /// [`SendOutcome::Lost`] until a new address is installed.
    pub fn clear_peer(&self, node: NodeId) {
        self.peers.lock().unwrap().remove(&node);
        self.conns.lock().unwrap().remove(&node);
    }

    /// Jumps the trial epoch (e.g. to the batch's global trial index after a
    /// supervisor `abandon`). Buffered future-epoch deliveries for the new
    /// epoch become visible; everything older is pruned.
    pub fn set_epoch(&self, epoch: u64) {
        let (lock, cvar) = &*self.mail;
        let mut mail = lock.lock().unwrap();
        mail.epoch = epoch;
        mail.prune();
        self.vclock.store(0, Ordering::Relaxed);
        cvar.notify_all();
    }

    /// The current trial epoch.
    pub fn epoch(&self) -> u64 {
        self.mail.0.lock().unwrap().epoch
    }

    fn advance_vclock(&self, start: Instant) -> VTime {
        let elapsed_v = (start.elapsed().as_nanos() as u64) / self.cfg.nanos_per_vns.max(1);
        let v = self
            .vclock
            .load(Ordering::Relaxed)
            .saturating_add(elapsed_v.max(1));
        self.vclock.store(v, Ordering::Relaxed);
        v
    }

    /// One send attempt: dial if needed, write the frame, await its ack.
    /// Any failure tears down the cached connection and returns `Err`.
    fn try_send(&self, env: &Envelope, epoch: u64, budget: Duration) -> io::Result<()> {
        let deadline = Instant::now() + budget;
        let mut stream = {
            let cached = self.conns.lock().unwrap().remove(&env.dst);
            match cached {
                Some(s) => s,
                None => {
                    let addr = self.peers.lock().unwrap().get(&env.dst).copied();
                    let addr = addr.ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, "peer address unknown")
                    })?;
                    let timeout = self.cfg.connect_timeout.min(budget);
                    let s =
                        TcpStream::connect_timeout(&addr, timeout.max(Duration::from_millis(1)))?;
                    s.set_nodelay(true)?;
                    let mut hello = Vec::with_capacity(9);
                    hello.push(KIND_HELLO);
                    hello.extend_from_slice(&(self.node as u32).to_le_bytes());
                    write_frame(&mut &s, &hello)?;
                    s
                }
            }
        };
        let mut data = Vec::with_capacity(33);
        data.push(KIND_DATA);
        data.extend_from_slice(&epoch.to_le_bytes());
        data.extend_from_slice(&(env.src as u32).to_le_bytes());
        data.extend_from_slice(&(env.dst as u32).to_le_bytes());
        data.extend_from_slice(&env.seq.to_le_bytes());
        data.extend_from_slice(&env.attempt.to_le_bytes());
        data.extend_from_slice(&env.payload.to_le_bytes());
        write_frame(&mut &stream, &data)?;
        // Await the ack for exactly this (epoch, seq); stale acks of earlier
        // timed-out attempts may still be queued on the stream — skip them.
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "ack deadline"));
            }
            stream.set_read_timeout(Some(left))?;
            let frame = read_frame(&mut stream)?;
            if frame.first() != Some(&KIND_ACK) || frame.len() < 13 {
                continue;
            }
            let ack_epoch = u64::from_le_bytes(frame[1..9].try_into().unwrap());
            let ack_seq = u32::from_le_bytes(frame[9..13].try_into().unwrap());
            if ack_epoch == epoch && ack_seq == env.seq {
                self.conns.lock().unwrap().insert(env.dst, stream);
                return Ok(());
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the acceptor thread can exit.
        let _ = TcpStream::connect(self.listener_addr);
    }
}

impl Transport for TcpTransport {
    fn send(&self, now: VTime, env: &Envelope, ack_deadline: VTime) -> SendOutcome {
        let start = Instant::now();
        let v = self.vclock.load(Ordering::Relaxed).max(now);
        self.vclock.store(v, Ordering::Relaxed);
        let budget = self.cfg.wall(ack_deadline.saturating_sub(v));
        let epoch = self.epoch();
        match self.try_send(env, epoch, budget) {
            Ok(()) => SendOutcome::Acked(self.advance_vclock(start)),
            Err(_) => {
                self.conns.lock().unwrap().remove(&env.dst);
                // Consume the rest of the window so the caller's backoff
                // schedule paces reconnection in wall time.
                let left = budget.saturating_sub(start.elapsed());
                if !left.is_zero() {
                    std::thread::sleep(left);
                }
                self.advance_vclock(start);
                SendOutcome::Lost
            }
        }
    }

    fn recv(&self, node: NodeId, deadline: VTime) -> RecvOutcome {
        debug_assert_eq!(node, self.node, "TcpTransport serves exactly one node");
        let start = Instant::now();
        let v = self.vclock.load(Ordering::Relaxed);
        let budget = self.cfg.wall(deadline.saturating_sub(v));
        let wall_deadline = start + budget;
        let (lock, cvar) = &*self.mail;
        let mut mail = lock.lock().unwrap();
        loop {
            let epoch = mail.epoch;
            if let Some(queue) = mail.by_epoch.get_mut(&epoch) {
                if !queue.is_empty() {
                    let env = queue.remove(0);
                    drop(mail);
                    return RecvOutcome::Delivered(env, self.advance_vclock(start));
                }
            }
            let left = wall_deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.advance_vclock(start);
                return RecvOutcome::TimedOut;
            }
            let (guard, _timeout) = cvar.wait_timeout(mail, left).unwrap();
            mail = guard;
        }
    }

    fn begin_trial(&self, _salt: u64) {
        let (lock, cvar) = &*self.mail;
        let mut mail = lock.lock().unwrap();
        mail.epoch += 1;
        mail.prune();
        self.vclock.store(0, Ordering::Relaxed);
        cvar.notify_all();
    }
}

/// Accepts inbound connections and spawns one handler per peer connection.
fn acceptor_loop(
    listener: TcpListener,
    mail: Arc<(Mutex<MailState>, Condvar)>,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mail = Arc::clone(&mail);
        std::thread::spawn(move || {
            let _ = handle_peer(stream, mail);
        });
    }
}

/// Reads HELLO then DATA frames from one peer connection, acknowledging and
/// delivering each; exits on any socket error (peer death ≡ EOF/reset).
fn handle_peer(mut stream: TcpStream, mail: Arc<(Mutex<MailState>, Condvar)>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let hello = read_frame(&mut stream)?;
    if hello.first() != Some(&KIND_HELLO) || hello.len() < 5 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO"));
    }
    loop {
        let frame = read_frame(&mut stream)?;
        if frame.first() != Some(&KIND_DATA) || frame.len() < 33 {
            continue;
        }
        let epoch = u64::from_le_bytes(frame[1..9].try_into().unwrap());
        let env = Envelope {
            src: u32::from_le_bytes(frame[9..13].try_into().unwrap()) as NodeId,
            dst: u32::from_le_bytes(frame[13..17].try_into().unwrap()) as NodeId,
            seq: u32::from_le_bytes(frame[17..21].try_into().unwrap()),
            attempt: u32::from_le_bytes(frame[21..25].try_into().unwrap()),
            payload: u64::from_le_bytes(frame[25..33].try_into().unwrap()),
        };
        {
            let (lock, cvar) = &*mail;
            let mut state = lock.lock().unwrap();
            // Stale frames (epoch already finished/abandoned here) are
            // dropped but still acknowledged below, so a lagging sender
            // completes instead of retrying forever.
            if epoch >= state.epoch {
                let seen = state.seen.entry(epoch).or_default();
                if !seen.contains(&(env.src, env.seq)) {
                    seen.push((env.src, env.seq));
                    state.by_epoch.entry(epoch).or_default().push(env);
                    cvar.notify_all();
                }
            }
        }
        let mut ack = Vec::with_capacity(13);
        ack.push(KIND_ACK);
        ack.extend_from_slice(&epoch.to_le_bytes());
        ack.extend_from_slice(&env.seq.to_le_bytes());
        write_frame(&mut &stream, &ack)?;
    }
}

fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = body.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_frame(stream: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RetryPolicy;
    use crate::transport::{robust_send, FaultCause};

    fn env(src: NodeId, dst: NodeId, seq: u32, payload: u64) -> Envelope {
        Envelope {
            src,
            dst,
            seq,
            attempt: 0,
            payload,
        }
    }

    fn pair() -> Option<(TcpTransport, TcpTransport)> {
        let a = TcpTransport::bind(0).ok()?;
        let b = TcpTransport::bind(1).ok()?;
        a.set_peer(1, b.local_addr());
        b.set_peer(0, a.local_addr());
        Some((a, b))
    }

    #[test]
    fn delivers_and_acks_over_loopback() {
        let Some((a, b)) = pair() else { return };
        a.begin_trial(7);
        b.begin_trial(7);
        let got = a.send(0, &env(0, 1, 0, 42), 1 << 20);
        assert!(matches!(got, SendOutcome::Acked(_)));
        let RecvOutcome::Delivered(e, _) = b.recv(1, 1 << 20) else {
            panic!("expected delivery");
        };
        assert_eq!(e.payload, 42);
        assert_eq!(e.src, 0);
    }

    #[test]
    fn future_epoch_buffers_until_receiver_catches_up() {
        let Some((a, b)) = pair() else { return };
        a.set_epoch(5);
        b.set_epoch(4);
        assert!(matches!(
            a.send(0, &env(0, 1, 0, 9), 1 << 20),
            SendOutcome::Acked(_)
        ));
        // Receiver is still at epoch 4: nothing deliverable.
        assert_eq!(b.recv(1, 1), RecvOutcome::TimedOut);
        // Catch up: the buffered frame becomes visible.
        b.set_epoch(5);
        let RecvOutcome::Delivered(e, _) = b.recv(1, 1 << 20) else {
            panic!("expected delivery after epoch catch-up");
        };
        assert_eq!(e.payload, 9);
    }

    #[test]
    fn stale_epoch_is_acked_but_dropped_and_dedup_holds() {
        let Some((a, b)) = pair() else { return };
        a.set_epoch(3);
        b.set_epoch(8);
        // Stale: acked (sender completes) but never delivered.
        assert!(matches!(
            a.send(0, &env(0, 1, 0, 1), 1 << 20),
            SendOutcome::Acked(_)
        ));
        assert_eq!(b.recv(1, 1), RecvOutcome::TimedOut);
        // Dedup: the same (epoch, src, seq) delivered once despite a
        // retransmission.
        a.set_epoch(8);
        let mut e = env(0, 1, 4, 77);
        assert!(matches!(a.send(0, &e, 1 << 20), SendOutcome::Acked(_)));
        e.attempt = 1;
        assert!(matches!(a.send(0, &e, 1 << 20), SendOutcome::Acked(_)));
        assert!(matches!(b.recv(1, 1 << 20), RecvOutcome::Delivered(_, _)));
        assert_eq!(b.recv(1, 1), RecvOutcome::TimedOut);
    }

    #[test]
    fn reconnects_to_rebound_peer_via_retry_policy() {
        let Some((a, b)) = pair() else { return };
        a.set_epoch(1);
        b.set_epoch(1);
        assert!(matches!(
            a.send(0, &env(0, 1, 0, 5), 1 << 20),
            SendOutcome::Acked(_)
        ));
        assert!(matches!(b.recv(1, 1 << 20), RecvOutcome::Delivered(_, _)));
        // "Restart" node 1 on a fresh port: the old listener dies with it.
        let b_addr_old = b.local_addr();
        drop(b);
        let b2 = TcpTransport::bind(1).expect("rebind");
        assert_ne!(b_addr_old, b2.local_addr());
        b2.set_peer(0, a.local_addr());
        b2.set_epoch(1);
        a.set_peer(1, b2.local_addr());
        // The shared RetryPolicy drives the reconnect: the cached socket is
        // gone, so robust_send dials the new address.
        let policy = RetryPolicy {
            base_timeout: 1 << 14,
            max_attempts: 4,
            jitter: 0.0,
        };
        let mut clock: VTime = 0;
        let sent = robust_send(&a, &policy, 0xABCD, &mut clock, env(0, 1, 1, 6));
        assert!(sent.is_ok(), "reconnect failed: {sent:?}");
        let RecvOutcome::Delivered(e, _) = b2.recv(1, 1 << 20) else {
            panic!("expected delivery on rebound listener");
        };
        assert_eq!(e.payload, 6);
    }

    #[test]
    fn dead_peer_exhausts_retries_with_fault_cause() {
        let Some((a, b)) = pair() else { return };
        a.set_epoch(1);
        drop(b); // peer gone, no restart
        let policy = RetryPolicy {
            base_timeout: 1 << 10,
            max_attempts: 2,
            jitter: 0.0,
        };
        let mut clock: VTime = 0;
        let err = robust_send(&a, &policy, 1, &mut clock, env(0, 1, 0, 3));
        assert!(matches!(
            err,
            Err(FaultCause::RetriesExhausted { to: 1, .. })
        ));
    }
}
