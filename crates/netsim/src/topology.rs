//! Standard network topologies used by the protocols and benchmarks.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The path `v_0 — v_1 — ... — v_r` of length `r` (so `r + 1` nodes).
///
/// This is the topology of Sections 3.2, 4, 5.1, 7 and 8 of the paper, with
/// the two extremities `v_0` and `v_r` holding the inputs.
pub fn path(r: usize) -> Graph {
    let mut g = Graph::new(r + 1);
    for i in 0..r {
        g.add_edge(i, i + 1);
    }
    g
}

/// The star with `leaves` leaves attached to a central node 0.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for i in 1..=leaves {
        g.add_edge(0, i);
    }
    g
}

/// The cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// The complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// A "spider": `legs` disjoint paths of length `leg_len` glued at a common
/// centre (node 0). The leaf of leg `k` is node `k * leg_len + leg_len`.
/// Used to model multiple terminals at distance `leg_len` from a centre.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(leg_len >= 1, "spider legs must have length at least 1");
    let mut g = Graph::new(1 + legs * leg_len);
    for k in 0..legs {
        let base = 1 + k * leg_len;
        g.add_edge(0, base);
        for i in 0..(leg_len - 1) {
            g.add_edge(base + i, base + i + 1);
        }
    }
    g
}

/// The leaf node of leg `k` of [`spider`]`(legs, leg_len)`.
pub fn spider_leaf(k: usize, leg_len: usize) -> usize {
    1 + k * leg_len + (leg_len - 1)
}

/// A `w × h` grid graph (nodes indexed row-major).
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = Graph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = y * w + x;
            if x + 1 < w {
                g.add_edge(id, id + 1);
            }
            if y + 1 < h {
                g.add_edge(id, id + w);
            }
        }
    }
    g
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer-like
/// attachment: node `i` attaches to a uniformly random earlier node).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        g.add_edge(parent, i);
    }
    g
}

/// A connected Erdős–Rényi-style random graph: a random tree plus each extra
/// edge independently with probability `p`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    let mut g = random_tree(n, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e3779b97f4a7c15));
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) && rng.random::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A deterministic family of `count` connected random graphs for sweep-style
/// tests and the adversarial soundness charts: instance `i` has a node count
/// drawn uniformly from `[min_nodes, max_nodes]` and extra-edge probability
/// `edge_p`, all derived from `seed` (same seed → same family).
///
/// # Panics
///
/// Panics if `min_nodes` is 0 or exceeds `max_nodes`.
pub fn random_connected_sweep(
    count: usize,
    min_nodes: usize,
    max_nodes: usize,
    edge_p: f64,
    seed: u64,
) -> Vec<Graph> {
    assert!(
        (1..=max_nodes).contains(&min_nodes),
        "need 1 <= min_nodes <= max_nodes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let n = rng.random_range(min_nodes..=max_nodes);
            random_connected(n, edge_p, seed.wrapping_add(1).wrapping_mul(i as u64 + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_connected_sweep_is_deterministic_and_connected() {
        let a = random_connected_sweep(20, 4, 12, 0.15, 99);
        let b = random_connected_sweep(20, 4, 12, 0.15, 99);
        assert_eq!(a.len(), 20);
        for (ga, gb) in a.iter().zip(b.iter()) {
            assert!(ga.is_connected());
            assert!((4..=12).contains(&ga.num_nodes()));
            assert_eq!(ga.edges(), gb.edges());
        }
        // Different seeds give a different family.
        let c = random_connected_sweep(20, 4, 12, 0.15, 100);
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(ga, gc)| ga.edges() != gc.edges()));
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.distance(0, 5), Some(5));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.radius(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.distance(0, 3), Some(3));
        assert_eq!(g.radius(), 3);
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn spider_structure() {
        let g = spider(3, 2);
        assert_eq!(g.num_nodes(), 7);
        assert!(g.is_connected());
        for k in 0..3 {
            let leaf = spider_leaf(k, 2);
            assert_eq!(g.degree(leaf), 1);
            assert_eq!(g.distance(0, leaf), Some(2));
        }
        // Terminals on different legs are at distance 4.
        assert_eq!(g.distance(spider_leaf(0, 2), spider_leaf(1, 2)), Some(4));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert!(g.is_connected());
        assert_eq!(g.distance(0, 11), Some(2 + 3));
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..5 {
            let g = random_tree(20, seed);
            assert!(g.is_connected());
            assert_eq!(g.num_edges(), 19);
        }
    }

    #[test]
    fn random_connected_is_connected_and_supersets_tree() {
        let g = random_connected(15, 0.2, 3);
        assert!(g.is_connected());
        assert!(g.num_edges() >= 14);
    }

    #[test]
    fn random_topologies_are_reproducible() {
        assert_eq!(random_tree(10, 42).edges(), random_tree(10, 42).edges());
        assert_eq!(
            random_connected(10, 0.3, 7).edges(),
            random_connected(10, 0.3, 7).edges()
        );
    }
}
