//! Round-based cost accounting for distributed verification protocols.
//!
//! Every dQMA / dMA protocol in the paper is compared by four numbers
//! (Definitions 5–8): the local and total proof size, and the local and total
//! message size, plus the number of verification rounds. The protocol
//! implementations in the `dqma` crate record their resource usage into a
//! [`CostTracker`] so the benchmark harness can print the same columns as the
//! paper's tables.

use std::collections::HashMap;

/// Whether a recorded quantity is measured in qubits (quantum protocols) or
/// classical bits (dMA protocols and classical side information).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Quantum bits.
    Qubits,
    /// Classical bits.
    Bits,
}

/// Accumulates per-node proof sizes and per-edge message sizes for one
/// protocol execution.
#[derive(Clone, Debug, Default)]
pub struct CostTracker {
    proof: HashMap<usize, u64>,
    messages: HashMap<(usize, usize), u64>,
    rounds: usize,
    proof_bits: HashMap<usize, u64>,
    message_bits: HashMap<(usize, usize), u64>,
}

/// Summary of the costs of one protocol execution, in the units of
/// Definitions 5–8 of the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCosts {
    /// Largest proof received by any single node, in qubits.
    pub local_proof_qubits: u64,
    /// Sum of proof sizes over all nodes, in qubits.
    pub total_proof_qubits: u64,
    /// Largest message exchanged over any single edge, in qubits.
    pub local_message_qubits: u64,
    /// Sum of message sizes over all edges, in qubits.
    pub total_message_qubits: u64,
    /// Largest classical proof/side information at any single node, in bits.
    pub local_proof_bits: u64,
    /// Total classical proof/side information, in bits.
    pub total_proof_bits: u64,
    /// Largest classical message over any edge, in bits.
    pub local_message_bits: u64,
    /// Total classical messages, in bits.
    pub total_message_bits: u64,
    /// Number of verification rounds.
    pub rounds: usize,
}

impl CostTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CostTracker::default()
    }

    /// Records `qubits` of quantum proof delivered to `node`.
    pub fn record_proof(&mut self, node: usize, qubits: u64) {
        *self.proof.entry(node).or_insert(0) += qubits;
    }

    /// Records `bits` of classical proof delivered to `node`.
    pub fn record_proof_bits(&mut self, node: usize, bits: u64) {
        *self.proof_bits.entry(node).or_insert(0) += bits;
    }

    /// Records a quantum message of `qubits` qubits over the edge `{u, v}`.
    pub fn record_message(&mut self, u: usize, v: usize, qubits: u64) {
        let key = if u <= v { (u, v) } else { (v, u) };
        *self.messages.entry(key).or_insert(0) += qubits;
    }

    /// Records a classical message of `bits` bits over the edge `{u, v}`.
    pub fn record_message_bits(&mut self, u: usize, v: usize, bits: u64) {
        let key = if u <= v { (u, v) } else { (v, u) };
        *self.message_bits.entry(key).or_insert(0) += bits;
    }

    /// Sets the number of verification rounds used.
    pub fn set_rounds(&mut self, rounds: usize) {
        self.rounds = rounds;
    }

    /// Merges the records of another tracker (e.g. a parallel repetition).
    pub fn merge(&mut self, other: &CostTracker) {
        for (&k, &v) in &other.proof {
            *self.proof.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.proof_bits {
            *self.proof_bits.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.messages {
            *self.messages.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.message_bits {
            *self.message_bits.entry(k).or_insert(0) += v;
        }
        self.rounds = self.rounds.max(other.rounds);
    }

    /// Summarises the recorded costs.
    pub fn summary(&self) -> ProtocolCosts {
        ProtocolCosts {
            local_proof_qubits: self.proof.values().copied().max().unwrap_or(0),
            total_proof_qubits: self.proof.values().sum(),
            local_message_qubits: self.messages.values().copied().max().unwrap_or(0),
            total_message_qubits: self.messages.values().sum(),
            local_proof_bits: self.proof_bits.values().copied().max().unwrap_or(0),
            total_proof_bits: self.proof_bits.values().sum(),
            local_message_bits: self.message_bits.values().copied().max().unwrap_or(0),
            total_message_bits: self.message_bits.values().sum(),
            rounds: self.rounds,
        }
    }
}

impl ProtocolCosts {
    /// Sum of local quantum proof and message sizes — the quantity bounded in
    /// the paper's upper-bound theorems ("local proof and message of size ...").
    pub fn local_qubits(&self) -> u64 {
        self.local_proof_qubits + self.local_message_qubits
    }

    /// Total proof plus communication in qubits — the quantity bounded in the
    /// lower-bound theorems of Section 8.
    pub fn total_qubits(&self) -> u64 {
        self.total_proof_qubits + self.total_message_qubits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_summary_is_zero() {
        let c = CostTracker::new().summary();
        assert_eq!(c, ProtocolCosts::default());
        assert_eq!(c.local_qubits(), 0);
        assert_eq!(c.total_qubits(), 0);
    }

    #[test]
    fn proof_and_message_accounting() {
        let mut t = CostTracker::new();
        t.record_proof(1, 10);
        t.record_proof(2, 30);
        t.record_proof(1, 5);
        t.record_message(0, 1, 7);
        t.record_message(1, 0, 3); // same undirected edge
        t.record_message(1, 2, 20);
        t.set_rounds(1);
        let s = t.summary();
        assert_eq!(s.local_proof_qubits, 30);
        assert_eq!(s.total_proof_qubits, 45);
        assert_eq!(s.local_message_qubits, 20);
        assert_eq!(s.total_message_qubits, 30);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.local_qubits(), 50);
        assert_eq!(s.total_qubits(), 75);
    }

    #[test]
    fn classical_bits_tracked_separately() {
        let mut t = CostTracker::new();
        t.record_proof_bits(0, 100);
        t.record_message_bits(0, 1, 8);
        let s = t.summary();
        assert_eq!(s.total_proof_bits, 100);
        assert_eq!(s.local_message_bits, 8);
        assert_eq!(s.total_proof_qubits, 0);
    }

    #[test]
    fn merge_accumulates_and_takes_max_rounds() {
        let mut a = CostTracker::new();
        a.record_proof(0, 4);
        a.set_rounds(1);
        let mut b = CostTracker::new();
        b.record_proof(0, 6);
        b.record_message(0, 1, 2);
        b.set_rounds(3);
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.total_proof_qubits, 10);
        assert_eq!(s.total_message_qubits, 2);
        assert_eq!(s.rounds, 3);
    }
}
