//! Property tests pinning the `[start, end)` boundary semantics of
//! [`FaultPlan::edge_blocked`] and [`FaultPlan::node_down_until`].
//!
//! Scenario replays (the supervisor's churn schedules, the fault-sweep
//! digests committed in BENCH_faults.json) assume half-open windows: a
//! partition or crash is in force *at* its start tick and *not* at its end
//! tick. A one-tick drift in either direction silently changes which
//! messages a replayed schedule kills, so both edges are pinned here across
//! a seeded sweep of windows rather than a couple of hand-picked values.

use netsim::transport::{CrashWindow, FaultPlan, PartitionWindow, VTime};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn partition_plan(start: VTime, end: VTime, edges: Vec<(usize, usize)>) -> FaultPlan {
    FaultPlan {
        partitions: vec![PartitionWindow { start, end, edges }],
        ..FaultPlan::none()
    }
}

fn crash_plan(node: usize, start: VTime, end: VTime) -> FaultPlan {
    FaultPlan {
        crashes: vec![CrashWindow { node, start, end }],
        ..FaultPlan::none()
    }
}

#[test]
fn partition_window_is_half_open_across_seeded_sweep() {
    let mut rng = StdRng::seed_from_u64(0xF00D_0001);
    for _ in 0..500 {
        let start = rng.random::<u64>() % (1 << 40);
        let len = 1 + rng.random::<u64>() % (1 << 20);
        let end = start + len;
        let plan = partition_plan(start, end, vec![(2, 5)]);
        // Inclusive start: blocked at exactly `start`.
        assert!(plan.edge_blocked(2, 5, start), "start tick must block");
        // Exclusive end: open again at exactly `end`.
        assert!(!plan.edge_blocked(2, 5, end), "end tick must not block");
        // Last covered tick.
        assert!(plan.edge_blocked(2, 5, end - 1));
        // Just before the window.
        if start > 0 {
            assert!(!plan.edge_blocked(2, 5, start - 1));
        }
        // Interior point.
        let mid = start + rng.random::<u64>() % len;
        assert!(plan.edge_blocked(2, 5, mid));
    }
}

#[test]
fn partition_blocks_both_directions_and_only_listed_edges() {
    let plan = partition_plan(10, 20, vec![(1, 3)]);
    for t in 10..20 {
        assert!(plan.edge_blocked(1, 3, t));
        assert!(plan.edge_blocked(3, 1, t), "undirected: both orientations");
        assert!(!plan.edge_blocked(1, 2, t), "unlisted edge stays open");
    }
}

#[test]
fn empty_partition_window_blocks_nothing() {
    // A zero-length window [t, t) covers no tick at all.
    let plan = partition_plan(7, 7, vec![(0, 1)]);
    for t in 5..10 {
        assert!(!plan.edge_blocked(0, 1, t));
    }
}

#[test]
fn crash_window_is_half_open_across_seeded_sweep() {
    let mut rng = StdRng::seed_from_u64(0xF00D_0002);
    for _ in 0..500 {
        let start = rng.random::<u64>() % (1 << 40);
        let len = 1 + rng.random::<u64>() % (1 << 20);
        let end = start + len;
        let node = (rng.random::<u64>() % 16) as usize;
        let plan = crash_plan(node, start, end);
        // Inclusive start; the reported restart instant is exactly `end`.
        assert_eq!(plan.node_down_until(0, node, start), Some(end));
        // Last covered tick.
        assert_eq!(plan.node_down_until(0, node, end - 1), Some(end));
        // Exclusive end: the node is back up at its restart instant.
        assert_eq!(plan.node_down_until(0, node, end), None);
        if start > 0 {
            assert_eq!(plan.node_down_until(0, node, start - 1), None);
        }
        // Other nodes are unaffected at any probed instant.
        assert_eq!(plan.node_down_until(0, node + 16, start), None);
    }
}

#[test]
fn crash_window_never_ending_reports_vtime_max() {
    let plan = crash_plan(4, 100, VTime::MAX);
    assert_eq!(plan.node_down_until(9, 4, 100), Some(VTime::MAX));
    assert_eq!(plan.node_down_until(9, 4, u64::MAX - 1), Some(VTime::MAX));
    // VTime::MAX itself is outside the half-open window — consistent with
    // the exclusive-end rule even at the saturation point.
    assert_eq!(plan.node_down_until(9, 4, VTime::MAX), None);
}

#[test]
fn seeded_crash_coin_respects_onset_and_restart_horizon() {
    // crash_rate = 1 makes every node's coin land "crash"; the onset is then
    // a salt-deterministic draw in [0, onset_window] and the down interval
    // is [onset, onset + restart_after) — probe both edges for a sweep of
    // salts and nodes.
    let plan = FaultPlan {
        crash_rate: 1.0,
        crash_onset_window: 1 << 12,
        crash_restart_after: 1 << 10,
        ..FaultPlan::none()
    };
    let mut rng = StdRng::seed_from_u64(0xF00D_0003);
    for _ in 0..200 {
        let salt = rng.random::<u64>();
        let node = (rng.random::<u64>() % 32) as usize;
        // Locate the onset: the earliest instant reported down. Binary
        // search is valid because [onset, end) is a single interval.
        let end_of = |t: VTime| plan.node_down_until(salt, node, t);
        let Some(end) = end_of(0).or_else(|| {
            // Onset may be > 0: scan coarse then refine via the contract
            // that the interval is contiguous.
            (0..=plan.crash_onset_window).find_map(end_of)
        }) else {
            panic!("crash_rate = 1 must crash every node");
        };
        let onset = end - plan.crash_restart_after;
        assert!(onset <= plan.crash_onset_window, "onset inside its window");
        // Inclusive start / exclusive end, same as scheduled windows.
        assert_eq!(end_of(onset), Some(end));
        if onset > 0 {
            assert_eq!(end_of(onset - 1), None);
        }
        assert_eq!(end_of(end - 1), Some(end));
        assert_eq!(end_of(end), None);
        // Determinism: the same (salt, node) replays identically.
        assert_eq!(plan.node_down_until(salt, node, onset), Some(end));
    }
}

#[test]
fn scheduled_crash_takes_precedence_over_seeded_coin() {
    // A scheduled window answers first even when the stochastic coin would
    // also fire — replays of recorded schedules must not depend on the
    // salt-derived overlay.
    let plan = FaultPlan {
        crash_rate: 1.0,
        crash_onset_window: 0,
        crash_restart_after: 50,
        crashes: vec![CrashWindow {
            node: 3,
            start: 10,
            end: 20,
        }],
        ..FaultPlan::none()
    };
    assert_eq!(plan.node_down_until(123, 3, 10), Some(20));
    assert_eq!(plan.node_down_until(123, 3, 19), Some(20));
}
