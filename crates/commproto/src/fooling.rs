//! 1-fooling sets (Section 2.2.1).
//!
//! A set `S ⊆ {0,1}^n × {0,1}^n` is a *1-fooling set* for `f` when
//! `f(x, y) = 1` for every pair in `S`, and for any two distinct pairs
//! `(x₁, y₁) ≠ (x₂, y₂)` in `S` at least one of the crossed pairs evaluates to
//! 0. Both the classical lower bound (Lemma 23 / Proposition 24) and the
//! quantum counting-argument lower bound (Proposition 50 / Theorem 51) are
//! parameterised by the size of a 1-fooling set; EQ and GT have 1-fooling
//! sets of size `2^n` (up to one element).

use crate::bitstring::BitString;
use crate::problems::TwoPartyFunction;

/// A 1-fooling set: a list of input pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoolingSet {
    pairs: Vec<(BitString, BitString)>,
}

impl FoolingSet {
    /// Wraps a list of pairs as a fooling set (not validated; see
    /// [`FoolingSet::is_valid_for`]).
    pub fn new(pairs: Vec<(BitString, BitString)>) -> Self {
        FoolingSet { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs.
    pub fn pairs(&self) -> &[(BitString, BitString)] {
        &self.pairs
    }

    /// Checks the 1-fooling-set property for `f` by brute force.
    pub fn is_valid_for<F: TwoPartyFunction>(&self, f: &F) -> bool {
        for (x, y) in &self.pairs {
            if !f.eval(x, y) {
                return false;
            }
        }
        for i in 0..self.pairs.len() {
            for j in (i + 1)..self.pairs.len() {
                let (x1, y1) = &self.pairs[i];
                let (x2, y2) = &self.pairs[j];
                if f.eval(x1, y2) && f.eval(x2, y1) {
                    return false;
                }
            }
        }
        true
    }
}

/// The canonical size-`2^n` 1-fooling set for EQ: the diagonal `{(x, x)}`.
///
/// # Panics
///
/// Panics if `n > 20` (brute-force enumeration guard).
pub fn eq_fooling_set(n: usize) -> FoolingSet {
    FoolingSet::new(
        BitString::all(n)
            .into_iter()
            .map(|x| (x.clone(), x))
            .collect(),
    )
}

/// A size-`2^n − 1` 1-fooling set for GT: the pairs `{(x, x − 1) : x ≥ 1}`.
///
/// # Panics
///
/// Panics if `n > 20` (brute-force enumeration guard).
pub fn gt_fooling_set(n: usize) -> FoolingSet {
    FoolingSet::new(
        (1..(1u64 << n))
            .map(|v| (BitString::from_u64(v, n), BitString::from_u64(v - 1, n)))
            .collect(),
    )
}

/// The size of the largest 1-fooling set the paper relies on for a function
/// family, as a function of `n` — `2^n` for EQ, `2^n − 1` for GT.
pub fn canonical_fooling_set_size(f_name: &str, n: usize) -> u64 {
    if f_name.starts_with("GT") {
        (1u64 << n) - 1
    } else {
        1u64 << n
    }
}

/// Greedily searches for a 1-fooling set of a small function by brute force.
/// Useful to sanity-check fooling-set sizes for the other problems; exponential
/// in `n`, so restricted to `n ≤ 10`.
///
/// # Panics
///
/// Panics if `n > 10`.
pub fn greedy_fooling_set<F: TwoPartyFunction>(f: &F) -> FoolingSet {
    let n = f.input_len();
    assert!(n <= 10, "greedy fooling set search limited to n <= 10");
    let all = BitString::all(n);
    let mut chosen: Vec<(BitString, BitString)> = Vec::new();
    for x in &all {
        for y in &all {
            if !f.eval(x, y) {
                continue;
            }
            let ok = chosen
                .iter()
                .all(|(cx, cy)| !(f.eval(cx, y) && f.eval(x, cy)));
            if ok {
                chosen.push((x.clone(), y.clone()));
            }
        }
    }
    FoolingSet::new(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Disjointness, Equality, GreaterThan, HammingAtMost};

    #[test]
    fn eq_diagonal_is_a_fooling_set_of_size_2n() {
        let n = 4;
        let s = eq_fooling_set(n);
        assert_eq!(s.len(), 1 << n);
        assert!(s.is_valid_for(&Equality { n }));
    }

    #[test]
    fn gt_fooling_set_is_valid() {
        let n = 5;
        let s = gt_fooling_set(n);
        assert_eq!(s.len(), (1 << n) - 1);
        assert!(s.is_valid_for(&GreaterThan::strict(n)));
    }

    #[test]
    fn invalid_set_detected() {
        // (00,00) and (01,01) with the Hamming<=1 function: crossed pairs both accept.
        let s = FoolingSet::new(vec![
            (BitString::from_str01("00"), BitString::from_str01("00")),
            (BitString::from_str01("01"), BitString::from_str01("01")),
        ]);
        assert!(!s.is_valid_for(&HammingAtMost { n: 2, d: 1 }));
        assert!(s.is_valid_for(&Equality { n: 2 }));
    }

    #[test]
    fn greedy_search_recovers_large_fooling_set_for_eq() {
        let f = Equality { n: 4 };
        let s = greedy_fooling_set(&f);
        assert!(s.is_valid_for(&f));
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn greedy_search_on_disjointness_is_valid() {
        let f = Disjointness { n: 4 };
        let s = greedy_fooling_set(&f);
        assert!(s.is_valid_for(&f));
        assert!(!s.is_empty());
    }

    #[test]
    fn disjointness_complement_pairs_form_a_fooling_set() {
        // DISJ has a fooling set of size 2^n: x paired with its complement.
        let n = 4;
        let ones = BitString::from_u64((1 << n) - 1, n);
        let s = FoolingSet::new(
            BitString::all(n)
                .into_iter()
                .map(|x| (x.clone(), x.xor(&ones)))
                .collect(),
        );
        assert_eq!(s.len(), 1 << n);
        assert!(s.is_valid_for(&Disjointness { n }));
    }

    #[test]
    fn canonical_sizes() {
        assert_eq!(canonical_fooling_set_size("EQ_8", 8), 256);
        assert_eq!(canonical_fooling_set_size("GT>_8", 8), 255);
    }
}
