//! QMA communication protocols and their one-way / two-proof variants
//! (Section 2.2.2 of the paper).
//!
//! A QMA communication protocol lets an untrusted Merlin send a quantum proof
//! to Alice before Alice and Bob communicate. The paper uses three flavours:
//!
//! * `QMAcc(f)` — proof to Alice, arbitrary two-way communication;
//! * `QMAcc¹(f)` — proof to Alice, a single message from Alice to Bob
//!   (Definition 3); this is the variant that converts into a dQMA protocol on
//!   a path (Theorem 42 / Algorithm 10);
//! * `QMAcc*(f)` — possibly entangled proofs to both parties (Definition 4);
//!   this is the variant a dQMA protocol reduces **to** (Algorithm 11).
//!
//! The executable interface here is [`QmaOneWayProtocol`]: the purified
//! "Carol/Dave" form used in the proof of Theorem 42, where Alice applies a
//! unitary to the proof plus ancillas and forwards everything to Bob, who
//! measures a two-outcome POVM.

use crate::bitstring::BitString;
use crate::one_way::OneWayProtocol;
use qsim::{CMatrix, CVector, PureState};

/// Cost of a QMA-style communication protocol, in qubits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QmaCosts {
    /// Proof qubits sent by Merlin to Alice (γ, or γ₁ for QMA*).
    pub proof_to_alice: usize,
    /// Proof qubits sent by Merlin to Bob (γ₂; zero except for QMA*).
    pub proof_to_bob: usize,
    /// Communication qubits exchanged between Alice and Bob (µ).
    pub communication: usize,
}

impl QmaCosts {
    /// Total cost `γ₁ + γ₂ + µ`.
    pub fn total(&self) -> usize {
        self.proof_to_alice + self.proof_to_bob + self.communication
    }

    /// The cost of simulating a QMA* protocol by a plain QMA protocol
    /// (inequality (1) in the paper): `γ₁ + 2γ₂ + µ`.
    pub fn qma_simulation_cost(&self) -> usize {
        self.proof_to_alice + 2 * self.proof_to_bob + self.communication
    }
}

/// A QMA one-way communication protocol in purified ("Carol/Dave") form:
/// Merlin sends a proof of dimension [`Self::proof_dim`] to Alice; Alice
/// applies [`Self::alice_unitary`] to the proof together with ancillas
/// initialised to `|0…0>` and sends the whole register to Bob; Bob measures
/// the two-outcome POVM with accept effect [`Self::bob_effect`].
pub trait QmaOneWayProtocol {
    /// The per-party input type (bit strings for Boolean functions, subspace
    /// descriptions for the LSD problem, ...).
    type Input: Clone;

    /// Dimension of Merlin's proof register.
    fn proof_dim(&self) -> usize;

    /// Dimension of Alice's ancilla register.
    fn ancilla_dim(&self) -> usize;

    /// Dimension of the register Alice forwards to Bob
    /// (`proof_dim · ancilla_dim`).
    fn message_dim(&self) -> usize {
        self.proof_dim() * self.ancilla_dim()
    }

    /// Alice's unitary on proof ⊗ ancilla, depending on her input.
    fn alice_unitary(&self, x: &Self::Input) -> CMatrix;

    /// Bob's accept effect on the forwarded register, depending on his input.
    fn bob_effect(&self, y: &Self::Input) -> CMatrix;

    /// An optimal (or near-optimal) honest proof for a 1-input pair, used to
    /// demonstrate completeness.
    fn honest_proof(&self, x: &Self::Input, y: &Self::Input) -> PureState;

    /// Acceptance probability guaranteed on 1-inputs with the honest proof.
    fn completeness(&self) -> f64;

    /// Maximum acceptance probability over all proofs on 0-inputs.
    fn soundness_error(&self) -> f64;

    /// Proof size in qubits (γ).
    fn proof_qubits(&self) -> usize {
        self.proof_dim().next_power_of_two().trailing_zeros() as usize
    }

    /// Communication size in qubits (µ): the register Alice forwards.
    fn comm_qubits(&self) -> usize {
        self.message_dim().next_power_of_two().trailing_zeros() as usize
    }

    /// The cost record `γ + µ`.
    fn costs(&self) -> QmaCosts {
        QmaCosts {
            proof_to_alice: self.proof_qubits(),
            proof_to_bob: 0,
            communication: self.comm_qubits(),
        }
    }

    /// Acceptance probability on input `(x, y)` when Merlin sends the pure
    /// proof `proof`.
    fn accept_probability(&self, x: &Self::Input, y: &Self::Input, proof: &PureState) -> f64 {
        assert_eq!(proof.dim(), self.proof_dim(), "proof dimension mismatch");
        let ancilla = PureState::single(self.ancilla_dim(), 0);
        let mut joint = proof.tensor(&ancilla).regroup(&[self.message_dim()]);
        joint.apply_unitary(&[0], &self.alice_unitary(x));
        let effect = self.bob_effect(y);
        let v = joint.amplitudes();
        v.inner(&effect.apply(v)).re.clamp(0.0, 1.0)
    }

    /// The exact maximum acceptance probability over all proofs on `(x, y)`:
    /// the largest eigenvalue of the proof-space acceptance operator
    /// `A = (I ⊗ <0|) U_x† M_{y,1} U_x (I ⊗ |0>)`.
    fn optimal_accept_probability(&self, x: &Self::Input, y: &Self::Input) -> f64 {
        let u = self.alice_unitary(x);
        let m = self.bob_effect(y);
        let inner = u.adjoint().matmul(&m).matmul(&u);
        // Restrict to the proof ⊗ |0> block.
        let pd = self.proof_dim();
        let ad = self.ancilla_dim();
        let a = CMatrix::from_fn(pd, pd, |i, j| inner.at(i * ad, j * ad));
        qsim::linalg::max_eigenvalue(&a).clamp(0.0, 1.0)
    }
}

/// Completes a unit vector to a unitary whose first column is that vector
/// (Gram–Schmidt over the computational basis).
pub fn unitary_with_first_column(v: &CVector) -> CMatrix {
    let d = v.dim();
    let mut cols: Vec<CVector> = vec![v.normalized()];
    for b in 0..d {
        if cols.len() == d {
            break;
        }
        let mut cand = CVector::basis(d, b);
        for c in &cols {
            let proj = c.inner(&cand);
            cand.add_scaled(c, -proj);
        }
        if cand.norm() > 1e-9 {
            cols.push(cand.normalized());
        }
    }
    assert_eq!(cols.len(), d, "failed to complete an orthonormal basis");
    CMatrix::from_fn(d, d, |i, j| cols[j].at(i))
}

/// Wraps a (Merlin-free) one-way quantum protocol as a degenerate QMA one-way
/// protocol with a trivial one-dimensional proof. This is how functions with
/// efficient one-way protocols (EQ, the Hamming sketch) enter the generic
/// dQMA-from-QMAcc machinery of Section 7.
#[derive(Clone, Debug)]
pub struct OneWayAsQma<P> {
    protocol: P,
}

impl<P: OneWayProtocol> OneWayAsQma<P> {
    /// Wraps the one-way protocol.
    pub fn new(protocol: P) -> Self {
        OneWayAsQma { protocol }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.protocol
    }
}

impl<P: OneWayProtocol> QmaOneWayProtocol for OneWayAsQma<P> {
    type Input = BitString;

    fn proof_dim(&self) -> usize {
        1
    }
    fn ancilla_dim(&self) -> usize {
        self.protocol.message_dim()
    }
    fn alice_unitary(&self, x: &Self::Input) -> CMatrix {
        unitary_with_first_column(self.protocol.alice_message(x).amplitudes())
    }
    fn bob_effect(&self, y: &Self::Input) -> CMatrix {
        self.protocol.bob_effect(y)
    }
    fn honest_proof(&self, _x: &Self::Input, _y: &Self::Input) -> PureState {
        PureState::single(1, 0)
    }
    fn completeness(&self) -> f64 {
        self.protocol.completeness()
    }
    fn soundness_error(&self) -> f64 {
        self.protocol.soundness_error()
    }
    fn proof_qubits(&self) -> usize {
        0
    }
}

/// A cost-level description of a general (two-way, possibly QMA*) communication
/// protocol, used for the cost-accounting side of Theorem 46 and
/// Proposition 47.
#[derive(Clone, Debug)]
pub struct QmaCommSpec {
    /// Human-readable protocol / problem name.
    pub name: String,
    /// Costs in qubits.
    pub costs: QmaCosts,
    /// Number of communication rounds.
    pub rounds: usize,
}

impl QmaCommSpec {
    /// The LSD-instance dimension `m = 2^{O(C)}` produced by the Raz–Shpilka
    /// reduction from a protocol of total cost `C` (Lemma 44; the constant in
    /// the exponent is taken to be 1).
    pub fn lsd_dimension(&self) -> u64 {
        1u64 << self.costs.total().min(62)
    }

    /// The input size of the finite-precision LSD instance,
    /// `O(m² log m)` bits (Section 7).
    pub fn lsd_input_bits(&self) -> f64 {
        let m = self.lsd_dimension() as f64;
        m * m * m.log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_way::EqOneWay;
    use qsim::Complex;

    #[test]
    fn unitary_completion_has_given_first_column() {
        let v = CVector::new(vec![
            Complex::new(0.5, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(0.5, 0.0),
            Complex::new(0.5, 0.0),
        ]);
        let u = unitary_with_first_column(&v);
        assert!(u.is_unitary(1e-10));
        let col0 = u.column(0);
        assert!(col0.approx_eq(&v.normalized(), 1e-10));
    }

    #[test]
    fn one_way_as_qma_preserves_acceptance() {
        let proto = EqOneWay::for_input_len(4, 3);
        let qma = OneWayAsQma::new(proto);
        let x = BitString::from_str01("1010");
        let y = BitString::from_str01("1010");
        let proof = qma.honest_proof(&x, &y);
        assert!((qma.accept_probability(&x, &y, &proof) - 1.0).abs() < 1e-9);
        let y2 = BitString::from_str01("1011");
        let p = qma.accept_probability(&x, &y2, &proof);
        assert!(p <= qma.inner().soundness_error() + 1e-9);
    }

    #[test]
    fn optimal_acceptance_with_trivial_proof_matches_direct_run() {
        let proto = EqOneWay::for_input_len(3, 9);
        let qma = OneWayAsQma::new(proto);
        let x = BitString::from_str01("101");
        let y = BitString::from_str01("100");
        let direct = qma.accept_probability(&x, &y, &qma.honest_proof(&x, &y));
        let optimal = qma.optimal_accept_probability(&x, &y);
        // With a 1-dimensional proof space the optimum equals the direct run.
        assert!((direct - optimal).abs() < 1e-9);
    }

    #[test]
    fn costs_arithmetic() {
        let c = QmaCosts {
            proof_to_alice: 3,
            proof_to_bob: 2,
            communication: 5,
        };
        assert_eq!(c.total(), 10);
        assert_eq!(c.qma_simulation_cost(), 12);
    }

    #[test]
    fn comm_spec_lsd_dimensions_grow_exponentially() {
        let small = QmaCommSpec {
            name: "f".into(),
            costs: QmaCosts {
                proof_to_alice: 2,
                proof_to_bob: 0,
                communication: 2,
            },
            rounds: 1,
        };
        let big = QmaCommSpec {
            name: "g".into(),
            costs: QmaCosts {
                proof_to_alice: 4,
                proof_to_bob: 0,
                communication: 4,
            },
            rounds: 1,
        };
        assert!(big.lsd_dimension() > small.lsd_dimension());
        assert!(big.lsd_input_bits() > small.lsd_input_bits());
    }
}
