//! One-way quantum communication protocols (Section 2.2.1).
//!
//! A one-way protocol for `f` lets Alice send a single quantum message to Bob,
//! who must output `f(x, y)` with bounded error. The dQMA constructions of
//! Sections 3 and 6 of the paper consume such protocols through a narrow
//! interface: the message state `|ψ(x)>`, Bob's accept effect `M_{y,1}`, the
//! message size, and the error bounds. This module defines that interface and
//! provides:
//!
//! * [`EqOneWay`] — the fingerprint protocol π for EQ with one-sided error,
//! * [`ExactHammingOneWay`] — an exact (but `n`-qubit) protocol for `HAM≤d`,
//!   used as the correctness baseline,
//! * [`GapHammingOneWay`] — a sketch-based protocol with `O(log n)`-qubit
//!   messages that separates distance `≤ d` from distance `≥ 2d + 1`
//!   (the simulable substitute for the LZ13 protocol; see DESIGN.md).

use crate::bitstring::BitString;
use crate::fingerprint::FingerprintScheme;
use crate::problems::{HammingAtMost, TwoPartyFunction};
use qsim::{CMatrix, DensityMatrix, PureState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A one-way quantum communication protocol for a two-party function.
pub trait OneWayProtocol {
    /// Input length per party.
    fn input_len(&self) -> usize;

    /// Hilbert-space dimension of Alice's message register.
    fn message_dim(&self) -> usize;

    /// Message size in qubits (`⌈log₂ dim⌉`).
    fn message_qubits(&self) -> usize {
        self.message_dim().next_power_of_two().trailing_zeros() as usize
    }

    /// Alice's message on input `x`.
    fn alice_message(&self, x: &BitString) -> PureState;

    /// Bob's accept effect `M_{y,1}` on input `y` (a PSD operator `≤ I` on the
    /// message register).
    fn bob_effect(&self, y: &BitString) -> CMatrix;

    /// Probability that Bob accepts when the message register is in state
    /// `message` and Bob's input is `y`.
    fn accept_probability(&self, message: &DensityMatrix, y: &BitString) -> f64 {
        message.expectation(&self.bob_effect(y)).re.clamp(0.0, 1.0)
    }

    /// Acceptance probability on the honest message for `(x, y)`.
    fn honest_accept_probability(&self, x: &BitString, y: &BitString) -> f64 {
        let msg = self.alice_message(x);
        let effect = self.bob_effect(y);
        let v = msg.amplitudes();
        v.inner(&effect.apply(v)).re.clamp(0.0, 1.0)
    }

    /// Acceptance probability guaranteed on 1-inputs (completeness).
    fn completeness(&self) -> f64;

    /// Maximum acceptance probability on 0-inputs (soundness error).
    fn soundness_error(&self) -> f64;
}

/// The fingerprint protocol π for EQ: Alice sends `|h_x>`, Bob projects onto
/// `|h_y>`. Accepts `x = y` with probability 1; accepts `x ≠ y` with
/// probability at most `δ²` where `δ` is the fingerprint overlap bound.
#[derive(Clone, Debug)]
pub struct EqOneWay {
    scheme: FingerprintScheme,
    delta: f64,
}

impl EqOneWay {
    /// Builds the protocol from a fingerprint scheme, measuring the realised
    /// overlap bound `δ` (exhaustively for `n ≤ 12`, by sampling otherwise).
    pub fn new(scheme: FingerprintScheme) -> Self {
        let delta = if scheme.input_len() <= 12 {
            scheme.max_pairwise_overlap()
        } else {
            scheme.estimate_max_overlap(300, 0xF1A9)
        };
        EqOneWay { scheme, delta }
    }

    /// Convenience constructor with default parameters for `n`-bit inputs.
    pub fn for_input_len(n: usize, seed: u64) -> Self {
        EqOneWay::new(FingerprintScheme::new(n, seed))
    }

    /// The fingerprint scheme in use.
    pub fn scheme(&self) -> &FingerprintScheme {
        &self.scheme
    }

    /// The measured overlap bound `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl OneWayProtocol for EqOneWay {
    fn input_len(&self) -> usize {
        self.scheme.input_len()
    }
    fn message_dim(&self) -> usize {
        self.scheme.dim()
    }
    fn alice_message(&self, x: &BitString) -> PureState {
        self.scheme.fingerprint(x)
    }
    fn bob_effect(&self, y: &BitString) -> CMatrix {
        self.scheme.accept_effect(y)
    }
    fn completeness(&self) -> f64 {
        1.0
    }
    fn soundness_error(&self) -> f64 {
        self.delta * self.delta
    }
}

/// An exact one-way protocol for `HAM≤d`: Alice sends `x` itself as a basis
/// state (`n` qubits) and Bob compares classically. Zero error, but the
/// message is as long as the input — the baseline against which the sketch
/// protocol's savings are measured.
#[derive(Clone, Copy, Debug)]
pub struct ExactHammingOneWay {
    /// Input length in bits.
    pub n: usize,
    /// Distance threshold.
    pub d: usize,
}

impl OneWayProtocol for ExactHammingOneWay {
    fn input_len(&self) -> usize {
        self.n
    }
    fn message_dim(&self) -> usize {
        1 << self.n
    }
    fn alice_message(&self, x: &BitString) -> PureState {
        PureState::single(1 << self.n, x.to_u64() as usize)
    }
    fn bob_effect(&self, y: &BitString) -> CMatrix {
        let f = HammingAtMost {
            n: self.n,
            d: self.d,
        };
        let dim = 1 << self.n;
        let probs: Vec<f64> = (0..dim)
            .map(|v| {
                let x = BitString::from_u64(v as u64, self.n);
                if f.eval(&x, y) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        qsim::measure::diagonal_effect(&probs)
    }
    fn completeness(&self) -> f64 {
        1.0
    }
    fn soundness_error(&self) -> f64 {
        0.0
    }
}

/// A gap one-way protocol for the Hamming distance built from parity sketches:
/// Alice's message is `(1/√K) Σ_j |j>|p_j(x)>` where `p_j` is the parity of a
/// seeded random subset of coordinates with inclusion probability `1/(2d)`.
/// Bob projects onto his own sketch.
///
/// Accepts distance `≤ d` pairs with noticeably higher probability than
/// distance `≥ 2d + 1` pairs. This is the `O(log n)`-qubit simulable
/// substitute for the exact-threshold LZ13 protocol; the recorded
/// completeness/soundness reflect the realised gap (see DESIGN.md).
#[derive(Clone, Debug)]
pub struct GapHammingOneWay {
    n: usize,
    d: usize,
    subsets: Vec<BitString>,
    completeness: f64,
    soundness_error: f64,
}

impl GapHammingOneWay {
    /// Builds the protocol with `k` parity sketches.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `k == 0`.
    pub fn new(n: usize, d: usize, k: usize, seed: u64) -> Self {
        assert!(d >= 1, "distance threshold must be positive");
        assert!(k >= 1, "need at least one sketch");
        let mut rng = StdRng::seed_from_u64(seed);
        let p = 1.0 / (2.0 * d as f64);
        let subsets: Vec<BitString> = (0..k)
            .map(|_| {
                BitString::new(
                    &(0..n)
                        .map(|_| rng.random::<f64>() < p)
                        .collect::<Vec<bool>>(),
                )
            })
            .collect();
        // The expected sketch agreement for a pair at distance D is
        // 1/2 + (1 - 2p)^D / 2; acceptance probability is its square.
        let agree = |dist: f64| 0.5 + 0.5 * (1.0 - 2.0 * p).powf(dist);
        let completeness = agree(d as f64).powi(2);
        let soundness_error = agree((2 * d + 1) as f64).powi(2);
        GapHammingOneWay {
            n,
            d,
            subsets,
            completeness,
            soundness_error,
        }
    }

    /// Convenience constructor: `k = 16` sketches.
    pub fn with_default_sketches(n: usize, d: usize, seed: u64) -> Self {
        GapHammingOneWay::new(n, d, 16, seed)
    }

    /// The distance threshold `d`.
    pub fn threshold(&self) -> usize {
        self.d
    }

    /// The promise gap: inputs at distance `> 2d` are treated as far.
    pub fn far_threshold(&self) -> usize {
        2 * self.d
    }

    fn sketch(&self, x: &BitString) -> PureState {
        let k = self.subsets.len();
        let amp = 1.0 / (k as f64).sqrt();
        let mut amps = vec![qsim::Complex::ZERO; 2 * k];
        for (j, subset) in self.subsets.iter().enumerate() {
            let parity = usize::from(subset.inner_product_mod2(x));
            amps[2 * j + parity] = qsim::Complex::real(amp);
        }
        PureState::from_amplitudes(&[2 * k], qsim::CVector::new(amps))
    }
}

impl OneWayProtocol for GapHammingOneWay {
    fn input_len(&self) -> usize {
        self.n
    }
    fn message_dim(&self) -> usize {
        2 * self.subsets.len()
    }
    fn alice_message(&self, x: &BitString) -> PureState {
        self.sketch(x)
    }
    fn bob_effect(&self, y: &BitString) -> CMatrix {
        CMatrix::projector(self.sketch(y).amplitudes())
    }
    fn completeness(&self) -> f64 {
        self.completeness
    }
    fn soundness_error(&self) -> f64 {
        self.soundness_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Equality;

    #[test]
    fn eq_protocol_is_perfectly_complete() {
        let proto = EqOneWay::for_input_len(5, 7);
        let x = BitString::from_str01("10110");
        assert!((proto.honest_accept_probability(&x, &x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eq_protocol_rejects_unequal_inputs_with_good_probability() {
        let proto = EqOneWay::new(FingerprintScheme::with_parameters(5, 24, 1, 7));
        let f = Equality { n: 5 };
        let x = BitString::from_str01("10110");
        let y = BitString::from_str01("10111");
        assert!(!f.eval(&x, &y));
        let p = proto.honest_accept_probability(&x, &y);
        assert!(p <= proto.soundness_error() + 1e-10, "p={p}");
        assert!(proto.soundness_error() < 1.0);
        // Tensor-power amplification drives the soundness error below 1/3
        // (checked analytically so no large joint state is built).
        let amplified = FingerprintScheme::with_parameters(5, 24, 4, 7);
        let delta = amplified.max_pairwise_overlap();
        assert!(
            delta * delta < 1.0 / 3.0,
            "amplified delta^2 = {}",
            delta * delta
        );
    }

    #[test]
    fn eq_message_size_is_logarithmic() {
        let proto = EqOneWay::for_input_len(32, 1);
        assert!(
            proto.message_qubits() <= 9,
            "got {}",
            proto.message_qubits()
        );
    }

    #[test]
    fn exact_hamming_protocol_is_exact() {
        let proto = ExactHammingOneWay { n: 4, d: 1 };
        let f = HammingAtMost { n: 4, d: 1 };
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let x = BitString::from_u64(xv, 4);
                let y = BitString::from_u64(yv, 4);
                let p = proto.honest_accept_probability(&x, &y);
                if f.eval(&x, &y) {
                    assert!((p - 1.0).abs() < 1e-10);
                } else {
                    assert!(p < 1e-10);
                }
            }
        }
    }

    #[test]
    fn gap_hamming_separates_close_from_far() {
        let n = 24;
        let d = 2;
        let proto = GapHammingOneWay::new(n, d, 64, 3);
        let x = BitString::zeros(n);
        // Distance exactly d.
        let close = BitString::from_u64((1 << d) - 1, n);
        // Distance 2d + 2 (far side of the promise).
        let far = BitString::from_u64((1 << (2 * d + 2)) - 1, n);
        let p_close = proto.honest_accept_probability(&x, &close);
        let p_far = proto.honest_accept_probability(&x, &far);
        assert!(
            p_close > p_far,
            "close pairs should be accepted more often: {p_close} vs {p_far}"
        );
        assert!(proto.completeness() > proto.soundness_error());
    }

    #[test]
    fn gap_hamming_identical_inputs_always_accept() {
        let proto = GapHammingOneWay::with_default_sketches(10, 2, 5);
        let x = BitString::from_u64(777, 10);
        assert!((proto.honest_accept_probability(&x, &x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gap_hamming_message_is_small() {
        let proto = GapHammingOneWay::new(1000, 3, 32, 9);
        assert!(proto.message_qubits() <= 7);
    }

    #[test]
    fn bob_effect_is_a_valid_effect() {
        let proto = EqOneWay::for_input_len(4, 11);
        let y = BitString::from_str01("0101");
        let e = proto.bob_effect(&y);
        assert!(e.is_hermitian(1e-10));
        let top = qsim::linalg::max_eigenvalue(&e);
        assert!(top <= 1.0 + 1e-9);
    }
}
