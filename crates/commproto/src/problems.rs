//! The decision problems studied in the paper.
//!
//! Two-party problems (Section 2.2.1): equality `EQ`, greater-than `GT` and
//! its variants, the Hamming distance threshold `HAM≤d`, disjointness `DISJ`,
//! inner product `IP`, and symmetric XOR / linear-threshold functions.
//! Multi-party problems (Sections 3, 5, 6): `EQ_t`, the ranking verification
//! `RV`, `HAM_{t,n}≤d`, and the generic `∀t f` lift of a two-party function.

use crate::bitstring::BitString;
use std::cmp::Ordering;

/// A two-party Boolean function `f : {0,1}^n × {0,1}^n → {0,1}`.
pub trait TwoPartyFunction {
    /// Input length in bits (per party).
    fn input_len(&self) -> usize;
    /// Evaluates the function.
    fn eval(&self, x: &BitString, y: &BitString) -> bool;
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

/// A multi-party Boolean function `f : ({0,1}^n)^t → {0,1}` over the inputs of
/// `t` terminals.
pub trait MultiPartyFunction {
    /// Input length in bits (per terminal).
    fn input_len(&self) -> usize;
    /// Number of terminals.
    fn num_terminals(&self) -> usize;
    /// Evaluates the function on one input per terminal.
    fn eval(&self, inputs: &[BitString]) -> bool;
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

/// The equality function `EQ_n(x, y) = 1` iff `x = y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Equality {
    /// Input length in bits.
    pub n: usize,
}

impl TwoPartyFunction for Equality {
    fn input_len(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        x == y
    }
    fn name(&self) -> String {
        format!("EQ_{}", self.n)
    }
}

/// Which order relation a greater-than style comparison checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparison {
    /// `x > y` (the paper's `GT`).
    Greater,
    /// `x < y` (`GT_<`).
    Less,
    /// `x ≥ y` (`GT_≥`).
    GreaterEqual,
    /// `x ≤ y` (`GT_≤`).
    LessEqual,
}

/// The greater-than family: `GT(x, y) = 1` iff the chosen order relation holds
/// between `x` and `y` read as `n`-bit integers (Section 5.1, Corollary 28).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreaterThan {
    /// Input length in bits.
    pub n: usize,
    /// Which comparison to check.
    pub comparison: Comparison,
}

impl GreaterThan {
    /// The paper's `GT` (strictly greater).
    pub fn strict(n: usize) -> Self {
        GreaterThan {
            n,
            comparison: Comparison::Greater,
        }
    }
}

impl TwoPartyFunction for GreaterThan {
    fn input_len(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        let ord = x.cmp_as_integer(y);
        match self.comparison {
            Comparison::Greater => ord == Ordering::Greater,
            Comparison::Less => ord == Ordering::Less,
            Comparison::GreaterEqual => ord != Ordering::Less,
            Comparison::LessEqual => ord != Ordering::Greater,
        }
    }
    fn name(&self) -> String {
        let sym = match self.comparison {
            Comparison::Greater => ">",
            Comparison::Less => "<",
            Comparison::GreaterEqual => ">=",
            Comparison::LessEqual => "<=",
        };
        format!("GT{}_{}", sym, self.n)
    }
}

/// The Hamming-distance threshold `HAM_n^{≤d}(x, y) = 1` iff `d_H(x, y) ≤ d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HammingAtMost {
    /// Input length in bits.
    pub n: usize,
    /// Distance threshold.
    pub d: usize,
}

impl TwoPartyFunction for HammingAtMost {
    fn input_len(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        x.hamming_distance(y) <= self.d
    }
    fn name(&self) -> String {
        format!("HAM<={}_{}", self.d, self.n)
    }
}

/// Disjointness: `DISJ(x, y) = 1` iff no index has `x_i = y_i = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disjointness {
    /// Input length in bits.
    pub n: usize,
}

impl TwoPartyFunction for Disjointness {
    fn input_len(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        x.and(y).weight() == 0
    }
    fn name(&self) -> String {
        format!("DISJ_{}", self.n)
    }
}

/// Inner product modulo 2: `IP(x, y) = ⊕_i x_i ∧ y_i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InnerProduct {
    /// Input length in bits.
    pub n: usize,
}

impl TwoPartyFunction for InnerProduct {
    fn input_len(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        x.inner_product_mod2(y)
    }
    fn name(&self) -> String {
        format!("IP_{}", self.n)
    }
}

/// A linear threshold XOR function (Definition 14 of the paper, specialised to
/// 0/1 weights): `f(x, y) = 1` iff `Σ_i w_i (x ⊕ y)_i ≤ θ`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearThresholdXor {
    /// Per-coordinate non-negative weights.
    pub weights: Vec<f64>,
    /// Threshold.
    pub theta: f64,
}

impl LinearThresholdXor {
    /// The Hamming threshold as the canonical LTF-XOR instance: all weights 1,
    /// threshold `d`.
    pub fn hamming(n: usize, d: usize) -> Self {
        LinearThresholdXor {
            weights: vec![1.0; n],
            theta: d as f64,
        }
    }

    /// The margin `m` of the threshold function (distance from the threshold to
    /// the nearest achievable weighted sum on either side), assuming integer
    /// weighted sums.
    pub fn margin(&self) -> f64 {
        // With the convention theta = (W0 + W1)/2 the margin is (W1 - W0)/2; for
        // integer sums and integer theta this is at least 1/2.
        0.5
    }
}

impl TwoPartyFunction for LinearThresholdXor {
    fn input_len(&self) -> usize {
        self.weights.len()
    }
    fn eval(&self, x: &BitString, y: &BitString) -> bool {
        let z = x.xor(y);
        let sum: f64 = z
            .as_bits()
            .iter()
            .zip(self.weights.iter())
            .map(|(&b, &w)| if b { w } else { 0.0 })
            .sum();
        sum <= self.theta
    }
    fn name(&self) -> String {
        format!("LTF-XOR_{}(theta={})", self.weights.len(), self.theta)
    }
}

/// The multi-party equality `EQ^t_n(x_1, ..., x_t) = 1` iff all inputs coincide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EqualityMulti {
    /// Input length in bits.
    pub n: usize,
    /// Number of terminals.
    pub t: usize,
}

impl MultiPartyFunction for EqualityMulti {
    fn input_len(&self) -> usize {
        self.n
    }
    fn num_terminals(&self) -> usize {
        self.t
    }
    fn eval(&self, inputs: &[BitString]) -> bool {
        inputs.windows(2).all(|w| w[0] == w[1])
    }
    fn name(&self) -> String {
        format!("EQ^{}_{}", self.t, self.n)
    }
}

/// The ranking verification problem `RV^{i,j}_{t,n}` (Definition 9): input
/// `x_i` of terminal `i` is the `j`-th largest among all `t` inputs, i.e.
/// `Σ_{k≠i} [x_i ≥ x_k] = t − j + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankingVerification {
    /// Input length in bits.
    pub n: usize,
    /// Number of terminals.
    pub t: usize,
    /// The terminal whose rank is being verified (0-based).
    pub i: usize,
    /// The claimed rank (1 = largest), 1-based as in the paper.
    pub j: usize,
}

impl MultiPartyFunction for RankingVerification {
    fn input_len(&self) -> usize {
        self.n
    }
    fn num_terminals(&self) -> usize {
        self.t
    }
    fn eval(&self, inputs: &[BitString]) -> bool {
        assert_eq!(inputs.len(), self.t, "one input per terminal required");
        let count = inputs
            .iter()
            .enumerate()
            .filter(|&(k, xk)| k != self.i && inputs[self.i].cmp_as_integer(xk) != Ordering::Less)
            .count();
        count == self.t - self.j
    }
    fn name(&self) -> String {
        format!("RV^{{{},{}}}_{{{},{}}}", self.i, self.j, self.t, self.n)
    }
}

/// The multi-party Hamming threshold `HAM^{≤d}_{t,n}` (Section 6.1): all
/// pairwise Hamming distances are at most `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HammingMulti {
    /// Input length in bits.
    pub n: usize,
    /// Number of terminals.
    pub t: usize,
    /// Distance threshold.
    pub d: usize,
}

impl MultiPartyFunction for HammingMulti {
    fn input_len(&self) -> usize {
        self.n
    }
    fn num_terminals(&self) -> usize {
        self.t
    }
    fn eval(&self, inputs: &[BitString]) -> bool {
        for i in 0..inputs.len() {
            for j in (i + 1)..inputs.len() {
                if inputs[i].hamming_distance(&inputs[j]) > self.d {
                    return false;
                }
            }
        }
        true
    }
    fn name(&self) -> String {
        format!("HAM<={}^{}_{}", self.d, self.t, self.n)
    }
}

/// The generic lift `∀t f(x_1, ..., x_t) = 1` iff `f(x_i, x_j) = 1` for every
/// ordered pair of distinct terminals (Section 6.2).
#[derive(Clone, Debug)]
pub struct ForAllPairs<F> {
    /// The underlying two-party function.
    pub f: F,
    /// Number of terminals.
    pub t: usize,
}

impl<F: TwoPartyFunction> MultiPartyFunction for ForAllPairs<F> {
    fn input_len(&self) -> usize {
        self.f.input_len()
    }
    fn num_terminals(&self) -> usize {
        self.t
    }
    fn eval(&self, inputs: &[BitString]) -> bool {
        for i in 0..inputs.len() {
            for j in 0..inputs.len() {
                if i != j && !self.f.eval(&inputs[i], &inputs[j]) {
                    return false;
                }
            }
        }
        true
    }
    fn name(&self) -> String {
        format!("forall^{} {}", self.t, self.f.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::from_str01(s)
    }

    #[test]
    fn equality_eval() {
        let f = Equality { n: 4 };
        assert!(f.eval(&bs("1010"), &bs("1010")));
        assert!(!f.eval(&bs("1010"), &bs("1011")));
    }

    #[test]
    fn greater_than_variants() {
        let x = bs("0101"); // 5
        let y = bs("0011"); // 3
        assert!(GreaterThan::strict(4).eval(&x, &y));
        assert!(!GreaterThan::strict(4).eval(&y, &x));
        assert!(!GreaterThan::strict(4).eval(&x, &x));
        assert!(GreaterThan {
            n: 4,
            comparison: Comparison::GreaterEqual
        }
        .eval(&x, &x));
        assert!(GreaterThan {
            n: 4,
            comparison: Comparison::Less
        }
        .eval(&y, &x));
        assert!(GreaterThan {
            n: 4,
            comparison: Comparison::LessEqual
        }
        .eval(&y, &y));
    }

    #[test]
    fn gt_characterisation_via_prefix_and_index() {
        // GT(x,y)=1 iff exists i with x[i]=y[i] (prefixes equal), x_i=1, y_i=0.
        let f = GreaterThan::strict(5);
        for xv in 0..32u64 {
            for yv in 0..32u64 {
                let x = BitString::from_u64(xv, 5);
                let y = BitString::from_u64(yv, 5);
                let characterised =
                    (0..5).any(|i| x.prefix(i) == y.prefix(i) && x.bit(i) && !y.bit(i));
                assert_eq!(f.eval(&x, &y), characterised, "x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn hamming_threshold() {
        let f = HammingAtMost { n: 6, d: 2 };
        assert!(f.eval(&bs("110000"), &bs("110000")));
        assert!(f.eval(&bs("110000"), &bs("101000")));
        assert!(!f.eval(&bs("111100"), &bs("000011")));
    }

    #[test]
    fn disjointness_and_inner_product() {
        assert!(Disjointness { n: 4 }.eval(&bs("1010"), &bs("0101")));
        assert!(!Disjointness { n: 4 }.eval(&bs("1010"), &bs("0010")));
        assert!(InnerProduct { n: 4 }.eval(&bs("1010"), &bs("0010")));
        assert!(!InnerProduct { n: 4 }.eval(&bs("1010"), &bs("0101")));
    }

    #[test]
    fn ltf_xor_hamming_instance_matches_hamming_threshold() {
        let ltf = LinearThresholdXor::hamming(5, 2);
        let ham = HammingAtMost { n: 5, d: 2 };
        for xv in 0..32u64 {
            for yv in 0..8u64 {
                let x = BitString::from_u64(xv, 5);
                let y = BitString::from_u64(yv, 5);
                assert_eq!(ltf.eval(&x, &y), ham.eval(&x, &y));
            }
        }
        assert!(ltf.margin() > 0.0);
    }

    #[test]
    fn equality_multi() {
        let f = EqualityMulti { n: 3, t: 3 };
        assert!(f.eval(&[bs("101"), bs("101"), bs("101")]));
        assert!(!f.eval(&[bs("101"), bs("101"), bs("111")]));
    }

    #[test]
    fn ranking_verification_definition() {
        // inputs: 5, 3, 9 -> ranks: terminal 2 (value 9) is 1st, terminal 0 is 2nd, terminal 1 is 3rd
        let inputs = vec![
            BitString::from_u64(5, 4),
            BitString::from_u64(3, 4),
            BitString::from_u64(9, 4),
        ];
        assert!(RankingVerification {
            n: 4,
            t: 3,
            i: 2,
            j: 1
        }
        .eval(&inputs));
        assert!(RankingVerification {
            n: 4,
            t: 3,
            i: 0,
            j: 2
        }
        .eval(&inputs));
        assert!(RankingVerification {
            n: 4,
            t: 3,
            i: 1,
            j: 3
        }
        .eval(&inputs));
        assert!(!RankingVerification {
            n: 4,
            t: 3,
            i: 0,
            j: 1
        }
        .eval(&inputs));
        assert!(!RankingVerification {
            n: 4,
            t: 3,
            i: 2,
            j: 3
        }
        .eval(&inputs));
    }

    #[test]
    fn hamming_multi_checks_all_pairs() {
        let f = HammingMulti { n: 4, t: 3, d: 1 };
        assert!(f.eval(&[bs("1100"), bs("1101"), bs("1100")]));
        assert!(!f.eval(&[bs("1100"), bs("1101"), bs("0011")]));
    }

    #[test]
    fn forall_pairs_lift() {
        let f = ForAllPairs {
            f: HammingAtMost { n: 4, d: 1 },
            t: 3,
        };
        assert!(f.eval(&[bs("1100"), bs("1101"), bs("1100")]));
        assert!(!f.eval(&[bs("1100"), bs("0100"), bs("0110")]));
        assert_eq!(f.num_terminals(), 3);
    }

    #[test]
    fn names_are_informative() {
        assert!(Equality { n: 8 }.name().contains("EQ"));
        assert!(GreaterThan::strict(8).name().contains("GT"));
        assert!(RankingVerification {
            n: 4,
            t: 3,
            i: 0,
            j: 1
        }
        .name()
        .contains("RV"));
    }
}
