//! # commproto — communication-complexity substrate for dQMA protocols
//!
//! The dQMA protocols of *Hasegawa, Kundu, Nishimura — "On the Power of
//! Quantum Distributed Proofs"* (PODC 2024) are built on top of two-party
//! communication-complexity machinery. This crate provides that substrate:
//!
//! * the decision problems of the paper (EQ, GT, HAM≤d, DISJ, IP, LTF-XOR,
//!   ranking verification, the `∀t f` lift) — [`problems`];
//! * 1-fooling sets, which parameterise both the classical and the quantum
//!   lower bounds — [`fooling`];
//! * quantum fingerprints from a seeded linear code — [`fingerprint`];
//! * one-way quantum communication protocols (the EQ protocol π and Hamming
//!   sketches) — [`one_way`];
//! * QMA communication protocols, their one-way purified form, and cost
//!   accounting — [`qma`];
//! * the Linear Subspace Distance problem and its `O(log m)` QMA one-way
//!   protocol — [`lsd`];
//! * discrepancy-style lower-bound certificates — [`sdisc`].
//!
//! # Example
//!
//! ```
//! use commproto::{bitstring::BitString, one_way::{EqOneWay, OneWayProtocol}};
//!
//! let proto = EqOneWay::for_input_len(6, 42);
//! let x = BitString::from_str01("101100");
//! // Perfect completeness on equal inputs, bounded acceptance otherwise.
//! assert!((proto.honest_accept_probability(&x, &x) - 1.0).abs() < 1e-10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitstring;
pub mod fingerprint;
pub mod fooling;
pub mod lsd;
pub mod one_way;
pub mod problems;
pub mod qma;
pub mod sdisc;

pub use bitstring::BitString;
pub use fingerprint::FingerprintScheme;
pub use fooling::FoolingSet;
pub use one_way::{EqOneWay, OneWayProtocol};
pub use problems::{MultiPartyFunction, TwoPartyFunction};
pub use qma::{QmaCosts, QmaOneWayProtocol};
