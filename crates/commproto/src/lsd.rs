//! The Linear Subspace Distance (LSD) problem of Raz and Shpilka
//! (Definition 16 of the paper) and its QMA one-way protocol (Lemma 45).
//!
//! LSD is complete for QMA communication protocols: any function with an
//! efficient QMA protocol reduces to deciding whether two subspaces
//! `V₁, V₂ ⊆ R^m` are close (`Δ(V₁, V₂) ≤ 0.1·√2`) or far
//! (`Δ(V₁, V₂) ≥ 0.9·√2`). Crucially for Section 7 of the paper, LSD has a
//! QMA **one-way** protocol of cost `O(log m)`: Merlin sends a unit vector
//! claimed to lie in `V₁` and be close to `V₂`; Alice coherently checks
//! membership in `V₁`, forwards the state, and Bob projects onto `V₂`.

use crate::qma::QmaOneWayProtocol;
use qsim::linalg::{eigh, max_eigenvalue};
use qsim::{CMatrix, CVector, Complex, PureState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical closeness threshold `0.1 · √2` of the LSD promise.
pub const LSD_CLOSE: f64 = 0.141_421_356_237_309_5;
/// The canonical farness threshold `0.9 · √2` of the LSD promise.
pub const LSD_FAR: f64 = 1.272_792_206_135_785_5;

/// A subspace of `R^m` (embedded in `C^m`), stored as an orthonormal basis.
#[derive(Clone, Debug)]
pub struct Subspace {
    dim_ambient: usize,
    basis: Vec<CVector>,
}

impl Subspace {
    /// Builds a subspace from spanning vectors (orthonormalised internally;
    /// numerically dependent vectors are dropped).
    ///
    /// # Panics
    ///
    /// Panics if no vector survives orthonormalisation or the vectors have
    /// inconsistent dimensions.
    pub fn span(vectors: &[CVector]) -> Self {
        assert!(
            !vectors.is_empty(),
            "a subspace needs at least one spanning vector"
        );
        let m = vectors[0].dim();
        let mut basis: Vec<CVector> = Vec::new();
        for v in vectors {
            assert_eq!(v.dim(), m, "inconsistent ambient dimensions");
            let mut w = v.clone();
            for b in &basis {
                let proj = b.inner(&w);
                w.add_scaled(b, -proj);
            }
            if w.norm() > 1e-9 {
                basis.push(w.normalized());
            }
        }
        assert!(!basis.is_empty(), "spanning vectors are numerically zero");
        Subspace {
            dim_ambient: m,
            basis,
        }
    }

    /// The 1-dimensional subspace spanned by a single vector.
    pub fn line(v: &CVector) -> Self {
        Subspace::span(std::slice::from_ref(v))
    }

    /// Ambient dimension `m`.
    pub fn ambient_dim(&self) -> usize {
        self.dim_ambient
    }

    /// Dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Orthonormal basis vectors.
    pub fn basis(&self) -> &[CVector] {
        &self.basis
    }

    /// The orthogonal projector onto the subspace.
    pub fn projector(&self) -> CMatrix {
        let mut p = CMatrix::zeros(self.dim_ambient, self.dim_ambient);
        for b in &self.basis {
            p = &p + &CMatrix::outer(b, b);
        }
        p
    }
}

/// An LSD instance: Alice holds `V₁`, Bob holds `V₂`.
#[derive(Clone, Debug)]
pub struct LsdInstance {
    /// Alice's subspace.
    pub v1: Subspace,
    /// Bob's subspace.
    pub v2: Subspace,
}

impl LsdInstance {
    /// Creates an instance from the two subspaces.
    ///
    /// # Panics
    ///
    /// Panics if the ambient dimensions differ.
    pub fn new(v1: Subspace, v2: Subspace) -> Self {
        assert_eq!(
            v1.ambient_dim(),
            v2.ambient_dim(),
            "subspaces must share the ambient space"
        );
        LsdInstance { v1, v2 }
    }

    /// Two lines in the plane spanned by the first two coordinates of `R^m`,
    /// at angle `theta` — the minimal family that realises any value of `Δ`.
    pub fn from_angle(m: usize, theta: f64) -> Self {
        assert!(m >= 2, "ambient dimension must be at least 2");
        let mut a = CVector::zeros(m);
        a.set(0, Complex::ONE);
        let mut b = CVector::zeros(m);
        b.set(0, Complex::real(theta.cos()));
        b.set(1, Complex::real(theta.sin()));
        LsdInstance::new(Subspace::line(&a), Subspace::line(&b))
    }

    /// A random yes (close) or no (far) instance of two `k`-dimensional
    /// subspaces in `R^m`.
    pub fn random(m: usize, k: usize, yes: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gauss = |rng: &mut StdRng| {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let random_vec = |rng: &mut StdRng, gauss: &mut dyn FnMut(&mut StdRng) -> f64| {
            CVector::from_fn(m, |_| Complex::real(gauss(rng)))
        };
        let mut b1 = Vec::new();
        for _ in 0..k {
            b1.push(random_vec(&mut rng, &mut gauss));
        }
        let v1 = Subspace::span(&b1);
        let v2 = if yes {
            // Share the first basis vector (distance 0), pad with fresh ones.
            let mut b2 = vec![v1.basis()[0].clone()];
            for _ in 1..k {
                b2.push(random_vec(&mut rng, &mut gauss));
            }
            Subspace::span(&b2)
        } else {
            // Take vectors orthogonal to V1: project out V1 from random vectors.
            let p1 = v1.projector();
            let mut b2 = Vec::new();
            while b2.len() < k {
                let v = random_vec(&mut rng, &mut gauss);
                let proj = p1.apply(&v);
                let mut w = v.clone();
                w.add_scaled(&proj, -Complex::ONE);
                if w.norm() > 1e-6 {
                    b2.push(w);
                }
            }
            Subspace::span(&b2)
        };
        LsdInstance::new(v1, v2)
    }

    /// Ambient dimension `m`.
    pub fn ambient_dim(&self) -> usize {
        self.v1.ambient_dim()
    }

    /// The largest squared cosine between the subspaces, i.e. the largest
    /// eigenvalue of `Π₁ Π₂ Π₁` — equivalently the optimal acceptance
    /// probability of the QMA one-way protocol.
    pub fn max_cos_sqr(&self) -> f64 {
        let p1 = self.v1.projector();
        let p2 = self.v2.projector();
        max_eigenvalue(&p1.matmul(&p2).matmul(&p1)).clamp(0.0, 1.0)
    }

    /// The subspace distance `Δ(V₁, V₂) = min ||v₁ − v₂||` over unit vectors,
    /// which equals `√(2 − 2·cos θ_min)`.
    pub fn delta(&self) -> f64 {
        (2.0 - 2.0 * self.max_cos_sqr().sqrt()).max(0.0).sqrt()
    }

    /// Whether the instance satisfies the yes-promise `Δ ≤ 0.1·√2`.
    pub fn is_yes(&self) -> bool {
        self.delta() <= LSD_CLOSE + 1e-9
    }

    /// Whether the instance satisfies the no-promise `Δ ≥ 0.9·√2`.
    pub fn is_no(&self) -> bool {
        self.delta() >= LSD_FAR - 1e-9
    }
}

/// The QMA one-way protocol for LSD (Lemma 45): Merlin sends a unit vector,
/// Alice coherently flags membership in `V₁` and forwards, Bob accepts iff the
/// flag is set and the vector lies in `V₂`.
///
/// Implements [`QmaOneWayProtocol`] with `Input = Subspace` (Alice's input is
/// `V₁`, Bob's is `V₂`).
#[derive(Clone, Debug)]
pub struct LsdQmaOneWay {
    ambient_dim: usize,
}

impl LsdQmaOneWay {
    /// A protocol instance for subspaces of `R^m`.
    pub fn new(ambient_dim: usize) -> Self {
        assert!(ambient_dim >= 2, "ambient dimension must be at least 2");
        LsdQmaOneWay { ambient_dim }
    }
}

impl QmaOneWayProtocol for LsdQmaOneWay {
    type Input = Subspace;

    fn proof_dim(&self) -> usize {
        self.ambient_dim
    }

    fn ancilla_dim(&self) -> usize {
        2
    }

    fn alice_unitary(&self, v1: &Subspace) -> CMatrix {
        // On proof ⊗ flag: apply X to the flag on the V1 component.
        let p = v1.projector();
        let q = &CMatrix::identity(self.ambient_dim) - &p;
        let x = qsim::gates::pauli_x();
        let id2 = CMatrix::identity(2);
        &p.kron(&x) + &q.kron(&id2)
    }

    fn bob_effect(&self, v2: &Subspace) -> CMatrix {
        // Accept iff the flag qubit is |1> and the vector lies in V2.
        let p = v2.projector();
        let one = CMatrix::projector(&CVector::basis(2, 1));
        p.kron(&one)
    }

    fn honest_proof(&self, v1: &Subspace, v2: &Subspace) -> PureState {
        // The top eigenvector of P1 P2 P1 lies in V1 and maximises acceptance.
        let p1 = v1.projector();
        let p2 = v2.projector();
        let decomposition = eigh(&p1.matmul(&p2).matmul(&p1));
        let v = decomposition.max_eigenvector().normalized();
        PureState::from_amplitudes(&[self.ambient_dim], v)
    }

    fn completeness(&self) -> f64 {
        // For yes instances cos θ ≥ 1 − Δ²/2 ≥ 0.99, acceptance ≥ 0.99² ≈ 0.98.
        0.98
    }

    fn soundness_error(&self) -> f64 {
        // For no instances cos θ ≤ 1 − Δ²/2 ≤ 0.19, acceptance ≤ 0.19² ≈ 0.0361.
        0.0361
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspace_projector_is_projector() {
        let v = CVector::from_reals(&[1.0, 1.0, 0.0, 0.0]);
        let w = CVector::from_reals(&[0.0, 1.0, 1.0, 0.0]);
        let s = Subspace::span(&[v, w]);
        assert_eq!(s.dim(), 2);
        let p = s.projector();
        assert!(p.is_hermitian(1e-12));
        assert!(p.matmul(&p).approx_eq(&p, 1e-10));
        assert!((p.trace().re - 2.0).abs() < 1e-10);
    }

    #[test]
    fn dependent_vectors_are_dropped() {
        let v = CVector::from_reals(&[1.0, 2.0, 0.0]);
        let w = CVector::from_reals(&[2.0, 4.0, 0.0]);
        let s = Subspace::span(&[v, w]);
        assert_eq!(s.dim(), 1);
    }

    #[test]
    fn delta_matches_angle() {
        for &theta in &[0.0, 0.3, std::f64::consts::FRAC_PI_2] {
            let inst = LsdInstance::from_angle(4, theta);
            let expected = (2.0 - 2.0 * theta.cos().abs()).max(0.0).sqrt();
            assert!((inst.delta() - expected).abs() < 1e-8, "theta={theta}");
        }
    }

    #[test]
    fn identical_lines_are_yes_and_orthogonal_lines_are_no() {
        let yes = LsdInstance::from_angle(4, 0.05);
        assert!(yes.is_yes());
        let no = LsdInstance::from_angle(4, std::f64::consts::FRAC_PI_2);
        assert!(no.is_no());
        assert!((no.delta() - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn random_instances_respect_their_promise() {
        for seed in 0..4 {
            let yes = LsdInstance::random(6, 2, true, seed);
            assert!(yes.delta() < 1e-6, "shared vector gives distance 0");
            let no = LsdInstance::random(6, 2, false, seed);
            assert!(
                no.is_no(),
                "orthogonal construction gives Δ = √2, got {}",
                no.delta()
            );
        }
    }

    #[test]
    fn lsd_protocol_completeness_on_yes_instances() {
        let proto = LsdQmaOneWay::new(6);
        let inst = LsdInstance::random(6, 2, true, 11);
        let proof = proto.honest_proof(&inst.v1, &inst.v2);
        let p = proto.accept_probability(&inst.v1, &inst.v2, &proof);
        assert!(p >= proto.completeness() - 1e-9, "acceptance {p}");
    }

    #[test]
    fn lsd_protocol_soundness_on_no_instances() {
        let proto = LsdQmaOneWay::new(6);
        let inst = LsdInstance::random(6, 2, false, 7);
        // Even the *optimal* proof cannot beat the soundness bound.
        let p = proto.optimal_accept_probability(&inst.v1, &inst.v2);
        assert!(
            p <= proto.soundness_error() + 1e-9,
            "optimal acceptance {p}"
        );
    }

    #[test]
    fn optimal_acceptance_equals_max_cos_sqr() {
        let proto = LsdQmaOneWay::new(5);
        for seed in 0..3 {
            let inst = LsdInstance::random(5, 2, seed % 2 == 0, seed + 20);
            let via_protocol = proto.optimal_accept_probability(&inst.v1, &inst.v2);
            let via_geometry = inst.max_cos_sqr();
            assert!(
                (via_protocol - via_geometry).abs() < 1e-8,
                "protocol {via_protocol} vs geometry {via_geometry}"
            );
        }
    }

    #[test]
    fn alice_unitary_is_unitary_and_costs_are_logarithmic() {
        let proto = LsdQmaOneWay::new(8);
        let inst = LsdInstance::random(8, 3, true, 2);
        assert!(proto.alice_unitary(&inst.v1).is_unitary(1e-9));
        assert_eq!(proto.proof_qubits(), 3);
        assert_eq!(proto.comm_qubits(), 4);
    }
}
