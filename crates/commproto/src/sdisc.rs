//! Discrepancy-style lower-bound certificates (Section 8.2 of the paper).
//!
//! Klauck's lower bounds on QMA communication complexity are phrased in terms
//! of the one-sided smooth discrepancy `sdisc₁(f)`:
//! `QMAcc(f) = Ω(√(log sdisc₁(f)))`, giving `Ω(n^{1/3})` for DISJ,
//! `Ω(n^{1/2})` for IP, and `Ω(n^{1/3})` for the AND pattern matrix. Via the
//! dQMA → QMA* reduction (Theorem 63) the same bounds apply to the total
//! proof-plus-communication size of any dQMA protocol on a path.
//!
//! This module provides (a) the paper's asymptotic bound values as formulas
//! used by the benchmark tables, and (b) a computable spectral upper bound on
//! the (plain, uniform-distribution) discrepancy of small communication
//! matrices, which certifies that IP-like functions indeed have exponentially
//! small discrepancy while EQ does not.

use crate::bitstring::BitString;
use crate::problems::TwoPartyFunction;
use qsim::linalg::{eigh, CMatrix};
use qsim::Complex;

/// The problems for which the paper states QMAcc / dQMA lower bounds in Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HardProblem {
    /// Disjointness.
    Disjointness,
    /// Inner product modulo 2.
    InnerProduct,
    /// The pattern matrix of AND.
    PatternAnd,
}

/// The paper's QMA communication-complexity lower bound for the problem, as a
/// function of the input length `n` (Corollaries 58–60; constants set to 1).
pub fn qmacc_lower_bound(problem: HardProblem, n: usize) -> f64 {
    let n = n as f64;
    match problem {
        HardProblem::Disjointness => n.powf(1.0 / 3.0),
        HardProblem::InnerProduct => n.sqrt(),
        HardProblem::PatternAnd => n.powf(1.0 / 3.0),
    }
}

/// The induced lower bound on the total proof + communication size of any dQMA
/// protocol on a path (Theorem 63 and Corollaries 64–66): the same order as
/// the QMAcc bound, since a dQMA protocol yields a QMA* protocol of the same
/// total cost.
pub fn dqma_total_lower_bound(problem: HardProblem, n: usize) -> f64 {
    qmacc_lower_bound(problem, n)
}

/// The Theorem 10 / Theorem 63 form of the bound given a value of
/// `log sdisc₁(f)`: `Ω(√(log sdisc₁(f)))` (constant set to 1).
pub fn bound_from_log_sdisc(log_sdisc: f64) -> f64 {
    log_sdisc.max(0.0).sqrt()
}

/// The ±1 communication matrix of a two-party function on `n`-bit inputs
/// (entry `(x, y)` is `+1` when `f(x,y) = 1` and `−1` otherwise).
///
/// # Panics
///
/// Panics if `n > 10` (the matrix has `4^n` entries).
pub fn sign_matrix<F: TwoPartyFunction>(f: &F) -> CMatrix {
    let n = f.input_len();
    assert!(n <= 10, "sign matrix limited to n <= 10");
    let size = 1usize << n;
    CMatrix::from_fn(size, size, |i, j| {
        let x = BitString::from_u64(i as u64, n);
        let y = BitString::from_u64(j as u64, n);
        if f.eval(&x, &y) {
            Complex::ONE
        } else {
            -Complex::ONE
        }
    })
}

/// A spectral upper bound on the uniform-distribution discrepancy of a ±1
/// matrix: `disc(M) ≤ ||M||_op / N` for an `N × N` matrix. Exponentially small
/// values certify hardness (IP); values close to 1 certify that the
/// discrepancy method yields nothing (EQ) — matching the paper's remark that
/// Theorem 9 outperforms Theorem 10 for EQ.
pub fn spectral_discrepancy_bound(sign: &CMatrix) -> f64 {
    assert!(sign.is_square(), "discrepancy of a non-square matrix");
    let n = sign.rows() as f64;
    // Operator norm = sqrt of the largest eigenvalue of M† M.
    let gram = sign.adjoint().matmul(sign);
    let top = eigh(&gram).max_eigenvalue().max(0.0);
    top.sqrt() / n
}

/// Convenience: `log₂(1 / disc_bound)` for a small instance of a function,
/// a computable stand-in for `log sdisc₁(f)` on the functions where the
/// discrepancy method applies.
pub fn log_inverse_discrepancy<F: TwoPartyFunction>(f: &F) -> f64 {
    let bound = spectral_discrepancy_bound(&sign_matrix(f));
    -(bound.max(1e-300)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Equality, InnerProduct};

    #[test]
    fn bound_formulas_scale_as_stated() {
        assert!((qmacc_lower_bound(HardProblem::InnerProduct, 64) - 8.0).abs() < 1e-9);
        assert!((qmacc_lower_bound(HardProblem::Disjointness, 64) - 4.0).abs() < 1e-9);
        assert!(
            qmacc_lower_bound(HardProblem::PatternAnd, 1000)
                > qmacc_lower_bound(HardProblem::PatternAnd, 10)
        );
        assert_eq!(
            dqma_total_lower_bound(HardProblem::InnerProduct, 100),
            qmacc_lower_bound(HardProblem::InnerProduct, 100)
        );
    }

    #[test]
    fn bound_from_log_sdisc_is_square_root() {
        assert!((bound_from_log_sdisc(16.0) - 4.0).abs() < 1e-12);
        assert_eq!(bound_from_log_sdisc(-1.0), 0.0);
    }

    #[test]
    fn inner_product_has_exponentially_small_discrepancy() {
        // The ±1 matrix of IP is (up to sign flips) a Hadamard matrix with
        // operator norm 2^{n/2}, so the bound is 2^{-n/2}.
        for n in [2usize, 4, 6] {
            let disc = spectral_discrepancy_bound(&sign_matrix(&InnerProduct { n }));
            let expected = 2f64.powf(-(n as f64) / 2.0);
            assert!(
                (disc - expected).abs() < 0.2 * expected + 1e-6,
                "n={n}: disc {disc} vs expected {expected}"
            );
        }
    }

    #[test]
    fn equality_has_large_discrepancy() {
        // EQ's matrix is 2I - J whose operator norm is ~N, so the bound is ~1:
        // the discrepancy method certifies nothing for EQ, as the paper notes.
        let disc = spectral_discrepancy_bound(&sign_matrix(&Equality { n: 5 }));
        assert!(disc > 0.8, "disc = {disc}");
    }

    #[test]
    fn log_inverse_discrepancy_grows_with_n_for_ip() {
        let small = log_inverse_discrepancy(&InnerProduct { n: 3 });
        let large = log_inverse_discrepancy(&InnerProduct { n: 6 });
        assert!(large > small + 1.0, "small={small} large={large}");
        // And the induced dQMA bound grows accordingly.
        assert!(bound_from_log_sdisc(large) > bound_from_log_sdisc(small));
    }
}
