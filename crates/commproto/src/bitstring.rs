//! Fixed-length bit strings used as protocol inputs.
//!
//! All the problems studied in the paper take `n`-bit strings as inputs
//! (interpreted as raw strings for EQ and the Hamming distance, and as
//! integers for GT and the ranking verification). [`BitString`] is a small
//! value type with the conversions and metrics those problems need.

use rand::Rng;
use std::fmt;

/// An `n`-bit string, most-significant bit first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// Creates a bit string from a slice of bits (most significant first).
    pub fn new(bits: &[bool]) -> Self {
        BitString {
            bits: bits.to_vec(),
        }
    }

    /// The all-zeros string of length `n`.
    pub fn zeros(n: usize) -> Self {
        BitString {
            bits: vec![false; n],
        }
    }

    /// Creates an `n`-bit string from the low `n` bits of `value`
    /// (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `n` bits.
    pub fn from_u64(value: u64, n: usize) -> Self {
        assert!(
            n >= 64 || value < (1u64 << n),
            "value {value} does not fit in {n} bits"
        );
        let bits = (0..n)
            .map(|i| {
                let shift = n - 1 - i;
                shift < 64 && (value >> shift) & 1 == 1
            })
            .collect();
        BitString { bits }
    }

    /// Creates a bit string from a `"0101"`-style ASCII string.
    ///
    /// # Panics
    ///
    /// Panics on characters other than '0' and '1'.
    pub fn from_str01(s: &str) -> Self {
        BitString {
            bits: s
                .chars()
                .map(|c| match c {
                    '0' => false,
                    '1' => true,
                    other => panic!("invalid bit character {other:?}"),
                })
                .collect(),
        }
    }

    /// Samples a uniformly random `n`-bit string.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        BitString {
            bits: (0..n).map(|_| rng.random::<bool>()).collect(),
        }
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` for the empty string.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The `i`-th bit (0 = most significant).
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The bits as a slice.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Interprets the string as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len() <= 64, "to_u64 supports at most 64 bits");
        self.bits
            .iter()
            .fold(0u64, |acc, &b| (acc << 1) | u64::from(b))
    }

    /// The prefix `x[0..i]` (the paper's `x[i] = x_0 ... x_{i-1}`).
    pub fn prefix(&self, i: usize) -> BitString {
        BitString {
            bits: self.bits[..i].to_vec(),
        }
    }

    /// Bitwise XOR with another string of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitString) -> BitString {
        assert_eq!(self.len(), other.len(), "XOR of unequal lengths");
        BitString {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(&a, &b)| a ^ b)
                .collect(),
        }
    }

    /// Bitwise AND with another string of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitString) -> BitString {
        assert_eq!(self.len(), other.len(), "AND of unequal lengths");
        BitString {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(&a, &b)| a & b)
                .collect(),
        }
    }

    /// Number of ones (Hamming weight).
    pub fn weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Hamming distance to another string of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitString) -> usize {
        self.xor(other).weight()
    }

    /// Inner product modulo 2.
    pub fn inner_product_mod2(&self, other: &BitString) -> bool {
        self.and(other).weight() % 2 == 1
    }

    /// Compares the strings as unsigned integers (works for any length).
    pub fn cmp_as_integer(&self, other: &BitString) -> std::cmp::Ordering {
        assert_eq!(
            self.len(),
            other.len(),
            "integer comparison of unequal lengths"
        );
        self.bits.cmp(&other.bits)
    }

    /// Returns all `2^n` strings of length `n` (for small `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` to avoid accidental exponential blow-ups.
    pub fn all(n: usize) -> Vec<BitString> {
        assert!(n <= 20, "BitString::all is limited to n <= 20");
        (0..(1u64 << n))
            .map(|v| BitString::from_u64(v, n))
            .collect()
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 5, 13, 255] {
            let b = BitString::from_u64(v, 8);
            assert_eq!(b.to_u64(), v);
            assert_eq!(b.len(), 8);
        }
    }

    #[test]
    fn string_parsing_and_display() {
        let b = BitString::from_str01("1011");
        assert_eq!(b.to_u64(), 11);
        assert_eq!(b.to_string(), "1011");
    }

    #[test]
    fn integer_ordering_matches_u64_ordering() {
        let a = BitString::from_u64(9, 6);
        let b = BitString::from_u64(17, 6);
        assert_eq!(a.cmp_as_integer(&b), std::cmp::Ordering::Less);
        assert_eq!(b.cmp_as_integer(&a), std::cmp::Ordering::Greater);
        assert_eq!(a.cmp_as_integer(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hamming_distance_and_weight() {
        let a = BitString::from_str01("1100");
        let b = BitString::from_str01("1010");
        assert_eq!(a.weight(), 2);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn xor_and_inner_product() {
        let a = BitString::from_str01("1101");
        let b = BitString::from_str01("1011");
        assert_eq!(a.xor(&b), BitString::from_str01("0110"));
        // <1101, 1011> = 1+0+0+1 = 0 mod 2
        assert!(!a.inner_product_mod2(&b));
        let c = BitString::from_str01("1000");
        assert!(a.inner_product_mod2(&c));
    }

    #[test]
    fn prefix_matches_paper_notation() {
        let x = BitString::from_str01("10110");
        assert_eq!(x.prefix(0), BitString::zeros(0));
        assert_eq!(x.prefix(3), BitString::from_str01("101"));
    }

    #[test]
    fn all_strings() {
        let all = BitString::all(3);
        assert_eq!(all.len(), 8);
        assert_eq!(all[5], BitString::from_str01("101"));
    }

    #[test]
    fn random_is_reproducible_per_seed() {
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        assert_eq!(
            BitString::random(32, &mut r1),
            BitString::random(32, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_overflow_panics() {
        let _ = BitString::from_u64(16, 4);
    }
}
