//! Quantum fingerprints (Buhrman–Cleve–Watrous–de Wolf) built from a seeded
//! binary linear code.
//!
//! The paper's EQ protocols use a fingerprint map `x ↦ |h_x>` of `c·log n`
//! qubits such that `|<h_x|h_y>| ≤ δ` for all `x ≠ y`. Any error-correcting
//! code `E : {0,1}^n → {0,1}^m` with good relative distance yields one:
//!
//! `|h_x> = (1/√m) Σ_i |i>|E(x)_i>`, so `<h_x|h_y> = 1 − d_H(E(x), E(y))/m`.
//!
//! The paper fixes a specific code; this reproduction uses a seeded random
//! binary linear code (plus optional tensor-power amplification), whose
//! realised pairwise distance is measured and reported — the protocols only
//! consume the bound `δ`, so the substitution is behaviour-preserving (see
//! DESIGN.md).

use crate::bitstring::BitString;
use qsim::{CMatrix, PureState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A binary linear code `E : {0,1}^n → {0,1}^m` given by `m` parity rows.
#[derive(Clone, Debug)]
pub struct LinearCode {
    n: usize,
    rows: Vec<BitString>,
}

impl LinearCode {
    /// A seeded random linear code with `m` codeword bits. For a random code
    /// the expected relative distance between distinct codewords is 1/2.
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        assert!(n >= 1 && m >= 1, "code dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<BitString> = Vec::with_capacity(m);
        for _ in 0..m {
            // Avoid the all-zero row, which would waste a coordinate.
            loop {
                let row = BitString::random(n, &mut rng);
                if row.weight() > 0 {
                    rows.push(row);
                    break;
                }
            }
        }
        LinearCode { n, rows }
    }

    /// Message length `n`.
    pub fn message_len(&self) -> usize {
        self.n
    }

    /// Codeword length `m`.
    pub fn codeword_len(&self) -> usize {
        self.rows.len()
    }

    /// Encodes a message: codeword bit `i` is the parity `<row_i, x>`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn encode(&self, x: &BitString) -> BitString {
        assert_eq!(x.len(), self.n, "message length mismatch");
        BitString::new(
            &self
                .rows
                .iter()
                .map(|row| row.inner_product_mod2(x))
                .collect::<Vec<bool>>(),
        )
    }

    /// Relative Hamming distance between the codewords of `x` and `y`.
    pub fn relative_distance(&self, x: &BitString, y: &BitString) -> f64 {
        self.encode(x).hamming_distance(&self.encode(y)) as f64 / self.codeword_len() as f64
    }

    /// Minimum relative distance over all pairs of distinct messages,
    /// by exhaustive enumeration (only for `n ≤ 12`).
    ///
    /// For a linear code this equals the minimum relative weight of a nonzero
    /// codeword, which is what is enumerated.
    ///
    /// # Panics
    ///
    /// Panics if `n > 12`.
    pub fn min_relative_distance(&self) -> f64 {
        assert!(
            self.n <= 12,
            "exhaustive distance computation limited to n <= 12"
        );
        let zero = BitString::zeros(self.n);
        let zero_cw = self.encode(&zero);
        BitString::all(self.n)
            .into_iter()
            .filter(|x| x.weight() > 0)
            .map(|x| self.encode(&x).hamming_distance(&zero_cw) as f64 / self.codeword_len() as f64)
            .fold(1.0, f64::min)
    }
}

/// A fingerprint scheme: a linear code plus a tensor-power amplification
/// factor. The fingerprint of `x` is `|h_x>^{⊗ copies}` where
/// `|h_x> = (1/√m) Σ_i |i>|E(x)_i>`.
#[derive(Clone, Debug)]
pub struct FingerprintScheme {
    code: LinearCode,
    copies: usize,
}

impl FingerprintScheme {
    /// A scheme for `n`-bit inputs with the default code length `m = 4·n`
    /// (rounded up to at least 4) and a single copy.
    pub fn new(n: usize, seed: u64) -> Self {
        FingerprintScheme {
            code: LinearCode::random(n, (4 * n).max(4), seed),
            copies: 1,
        }
    }

    /// A fully custom scheme.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn with_parameters(n: usize, codeword_len: usize, copies: usize, seed: u64) -> Self {
        assert!(copies >= 1, "at least one copy required");
        FingerprintScheme {
            code: LinearCode::random(n, codeword_len, seed),
            copies,
        }
    }

    /// A small scheme intended for exact protocol simulation: short code
    /// (`m = 4`) so that joint states over several registers stay tractable.
    pub fn small(n: usize, seed: u64) -> Self {
        FingerprintScheme {
            code: LinearCode::random(n, 4, seed),
            copies: 1,
        }
    }

    /// The underlying code.
    pub fn code(&self) -> &LinearCode {
        &self.code
    }

    /// Number of tensor copies.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Input length `n`.
    pub fn input_len(&self) -> usize {
        self.code.message_len()
    }

    /// Hilbert-space dimension of one fingerprint register
    /// (`(2m)^copies`).
    pub fn dim(&self) -> usize {
        (2 * self.code.codeword_len()).pow(self.copies as u32)
    }

    /// Number of qubits of one fingerprint register, rounded up:
    /// `copies · ⌈log₂(2m)⌉ = O(log n)` for `m = O(n)`.
    pub fn qubits(&self) -> usize {
        let per_copy = (2 * self.code.codeword_len())
            .next_power_of_two()
            .trailing_zeros() as usize;
        self.copies * per_copy
    }

    /// The fingerprint state `|h_x>^{⊗ copies}` as a single register of
    /// dimension [`FingerprintScheme::dim`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn fingerprint(&self, x: &BitString) -> PureState {
        let single = self.single_fingerprint(x);
        let mut out = single.clone();
        for _ in 1..self.copies {
            out = out.tensor(&single);
        }
        out.regroup(&[self.dim()])
    }

    fn single_fingerprint(&self, x: &BitString) -> PureState {
        let m = self.code.codeword_len();
        let cw = self.code.encode(x);
        let amp = 1.0 / (m as f64).sqrt();
        let mut amps = vec![qsim::Complex::ZERO; 2 * m];
        for i in 0..m {
            let bit = usize::from(cw.bit(i));
            amps[i * 2 + bit] = qsim::Complex::real(amp);
        }
        PureState::from_amplitudes(&[2 * m], qsim::CVector::new(amps))
    }

    /// Exact overlap `<h_x|h_y> = (1 − d_H(E(x), E(y))/m)^copies`.
    pub fn overlap(&self, x: &BitString, y: &BitString) -> f64 {
        (1.0 - self.code.relative_distance(x, y)).powi(self.copies as i32)
    }

    /// The maximum overlap `δ` over all pairs of distinct inputs
    /// (exhaustive, `n ≤ 12`).
    pub fn max_pairwise_overlap(&self) -> f64 {
        (1.0 - self.code.min_relative_distance()).powi(self.copies as i32)
    }

    /// Estimates the maximum pairwise overlap from `samples` random pairs of
    /// distinct inputs (for larger `n`).
    pub fn estimate_max_overlap(&self, samples: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.input_len();
        let mut max = 0.0f64;
        for _ in 0..samples {
            let x = BitString::random(n, &mut rng);
            let mut y = BitString::random(n, &mut rng);
            while y == x {
                y = BitString::random(n, &mut rng);
            }
            max = max.max(self.overlap(&x, &y).abs());
        }
        max
    }

    /// The accept effect `|h_y><h_y|` of the one-way EQ protocol π: Bob, who
    /// holds `y`, projects the received fingerprint onto his own. Accepts
    /// `x = y` with probability 1 and `x ≠ y` with probability
    /// `overlap(x, y)²`.
    pub fn accept_effect(&self, y: &BitString) -> CMatrix {
        let hy = self.fingerprint(y);
        CMatrix::projector(hy.amplitudes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_linear() {
        let code = LinearCode::random(6, 16, 1);
        let x = BitString::from_str01("101010");
        let y = BitString::from_str01("010111");
        let lhs = code.encode(&x.xor(&y));
        let rhs = code.encode(&x).xor(&code.encode(&y));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn random_code_has_positive_distance() {
        let code = LinearCode::random(6, 32, 7);
        let d = code.min_relative_distance();
        assert!(d > 0.1, "random code distance too small: {d}");
        assert!(d <= 1.0);
    }

    #[test]
    fn fingerprints_are_normalised_unit_vectors() {
        let scheme = FingerprintScheme::new(5, 3);
        let x = BitString::from_str01("10110");
        let h = scheme.fingerprint(&x);
        assert!((h.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(h.dim(), scheme.dim());
    }

    #[test]
    fn equal_inputs_have_identical_fingerprints() {
        let scheme = FingerprintScheme::new(4, 5);
        let x = BitString::from_str01("0110");
        let a = scheme.fingerprint(&x);
        let b = scheme.fingerprint(&x);
        assert!((a.overlap_sqr(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_formula_matches_states() {
        let scheme = FingerprintScheme::with_parameters(4, 8, 2, 11);
        for (xv, yv) in [(3u64, 9u64), (0, 15), (5, 6)] {
            let x = BitString::from_u64(xv, 4);
            let y = BitString::from_u64(yv, 4);
            let analytic = scheme.overlap(&x, &y);
            let states = scheme.fingerprint(&x).inner(&scheme.fingerprint(&y)).re;
            assert!((analytic - states).abs() < 1e-10, "x={xv} y={yv}");
        }
    }

    #[test]
    fn distinct_inputs_have_bounded_overlap() {
        let scheme = FingerprintScheme::with_parameters(5, 40, 1, 13);
        let delta = scheme.max_pairwise_overlap();
        assert!(delta < 0.85, "delta = {delta}");
        // Amplification by tensor copies shrinks the overlap.
        let amplified = FingerprintScheme::with_parameters(5, 40, 3, 13);
        assert!(amplified.max_pairwise_overlap() <= delta.powi(3) + 1e-12);
    }

    #[test]
    fn qubit_count_is_logarithmic() {
        let small = FingerprintScheme::new(8, 1);
        let large = FingerprintScheme::new(64, 1);
        assert!(small.qubits() <= large.qubits());
        // m = 4n, so qubits = ceil(log2(8n)): 64-bit inputs need ~9 qubits.
        assert!(large.qubits() <= 10);
    }

    #[test]
    fn accept_effect_is_one_sided() {
        let scheme = FingerprintScheme::new(4, 21);
        let y = BitString::from_str01("1010");
        let effect = scheme.accept_effect(&y);
        let hy = scheme.fingerprint(&y);
        let p_same = hy.amplitudes().inner(&effect.apply(hy.amplitudes())).re;
        assert!((p_same - 1.0).abs() < 1e-10);
        let x = BitString::from_str01("1011");
        let hx = scheme.fingerprint(&x);
        let p_diff = hx.amplitudes().inner(&effect.apply(hx.amplitudes())).re;
        assert!(p_diff < 1.0 - 1e-3);
        assert!((p_diff - scheme.overlap(&x, &y).powi(2)).abs() < 1e-10);
    }

    #[test]
    fn estimate_max_overlap_close_to_exhaustive() {
        let scheme = FingerprintScheme::with_parameters(6, 24, 1, 17);
        let exact = scheme.max_pairwise_overlap();
        let est = scheme.estimate_max_overlap(500, 99);
        assert!(est <= exact + 1e-12);
    }
}
