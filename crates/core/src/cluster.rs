//! Multi-process cluster runtime: one protocol node per OS process over
//! real TCP sockets, driven by a crash-recovery supervisor.
//!
//! This module closes the loop between the in-process samplers of
//! [`crate::trials`] / [`crate::net`] and a genuinely distributed
//! deployment. The pieces:
//!
//! - [`ProgramSpec`] — a wire-encodable description of any
//!   [`RoundProgram`] the suite compiles (chain, relay, tree), with `f64`
//!   tables shipped as `to_bits` hex so a decoded program is **bit-exact**;
//! - [`node_main`] — the per-process entry point (the `dqma-node` binary):
//!   binds a [`TcpTransport`], reports in over a control connection, and
//!   replays only its own node's slice of each trial;
//! - [`Cluster`] — the supervisor: spawns the fleet, drives batches of
//!   trials, detects dead peers, restarts their processes, replays the
//!   reconnect handshake and resumes — degraded trials surface as aborts,
//!   never as silent rejections;
//! - [`ChurnSchedule`] — seeded kill/leave/join/reprogram events at trial
//!   offsets of the virtual timeline, so peer churn is reproducible.
//!
//! # RNG stream alignment
//!
//! The sequential driver threads a single block stream through all nodes:
//! per trial, word 0 is the fault salt, then each scheduled node consumes
//! exactly [`RoundProgram::fault_free_draws`] words in schedule order. A
//! node process reconstructs the same stream with [`stream_rng`] and
//! *skips* every other node's words, so on the fault-free path the fleet's
//! decisions, message counts and transcript digest are bit-identical to
//! [`crate::net::sample_transport_rounds`] with a quiet fault plan. A
//! faulted trial leaves a node's consumption unknown; the node then
//! re-derives the stream from scratch at the next trial boundary
//! (`words-per-trial × trial-index` is an absolute position, so a single
//! faulted trial never desynchronises the rest of the block).
//!
//! # Epochs
//!
//! Trial `g` (global index `block × BLOCK_TRIALS + t`) runs under TCP
//! epoch `g + 1`: every process pins its transport's epoch before running
//! the trial, so frames from lagging peers are acknowledged (their sender
//! completes) but never delivered into a later trial.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::str::SplitWhitespace;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use netsim::tcp::{TcpConfig, TcpTransport};
use netsim::transport::{FaultCause, NodeId, Transport};
use netsim::RetryPolicy;
use rand::rngs::StdRng;
use rand::Rng;

use crate::chain::ChainRoundPlan;
use crate::net::{
    mix, run_single_node, ChainNetProgram, RelayNetProgram, RoundProgram, TreeNetProgram, TreeRole,
};
use crate::trials::{block_len, stream_rng, BlockOutcomes, BLOCK_TRIALS};

// ---------------------------------------------------------------------------
// Program specs: wire-encodable round programs
// ---------------------------------------------------------------------------

/// Internal representation of a [`ProgramSpec`]; kept private so the
/// `pub(crate)` plan/role types never leak through the public enum.
#[derive(Clone, Debug)]
enum Repr {
    Chain {
        k: usize,
        mq: u64,
        tables: Vec<f64>,
    },
    Relay {
        boundaries: Vec<usize>,
        mq: u64,
        segments: Vec<Vec<f64>>,
    },
    Tree {
        mq: u64,
        schedule: Vec<NodeId>,
        roles: Vec<TreeRole>,
    },
}

/// A wire-encodable description of a compiled round program.
///
/// The encoding is a single whitespace-tokenised line; every `f64` table
/// entry ships as its [`f64::to_bits`] value in hex, so
/// `decode(encode(spec))` instantiates a **bit-exact** copy of the
/// original program in another process. This is what the supervisor sends
/// over the control channel (`program <tokens…>`) at launch, after a
/// restart, and on a [`ChurnEvent::Reprogram`].
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    repr: Repr,
}

/// Any of the suite's three per-node program shapes, decoded from a
/// [`ProgramSpec`]. Delegates [`RoundProgram`] to the inner program.
#[derive(Clone, Debug)]
pub enum AnyProgram {
    /// A single chain walk on the path (EQ-path, orthogonality chains).
    Chain(ChainNetProgram),
    /// The relay-point protocol: chained per-segment walks.
    Relay(RelayNetProgram),
    /// The EQ-tree permutation test on an announced spanning tree.
    Tree(TreeNetProgram),
}

impl RoundProgram for AnyProgram {
    fn num_nodes(&self) -> usize {
        match self {
            AnyProgram::Chain(p) => p.num_nodes(),
            AnyProgram::Relay(p) => p.num_nodes(),
            AnyProgram::Tree(p) => p.num_nodes(),
        }
    }

    fn schedule(&self) -> &[NodeId] {
        match self {
            AnyProgram::Chain(p) => p.schedule(),
            AnyProgram::Relay(p) => p.schedule(),
            AnyProgram::Tree(p) => p.schedule(),
        }
    }

    fn message_qubits(&self) -> u64 {
        match self {
            AnyProgram::Chain(p) => p.message_qubits(),
            AnyProgram::Relay(p) => p.message_qubits(),
            AnyProgram::Tree(p) => p.message_qubits(),
        }
    }

    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut crate::net::NodeIo<'_, T>,
    ) -> Result<bool, FaultCause> {
        match self {
            AnyProgram::Chain(p) => p.run_node(node, io),
            AnyProgram::Relay(p) => p.run_node(node, io),
            AnyProgram::Tree(p) => p.run_node(node, io),
        }
    }

    fn fault_free_draws(&self, node: NodeId) -> u64 {
        match self {
            AnyProgram::Chain(p) => p.fault_free_draws(node),
            AnyProgram::Relay(p) => p.fault_free_draws(node),
            AnyProgram::Tree(p) => p.fault_free_draws(node),
        }
    }
}

/// Thin error-reporting wrapper around [`SplitWhitespace`]. Shared with the
/// serving layer's journal/instance decoding in [`crate::service`].
pub(crate) struct Tokens<'a> {
    it: SplitWhitespace<'a>,
}

/// Hard ceiling on any wire-decoded element count (`chain` length, relay
/// segments, tree roles/children/probabilities). A corrupted or hostile
/// length prefix must fail with a structured error *before* any allocation
/// sized by it — never a capacity-overflow panic or an OOM.
pub(crate) const MAX_WIRE_COUNT: usize = 1 << 16;

impl<'a> Tokens<'a> {
    pub(crate) fn new(line: &'a str) -> Self {
        Tokens {
            it: line.split_whitespace(),
        }
    }

    pub(crate) fn next_str(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    pub(crate) fn expect(&mut self) -> Result<&'a str, String> {
        self.it.next().ok_or_else(|| "truncated spec".to_string())
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let t = self.expect()?;
        t.parse().map_err(|_| format!("bad integer token {t:?}"))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        let t = self.expect()?;
        t.parse().map_err(|_| format!("bad integer token {t:?}"))
    }

    /// A `usize` length prefix, rejected above [`MAX_WIRE_COUNT`] so the
    /// caller may allocate `count(..)?` elements without further checks.
    pub(crate) fn count(&mut self, what: &str) -> Result<usize, String> {
        let n = self.usize()?;
        if n > MAX_WIRE_COUNT {
            return Err(format!(
                "{what} count {n} exceeds wire cap {MAX_WIRE_COUNT}"
            ));
        }
        Ok(n)
    }

    pub(crate) fn hex_u64(&mut self) -> Result<u64, String> {
        let t = self.expect()?;
        u64::from_str_radix(t, 16).map_err(|_| format!("bad hex token {t:?}"))
    }

    pub(crate) fn f64_bits(&mut self) -> Result<f64, String> {
        let t = self.expect()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad f64-bits token {t:?}"))
    }
}

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!(" {:016x}", v.to_bits()));
}

impl ProgramSpec {
    /// Captures a chain program (EQ-path, orthogonality chain, …).
    pub fn from_chain(p: &ChainNetProgram) -> Self {
        ProgramSpec {
            repr: Repr::Chain {
                k: p.plan.num_intermediate(),
                mq: p.message_qubits,
                tables: p.plan.tables().to_vec(),
            },
        }
    }

    /// Captures a relay-point program with its segment boundaries.
    pub fn from_relay(p: &RelayNetProgram) -> Self {
        ProgramSpec {
            repr: Repr::Relay {
                boundaries: p.boundaries(),
                mq: p.message_qubits,
                segments: p.segments.iter().map(|s| s.tables().to_vec()).collect(),
            },
        }
    }

    /// Captures an EQ-tree program (roles + post-order schedule).
    pub fn from_tree(p: &TreeNetProgram) -> Self {
        ProgramSpec {
            repr: Repr::Tree {
                mq: p.message_qubits,
                schedule: p.schedule().to_vec(),
                roles: p.roles.clone(),
            },
        }
    }

    /// Serialises the spec to its single-line token form.
    pub fn encode(&self) -> String {
        match &self.repr {
            Repr::Chain { k, mq, tables } => {
                let mut out = format!("chain {k} {mq}");
                for &v in tables {
                    push_f64(&mut out, v);
                }
                out
            }
            Repr::Relay {
                boundaries,
                mq,
                segments,
            } => {
                let mut out = format!("relay {} {mq}", segments.len());
                for b in boundaries {
                    out.push_str(&format!(" {b}"));
                }
                for seg in segments {
                    for &v in seg {
                        push_f64(&mut out, v);
                    }
                }
                out
            }
            Repr::Tree {
                mq,
                schedule,
                roles,
            } => {
                let mut out = format!("tree {} {mq} {}", roles.len(), schedule.len());
                for s in schedule {
                    out.push_str(&format!(" {s}"));
                }
                for role in roles {
                    match role {
                        TreeRole::Unused => out.push_str(" u"),
                        TreeRole::Leaf { parent } => out.push_str(&format!(" l {parent}")),
                        TreeRole::Internal {
                            parent,
                            children,
                            probs,
                        } => {
                            match parent {
                                Some(p) => out.push_str(&format!(" i {p}")),
                                None => out.push_str(" i x"),
                            }
                            out.push_str(&format!(" {}", children.len()));
                            for (c, shift) in children {
                                match shift {
                                    Some(s) => out.push_str(&format!(" {c}:{s}")),
                                    None => out.push_str(&format!(" {c}:x")),
                                }
                            }
                            out.push_str(&format!(" {}", probs.len()));
                            for &v in probs {
                                push_f64(&mut out, v);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Parses a spec from its token form (the tail of a `program` control
    /// line). Inverse of [`ProgramSpec::encode`].
    pub fn decode(line: &str) -> Result<ProgramSpec, String> {
        Self::decode_tokens(&mut Tokens::new(line))
    }

    fn decode_tokens(tok: &mut Tokens<'_>) -> Result<ProgramSpec, String> {
        let repr = match tok.expect()? {
            "chain" => {
                let k = tok.count("chain length")?;
                let mq = tok.u64()?;
                let tables = (0..4 * (k + 1))
                    .map(|_| tok.f64_bits())
                    .collect::<Result<Vec<_>, _>>()?;
                Repr::Chain { k, mq, tables }
            }
            "relay" => {
                let nseg = tok.count("relay segment")?;
                let mq = tok.u64()?;
                let boundaries = (0..=nseg)
                    .map(|_| tok.usize())
                    .collect::<Result<Vec<_>, _>>()?;
                let mut segments = Vec::with_capacity(nseg);
                for i in 0..nseg {
                    let ki = boundaries[i + 1]
                        .checked_sub(boundaries[i] + 1)
                        .ok_or_else(|| "non-monotone relay boundaries".to_string())?;
                    if ki > MAX_WIRE_COUNT {
                        return Err(format!(
                            "relay segment length {ki} exceeds wire cap {MAX_WIRE_COUNT}"
                        ));
                    }
                    segments.push(
                        (0..4 * (ki + 1))
                            .map(|_| tok.f64_bits())
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                Repr::Relay {
                    boundaries,
                    mq,
                    segments,
                }
            }
            "tree" => {
                let n = tok.count("tree role")?;
                let mq = tok.u64()?;
                let slen = tok.count("tree schedule")?;
                let schedule = (0..slen)
                    .map(|_| tok.usize())
                    .collect::<Result<Vec<_>, _>>()?;
                let mut roles = Vec::with_capacity(n);
                for _ in 0..n {
                    roles.push(match tok.expect()? {
                        "u" => TreeRole::Unused,
                        "l" => TreeRole::Leaf {
                            parent: tok.usize()?,
                        },
                        "i" => {
                            let parent = match tok.expect()? {
                                "x" => None,
                                p => {
                                    Some(p.parse().map_err(|_| format!("bad parent token {p:?}"))?)
                                }
                            };
                            let nch = tok.count("tree child")?;
                            let mut children = Vec::with_capacity(nch);
                            for _ in 0..nch {
                                let t = tok.expect()?;
                                let (c, s) = t
                                    .split_once(':')
                                    .ok_or_else(|| format!("bad child token {t:?}"))?;
                                let c = c.parse().map_err(|_| format!("bad child id {c:?}"))?;
                                let shift = match s {
                                    "x" => None,
                                    s => Some(
                                        s.parse().map_err(|_| format!("bad child shift {s:?}"))?,
                                    ),
                                };
                                children.push((c, shift));
                            }
                            let np = tok.count("tree probability")?;
                            let probs = (0..np)
                                .map(|_| tok.f64_bits())
                                .collect::<Result<Vec<_>, _>>()?;
                            TreeRole::Internal {
                                parent,
                                children,
                                probs,
                            }
                        }
                        t => return Err(format!("bad role token {t:?}")),
                    });
                }
                Repr::Tree {
                    mq,
                    schedule,
                    roles,
                }
            }
            t => return Err(format!("unknown program kind {t:?}")),
        };
        Ok(ProgramSpec { repr })
    }

    /// Compiles the spec back into a runnable program.
    pub fn instantiate(&self) -> AnyProgram {
        match &self.repr {
            Repr::Chain { k, mq, tables } => AnyProgram::Chain(
                ChainNetProgram::new(ChainRoundPlan::from_tables(tables.clone(), *k))
                    .with_message_qubits(*mq),
            ),
            Repr::Relay {
                boundaries,
                mq,
                segments,
            } => {
                let segs = segments
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        ChainRoundPlan::from_tables(
                            t.clone(),
                            boundaries[i + 1] - boundaries[i] - 1,
                        )
                    })
                    .collect();
                AnyProgram::Relay(
                    RelayNetProgram::from_segments(segs, boundaries).with_message_qubits(*mq),
                )
            }
            Repr::Tree {
                mq,
                schedule,
                roles,
            } => AnyProgram::Tree(TreeNetProgram::new(roles.clone(), schedule.clone(), *mq)),
        }
    }
}

// ---------------------------------------------------------------------------
// RNG stream cursor
// ---------------------------------------------------------------------------

/// A position-tracking view of one block's RNG stream
/// ([`stream_rng`]`(seed, block)`).
///
/// `seek` replays the generator forward to an absolute word index,
/// rebuilding from the seed when the target lies behind the current
/// position (or after [`StreamCursor::poison`], which marks the position
/// unknown following a faulted trial).
struct StreamCursor {
    seed: u64,
    block: u64,
    rng: StdRng,
    pos: u64,
}

impl StreamCursor {
    fn new(seed: u64, block: u64) -> Self {
        StreamCursor {
            seed,
            block,
            rng: stream_rng(seed, block),
            pos: 0,
        }
    }

    fn seek(&mut self, target: u64) {
        if self.pos > target {
            self.rng = stream_rng(self.seed, self.block);
            self.pos = 0;
        }
        while self.pos < target {
            let _ = self.rng.random::<u64>();
            self.pos += 1;
        }
    }

    fn word(&mut self) -> u64 {
        self.pos += 1;
        self.rng.random::<u64>()
    }

    fn skip(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.rng.random::<u64>();
        }
        self.pos += n;
    }

    /// The underlying generator, for handing to an executor that consumes
    /// words directly; pair with [`StreamCursor::advance`] (known
    /// consumption) or [`StreamCursor::poison`] (unknown).
    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn advance(&mut self, n: u64) {
        self.pos += n;
    }

    fn poison(&mut self) {
        self.pos = u64::MAX;
    }
}

/// Words one trial occupies in the block stream: the fault salt plus every
/// scheduled node's fault-free draws. All processes derive this from the
/// same [`ProgramSpec`], so absolute positions agree fleet-wide.
fn words_per_trial<P: RoundProgram + ?Sized>(program: &P) -> u64 {
    1 + program
        .schedule()
        .iter()
        .map(|&v| program.fault_free_draws(v))
        .sum::<u64>()
}

/// Stream words consumed by the nodes scheduled strictly before `me`.
fn prefix_draws<P: RoundProgram + ?Sized>(program: &P, me: NodeId) -> u64 {
    let mut sum = 0;
    for &v in program.schedule() {
        if v == me {
            break;
        }
        sum += program.fault_free_draws(v);
    }
    sum
}

// ---------------------------------------------------------------------------
// Node process
// ---------------------------------------------------------------------------

/// Maps a fault to its single-digit wire code (`f<code>` result token).
fn fault_code(cause: &FaultCause) -> u32 {
    match cause {
        FaultCause::RetriesExhausted { .. } => 1,
        FaultCause::RecvTimeout { .. } => 2,
        FaultCause::NodeCrashed { .. } => 3,
        FaultCause::NodePanicked => 4,
    }
}

/// Configuration of one `dqma-node` process, reconstructed from its argv.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// The supervisor's control listener, `host:port`.
    pub ctl_addr: String,
    /// This process's node id.
    pub node: NodeId,
    /// Fleet size (ids `0..num_nodes`).
    pub num_nodes: usize,
    /// Wall nanoseconds per virtual nanosecond for the data transport.
    pub nanos_per_vns: u64,
    /// Retry policy shared by the whole fleet.
    pub policy: RetryPolicy,
}

impl NodeConfig {
    /// Parses the seven-argument `dqma-node` argv:
    /// `ctl_addr node num_nodes nanos_per_vns base_timeout max_attempts
    /// jitter_bits_hex`.
    pub fn from_args(args: &[String]) -> Result<NodeConfig, String> {
        if args.len() != 7 {
            return Err(format!("expected 7 node arguments, got {}", args.len()));
        }
        let parse_u64 = |s: &String| s.parse::<u64>().map_err(|_| format!("bad integer {s:?}"));
        let jitter = u64::from_str_radix(&args[6], 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad jitter bits {:?}", args[6]))?;
        Ok(NodeConfig {
            ctl_addr: args[0].clone(),
            node: parse_u64(&args[1])? as NodeId,
            num_nodes: parse_u64(&args[2])? as usize,
            nanos_per_vns: parse_u64(&args[3])?,
            policy: RetryPolicy {
                base_timeout: parse_u64(&args[4])?,
                max_attempts: parse_u64(&args[5])? as u32,
                jitter,
            },
        })
    }

    /// Renders the argv [`NodeConfig::from_args`] parses.
    fn to_args(&self) -> Vec<String> {
        vec![
            self.ctl_addr.clone(),
            self.node.to_string(),
            self.num_nodes.to_string(),
            self.nanos_per_vns.to_string(),
            self.policy.base_timeout.to_string(),
            self.policy.max_attempts.to_string(),
            format!("{:016x}", self.policy.jitter.to_bits()),
        ]
    }
}

fn other(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

/// Runs one protocol node to completion: the body of the `dqma-node`
/// binary.
///
/// Connects to the supervisor's control address, binds a
/// [`TcpTransport`] for protocol data, announces `hello <node> <addr>`,
/// then serves control lines: `peers` installs the fleet's data
/// addresses, `program` installs a decoded [`ProgramSpec`], `run` replays
/// a batch of trials (reporting per-trial decisions back), `abandon`
/// cancels the batch in flight at the next trial boundary, and `quit`
/// (or control-channel EOF) exits.
pub fn node_main(cfg: &NodeConfig) -> io::Result<()> {
    let ctl = TcpStream::connect(&cfg.ctl_addr)?;
    ctl.set_nodelay(true).ok();
    let transport = TcpTransport::with_config(
        cfg.node,
        TcpConfig {
            nanos_per_vns: cfg.nanos_per_vns,
            ..TcpConfig::default()
        },
    )?;
    let mut ctl_w = ctl.try_clone()?;
    writeln!(ctl_w, "hello {} {}", cfg.node, transport.local_addr())?;
    ctl_w.flush()?;

    let (tx, rx) = mpsc::channel::<String>();
    let reader = BufReader::new(ctl);
    thread::spawn(move || {
        for line in reader.lines() {
            match line {
                Ok(l) => {
                    if tx.send(l).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    });

    let mut program: Option<AnyProgram> = None;
    // Control lines read (but not consumed) while a batch was running.
    let mut pending: VecDeque<String> = VecDeque::new();
    loop {
        let line = match pending.pop_front() {
            Some(l) => l,
            None => match rx.recv() {
                Ok(l) => l,
                // Supervisor hung up: exit quietly.
                Err(_) => return Ok(()),
            },
        };
        let mut tok = Tokens::new(&line);
        match tok.next_str() {
            Some("peers") => {
                apply_peers(&transport, cfg, &mut tok).map_err(other)?;
            }
            Some("program") => {
                program = Some(
                    ProgramSpec::decode_tokens(&mut tok)
                        .map_err(other)?
                        .instantiate(),
                );
            }
            Some("run") => {
                let seed = tok.u64().map_err(other)?;
                let block = tok.u64().map_err(other)?;
                let first = tok.u64().map_err(other)?;
                let count = tok.u64().map_err(other)?;
                let base = tok.u64().map_err(other)?;
                let p = program
                    .as_ref()
                    .ok_or_else(|| other("run before program"))?;
                run_batch(
                    p,
                    &transport,
                    cfg,
                    &mut ctl_w,
                    &rx,
                    &mut pending,
                    seed,
                    block,
                    first,
                    count,
                    base,
                )?;
            }
            // A stale abandon for a batch that already completed.
            Some("abandon") => {}
            // Fault-injection hook: go silent for the given wall time. The
            // process stays alive (its data transport keeps its socket) but
            // stops serving control lines — exactly the hung/livelocked
            // shape the supervisor's batch deadline exists to bound.
            Some("stall") => {
                let ms = tok.u64().map_err(other)?;
                thread::sleep(Duration::from_millis(ms));
            }
            Some("quit") | None => return Ok(()),
            Some(_) => {}
        }
    }
}

fn apply_peers(
    transport: &TcpTransport,
    cfg: &NodeConfig,
    tok: &mut Tokens<'_>,
) -> Result<(), String> {
    let n = tok.usize()?;
    for v in 0..n {
        let t = tok.expect()?;
        if v == cfg.node {
            continue;
        }
        if t == "-" {
            transport.clear_peer(v);
        } else {
            let addr: SocketAddr = t.parse().map_err(|_| format!("bad peer address {t:?}"))?;
            transport.set_peer(v, addr);
        }
    }
    Ok(())
}

/// Replays trials `first..first + count` of `block`, reporting
/// `o <trial> <decision> <digest> <sent> <retries>` lines under a
/// `res <block> <first> <done>` header (then `end`). Control lines
/// arriving mid-batch are deferred to the caller, except `abandon` /
/// `quit`, which stop the batch at the next trial boundary — the partial
/// report still goes out so the supervisor can account for every trial.
///
/// `base` is the supervisor's epoch base for this `run` invocation:
/// trial `g` uses TCP epoch `base + g + 1`, and the base strictly
/// increases across [`Cluster::run`] calls so the fleet's epochs never
/// move backwards (which would let a previous run's dedup state swallow
/// fresh frames).
#[allow(clippy::too_many_arguments)]
fn run_batch(
    program: &AnyProgram,
    transport: &TcpTransport,
    cfg: &NodeConfig,
    ctl_w: &mut TcpStream,
    rx: &Receiver<String>,
    pending: &mut VecDeque<String>,
    seed: u64,
    block: u64,
    first: u64,
    count: u64,
    base: u64,
) -> io::Result<()> {
    let me = cfg.node;
    let wpt = words_per_trial(program);
    let prefix = prefix_draws(program, me);
    let own = program.fault_free_draws(me);
    let mut cursor = StreamCursor::new(seed, block);
    let mut out = String::new();
    let mut done = 0u64;
    let mut stop = false;
    for i in 0..count {
        while let Ok(l) = rx.try_recv() {
            if l.starts_with("abandon") {
                stop = true;
            } else {
                if l.starts_with("quit") {
                    stop = true;
                }
                pending.push_back(l);
            }
        }
        if stop {
            break;
        }
        let t = first + i;
        cursor.seek(t * wpt);
        let salt = cursor.word();
        cursor.skip(prefix);
        let g = block * BLOCK_TRIALS + t;
        transport.set_epoch(base + g + 1);
        let (decision, _vtime, stats) =
            run_single_node(program, me, transport, &cfg.policy, salt, cursor.rng());
        match &decision {
            Ok(_) => cursor.advance(own),
            Err(_) => cursor.poison(),
        }
        let code = match &decision {
            Ok(true) => "a".to_string(),
            Ok(false) => "r".to_string(),
            Err(cause) => format!("f{}", fault_code(cause)),
        };
        out.push_str(&format!(
            "o {t} {code} {:016x} {} {}\n",
            stats.digest, stats.sent, stats.retries
        ));
        done += 1;
    }
    write!(ctl_w, "res {block} {first} {done}\n{out}end\n")?;
    ctl_w.flush()
}

// ---------------------------------------------------------------------------
// Churn schedule
// ---------------------------------------------------------------------------

/// One peer-churn event, anchored at a global trial index of the virtual
/// timeline (trial `g` spans virtual time `g × trial budget`, so trial
/// offsets are the reproducible unit of "when").
#[derive(Clone, Debug)]
pub enum ChurnEvent {
    /// Kill `node`'s process right after the batch starting at `at_trial`
    /// goes out (so the crash lands mid-workload), then restart it
    /// `restart_delay` after the death is detected.
    Kill {
        /// Global trial index the kill batch starts at.
        at_trial: u64,
        /// Victim node.
        node: NodeId,
        /// Pause between detected death and respawn.
        restart_delay: Duration,
    },
    /// Like `Kill`, but the node stays gone (its trials abort) until a
    /// matching [`ChurnEvent::Join`].
    Leave {
        /// Global trial index the departure batch starts at.
        at_trial: u64,
        /// Departing node.
        node: NodeId,
    },
    /// Respawns a departed node before the batch starting at `at_trial`.
    Join {
        /// Global trial index the node rejoins at.
        at_trial: u64,
        /// Rejoining node.
        node: NodeId,
    },
    /// Installs a new program fleet-wide before the batch starting at
    /// `at_trial` — e.g. a re-randomised §3.3 spanning tree. The new
    /// program must keep the fleet size.
    Reprogram {
        /// Global trial index the new program takes effect at.
        at_trial: u64,
        /// The replacement program.
        spec: ProgramSpec,
    },
}

impl ChurnEvent {
    fn at_trial(&self) -> u64 {
        match self {
            ChurnEvent::Kill { at_trial, .. }
            | ChurnEvent::Leave { at_trial, .. }
            | ChurnEvent::Join { at_trial, .. }
            | ChurnEvent::Reprogram { at_trial, .. } => *at_trial,
        }
    }
}

/// A reproducible churn schedule: events sorted by trial offset.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// The empty schedule (fault-free run).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Builds a schedule from `events`, sorting by trial offset (stable,
    /// so same-trial events keep their given order).
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(ChurnEvent::at_trial);
        ChurnSchedule { events }
    }

    /// The sorted events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// A deterministic kill-restart schedule: `count` kills at
    /// mix-derived trial offsets in `[1, trials)`, victims drawn from
    /// `nodes`, restart delays uniform in `[0, max_delay]`. Same
    /// arguments, same schedule — the churn analogue of the block-stream
    /// seeding discipline.
    pub fn seeded_kills(
        seed: u64,
        trials: u64,
        nodes: &[NodeId],
        count: usize,
        max_delay: Duration,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one victim candidate");
        assert!(trials > 1, "need at least two trials to land a kill");
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let h = mix(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let at_trial = 1 + h % (trials - 1);
            let node = nodes[(mix(h) % nodes.len() as u64) as usize];
            let delay_ns = if max_delay.is_zero() {
                0
            } else {
                mix(mix(h)) % (max_delay.as_nanos() as u64 + 1)
            };
            events.push(ChurnEvent::Kill {
                at_trial,
                node,
                restart_delay: Duration::from_nanos(delay_ns),
            });
        }
        Self::new(events)
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// The fleet-wide retry policy used by [`ClusterConfig::default`]:
/// attempt 0 waits 32 µs of virtual time (32 ms of wall at the default
/// 1000 ns/vns scale), doubling per attempt for six attempts — roughly a
/// two-second wall budget per operation, enough to ride out a peer's
/// kill-restart cycle.
pub fn cluster_policy() -> RetryPolicy {
    RetryPolicy {
        base_timeout: 1 << 15,
        max_attempts: 6,
        jitter: 0.25,
    }
}

/// Supervisor knobs.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Path of the `dqma-node` binary (see [`locate_node_bin`]).
    pub node_bin: PathBuf,
    /// Retry policy installed fleet-wide.
    pub policy: RetryPolicy,
    /// Wall nanoseconds per virtual nanosecond on the data transports.
    pub nanos_per_vns: u64,
    /// Max trials per `run` batch (smaller batches = finer churn grain).
    pub batch: u64,
    /// How long the supervisor waits for a batch's reports before
    /// declaring the silent nodes dead. This is the *outer* safety net;
    /// the per-batch deadline below normally fires first.
    pub collect_timeout: Duration,
    /// How long a spawned process gets to report `hello`.
    pub hello_timeout: Duration,
    /// Hard wall-clock deadline for collecting one batch. `None` sizes it
    /// automatically from the retry policy: `batch × virtual_budget ×
    /// nanos_per_vns` (the worst case where every trial exhausts its full
    /// retry budget), clamped to `[2 s, collect_timeout]`. A node that is
    /// hung or livelocked — alive at the process level but no longer
    /// reporting — folds to [`netsim::RoundOutcome::Aborted`] trials within
    /// this deadline instead of stalling the whole fleet for
    /// `collect_timeout`.
    pub batch_deadline: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_bin: locate_node_bin().unwrap_or_else(|| PathBuf::from("dqma-node")),
            policy: cluster_policy(),
            nanos_per_vns: 1_000,
            batch: 2_048,
            collect_timeout: Duration::from_secs(60),
            hello_timeout: Duration::from_secs(20),
            batch_deadline: None,
        }
    }
}

impl ClusterConfig {
    /// The effective per-batch collection deadline (see
    /// [`ClusterConfig::batch_deadline`]).
    pub fn effective_batch_deadline(&self) -> Duration {
        if let Some(d) = self.batch_deadline {
            return d;
        }
        let per_trial_ns = (self.policy.virtual_budget() as u128)
            .saturating_mul(self.nanos_per_vns.max(1) as u128);
        let worst_ns = per_trial_ns.saturating_mul(self.batch.max(1) as u128);
        let auto = Duration::from_nanos(worst_ns.min(u64::MAX as u128) as u64);
        auto.clamp(Duration::from_secs(2), self.collect_timeout)
    }
}

/// Locates the `dqma-node` binary: the `DQMA_NODE_BIN` environment
/// variable if set, else a sibling of the current executable (walking up
/// through cargo's `target/<profile>/deps` layout).
pub fn locate_node_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("DQMA_NODE_BIN") {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("dqma-node{}", std::env::consts::EXE_SUFFIX);
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join(&name);
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

/// A per-trial report line from one node.
#[derive(Clone, Debug)]
struct TrialLine {
    trial: u64,
    code: TrialCode,
    digest: u64,
    sent: u64,
    retries: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TrialCode {
    Accept,
    Reject,
    Fault,
}

enum NodeMsg {
    Hello {
        addr: SocketAddr,
        ctl: TcpStream,
    },
    Batch {
        block: u64,
        first: u64,
        lines: Vec<TrialLine>,
    },
    Dead,
}

/// Serves one node's control connection: forwards its hello and batch
/// reports to the supervisor loop, then a final `Dead` on disconnect.
fn serve_conn(stream: TcpStream, tx: Sender<(NodeId, NodeMsg)>) {
    stream.set_nodelay(true).ok();
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut lines = BufReader::new(stream).lines();
    let hello = match lines.next() {
        Some(Ok(l)) => l,
        _ => return,
    };
    let mut tok = Tokens::new(&hello);
    let node = match (tok.next_str(), tok.u64(), tok.expect()) {
        (Some("hello"), Ok(node), Ok(addr)) => match addr.parse::<SocketAddr>() {
            Ok(addr) => {
                let node = node as NodeId;
                if tx
                    .send((node, NodeMsg::Hello { addr, ctl: writer }))
                    .is_err()
                {
                    return;
                }
                node
            }
            Err(_) => return,
        },
        _ => return,
    };
    loop {
        let Some(Ok(header)) = lines.next() else {
            let _ = tx.send((node, NodeMsg::Dead));
            return;
        };
        let mut tok = Tokens::new(&header);
        if tok.next_str() != Some("res") {
            continue;
        }
        let (Ok(block), Ok(first), Ok(done)) = (tok.u64(), tok.u64(), tok.u64()) else {
            let _ = tx.send((node, NodeMsg::Dead));
            return;
        };
        let mut batch = Vec::with_capacity(done as usize);
        loop {
            let Some(Ok(line)) = lines.next() else {
                let _ = tx.send((node, NodeMsg::Dead));
                return;
            };
            if line == "end" {
                break;
            }
            let mut tok = Tokens::new(&line);
            if tok.next_str() != Some("o") {
                continue;
            }
            let parsed = (|| -> Result<TrialLine, String> {
                let trial = tok.u64()?;
                let code = match tok.expect()? {
                    "a" => TrialCode::Accept,
                    "r" => TrialCode::Reject,
                    t if t.starts_with('f') => TrialCode::Fault,
                    t => return Err(format!("bad decision token {t:?}")),
                };
                let digest = u64::from_str_radix(tok.expect()?, 16).map_err(|e| e.to_string())?;
                let sent = tok.u64()?;
                let retries = tok.u64()?;
                Ok(TrialLine {
                    trial,
                    code,
                    digest,
                    sent,
                    retries,
                })
            })();
            match parsed {
                Ok(l) => batch.push(l),
                Err(_) => {
                    let _ = tx.send((node, NodeMsg::Dead));
                    return;
                }
            }
        }
        if tx
            .send((
                node,
                NodeMsg::Batch {
                    block,
                    first,
                    lines: batch,
                },
            ))
            .is_err()
        {
            return;
        }
    }
}

#[derive(Default)]
struct Slot {
    child: Option<Child>,
    ctl: Option<TcpStream>,
    addr: Option<SocketAddr>,
    alive: bool,
}

/// Aggregate result of a supervised run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Trials driven.
    pub trials: u64,
    /// Fleet-wide outcome tallies; on the fault-free path bit-identical
    /// to [`crate::net::sample_transport_rounds`] with a quiet plan.
    pub outcomes: BlockOutcomes,
    /// Processes restarted (kill-restart churn plus unexpected deaths).
    pub restarts: u64,
    /// Fleet-wide program swaps ([`ChurnEvent::Reprogram`]).
    pub reprograms: u64,
    /// Wall time spent between detecting a death and the replacement's
    /// `hello` (recovery cost, summed over restarts).
    pub restart_wall: Duration,
    /// Wall time of the whole run.
    pub elapsed: Duration,
}

/// A supervised fleet of `dqma-node` processes.
///
/// `launch` spawns one process per protocol node and completes the
/// hello/peers/program handshake; [`Cluster::run`] then drives trials in
/// batches, applying a [`ChurnSchedule`] at batch boundaries. Nodes that
/// die mid-batch (detected by control-connection EOF) cost their batch's
/// unreported trials — folded as **aborts**, never rejections — and are
/// respawned, re-handshaken and resumed before the next batch.
pub struct Cluster {
    cfg: ClusterConfig,
    spec: ProgramSpec,
    program: AnyProgram,
    num_nodes: usize,
    ctl_addr: SocketAddr,
    rx: Receiver<(NodeId, NodeMsg)>,
    slots: Vec<Slot>,
    departed: HashSet<NodeId>,
    /// First TCP epoch the next [`Cluster::run`] may use; strictly grows
    /// so epochs never repeat across runs (a reused epoch would collide
    /// with a previous run's dedup and reorder buffers).
    next_epoch_base: u64,
    restarts: u64,
    reprograms: u64,
    restart_wall: Duration,
}

impl Cluster {
    /// Spawns and handshakes the fleet. Returns an error when the control
    /// listener cannot bind (callers treat that as a graceful skip on
    /// loopback-less machines) or any process fails to report in.
    pub fn launch(spec: ProgramSpec, cfg: ClusterConfig) -> io::Result<Cluster> {
        let program = spec.instantiate();
        let num_nodes = program.num_nodes();
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let ctl_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            for conn in listener.incoming() {
                match conn {
                    Ok(stream) => {
                        let tx = tx.clone();
                        thread::spawn(move || serve_conn(stream, tx));
                    }
                    Err(_) => return,
                }
            }
        });
        let mut cluster = Cluster {
            cfg,
            spec,
            program,
            num_nodes,
            ctl_addr,
            rx,
            slots: (0..num_nodes).map(|_| Slot::default()).collect(),
            departed: HashSet::new(),
            next_epoch_base: 0,
            restarts: 0,
            reprograms: 0,
            restart_wall: Duration::ZERO,
        };
        for v in 0..num_nodes {
            cluster.spawn_process(v)?;
        }
        cluster.await_hellos(&(0..num_nodes).collect::<HashSet<_>>())?;
        cluster.broadcast_peers();
        cluster.broadcast_program();
        Ok(cluster)
    }

    /// Restart / reprogram tallies so far (exposed for benches that call
    /// [`Cluster::run`] several times).
    pub fn churn_totals(&self) -> (u64, u64, Duration) {
        (self.restarts, self.reprograms, self.restart_wall)
    }

    fn spawn_process(&mut self, node: NodeId) -> io::Result<()> {
        let node_cfg = NodeConfig {
            ctl_addr: self.ctl_addr.to_string(),
            node,
            num_nodes: self.num_nodes,
            nanos_per_vns: self.cfg.nanos_per_vns,
            policy: self.cfg.policy.clone(),
        };
        let child = Command::new(&self.cfg.node_bin)
            .args(node_cfg.to_args())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        let slot = &mut self.slots[node];
        slot.child = Some(child);
        slot.alive = false;
        Ok(())
    }

    fn await_hellos(&mut self, wanted: &HashSet<NodeId>) -> io::Result<()> {
        let mut missing = wanted.clone();
        let deadline = Instant::now() + self.cfg.hello_timeout;
        while !missing.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            let (node, msg) = self
                .rx
                .recv_timeout(left)
                .map_err(|_| other(format!("nodes {missing:?} failed to report hello in time")))?;
            match msg {
                NodeMsg::Hello { addr, ctl } if node < self.num_nodes => {
                    let slot = &mut self.slots[node];
                    slot.addr = Some(addr);
                    slot.ctl = Some(ctl);
                    slot.alive = true;
                    missing.remove(&node);
                }
                NodeMsg::Dead if missing.contains(&node) => {
                    return Err(other(format!("node {node} died before hello")));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn send_line(&mut self, node: NodeId, line: &str) {
        let ok = match self.slots[node].ctl.as_mut() {
            Some(w) => writeln!(w, "{line}").and_then(|()| w.flush()).is_ok(),
            None => false,
        };
        if !ok {
            // The death will also surface via the reader thread; dropping
            // the writer here just stops further sends.
            self.slots[node].ctl = None;
        }
    }

    fn broadcast(&mut self, line: &str) {
        for v in 0..self.num_nodes {
            if self.slots[v].alive {
                self.send_line(v, line);
            }
        }
    }

    fn peers_line(&self) -> String {
        let mut line = format!("peers {}", self.num_nodes);
        for slot in &self.slots {
            match (slot.alive, slot.addr) {
                (true, Some(addr)) => line.push_str(&format!(" {addr}")),
                _ => line.push_str(" -"),
            }
        }
        line
    }

    fn broadcast_peers(&mut self) {
        let line = self.peers_line();
        self.broadcast(&line);
    }

    fn broadcast_program(&mut self) {
        let line = format!("program {}", self.spec.encode());
        self.broadcast(&line);
    }

    /// Fault-injection hook: makes `node` stop responding to control
    /// lines for `dur` without killing its process — the hung-node shape
    /// (as opposed to a crash, which the reader thread reports as
    /// [`NodeMsg::Dead`]). The batch-deadline regression test drives this;
    /// production code has no reason to call it.
    pub fn inject_stall(&mut self, node: NodeId, dur: Duration) {
        self.send_line(node, &format!("stall {}", dur.as_millis()));
    }

    /// Kills `node`'s process (churn or shutdown). The reader thread
    /// reports the death like any other crash.
    fn kill_process(&mut self, node: NodeId) {
        let slot = &mut self.slots[node];
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
        }
        if let Some(mut child) = slot.child.take() {
            let _ = child.wait();
        }
    }

    /// Respawns `node` and reintegrates it: hello, program, fresh peer
    /// table fleet-wide.
    fn restart_process(&mut self, node: NodeId) -> io::Result<()> {
        let began = Instant::now();
        self.spawn_process(node)?;
        self.await_hellos(&HashSet::from([node]))?;
        let line = format!("program {}", self.spec.encode());
        self.send_line(node, &line);
        self.broadcast_peers();
        self.restarts += 1;
        self.restart_wall += began.elapsed();
        Ok(())
    }

    fn reprogram(&mut self, spec: ProgramSpec) {
        let program = spec.instantiate();
        assert_eq!(
            program.num_nodes(),
            self.num_nodes,
            "reprogram must keep the fleet size"
        );
        self.program = program;
        self.spec = spec;
        self.broadcast_program();
        self.reprograms += 1;
    }

    /// Drives `n` trials from `seed` under `churn`, batching per
    /// [`ClusterConfig::batch`] and slicing batches at churn boundaries.
    ///
    /// Every trial terminates with an outcome: trials a dead or departed
    /// node should have served fold as aborts (the honest-case contract —
    /// infrastructure faults must never masquerade as rejections).
    pub fn run(&mut self, n: u64, seed: u64, churn: &ChurnSchedule) -> io::Result<ClusterReport> {
        let start = Instant::now();
        let restarts0 = self.restarts;
        let reprograms0 = self.reprograms;
        let restart_wall0 = self.restart_wall;
        let mut outcomes = BlockOutcomes::default();
        let mut events: VecDeque<ChurnEvent> = churn.events().iter().cloned().collect();
        let nblocks = n.div_ceil(BLOCK_TRIALS);
        let base = self.next_epoch_base;
        self.next_epoch_base = base + nblocks * BLOCK_TRIALS + 1;
        for b in 0..nblocks {
            let len = block_len(n, nblocks, b);
            let mut salt_cursor = StreamCursor::new(seed, b);
            let mut first = 0u64;
            while first < len {
                let g0 = b * BLOCK_TRIALS + first;
                // Apply events due at this boundary; collect kills so the
                // victims die *after* the batch goes out.
                let mut kills: Vec<(NodeId, Duration)> = Vec::new();
                while events.front().is_some_and(|e| e.at_trial() <= g0) {
                    match events.pop_front().expect("front checked") {
                        ChurnEvent::Kill {
                            node,
                            restart_delay,
                            ..
                        } => kills.push((node, restart_delay)),
                        ChurnEvent::Leave { node, .. } => {
                            self.departed.insert(node);
                            kills.push((node, Duration::ZERO));
                        }
                        ChurnEvent::Join { node, .. } => {
                            if self.departed.remove(&node) && !self.slots[node].alive {
                                self.restart_process(node)?;
                            }
                        }
                        ChurnEvent::Reprogram { spec, .. } => self.reprogram(spec),
                    }
                }
                let mut count = (len - first).min(self.cfg.batch);
                if let Some(next_at) = events.front().map(ChurnEvent::at_trial) {
                    count = count.min(next_at - g0);
                }
                let wpt = words_per_trial(&self.program);
                let line = format!("run {seed} {b} {first} {count} {base}");
                let targets: Vec<NodeId> = (0..self.num_nodes)
                    .filter(|&v| self.slots[v].alive)
                    .collect();
                for &v in &targets {
                    self.send_line(v, &line);
                }
                // Mid-workload churn: the batch is in flight, now pull the
                // plug on the victims.
                for &(v, _) in &kills {
                    self.kill_process(v);
                }
                let got = self.collect_batch(&targets, b, first)?;
                self.fold_batch(&mut outcomes, &mut salt_cursor, wpt, first, count, &got);
                // Recover the dead (except deliberate departures) before
                // the next batch.
                let dead: Vec<NodeId> = (0..self.num_nodes)
                    .filter(|&v| !self.slots[v].alive && !self.departed.contains(&v))
                    .collect();
                for v in dead {
                    let delay = kills
                        .iter()
                        .find(|&&(k, _)| k == v)
                        .map(|&(_, d)| d)
                        .unwrap_or(Duration::ZERO);
                    thread::sleep(delay);
                    self.restart_process(v)?;
                }
                first += count;
            }
        }
        Ok(ClusterReport {
            trials: n,
            outcomes,
            restarts: self.restarts - restarts0,
            reprograms: self.reprograms - reprograms0,
            restart_wall: self.restart_wall - restart_wall0,
            elapsed: start.elapsed(),
        })
    }

    /// Gathers one batch's reports from `targets`. A node that dies
    /// mid-batch is removed from the wait set and the survivors get an
    /// immediate `abandon`, so they stop burning retry budget on a peer
    /// that cannot answer; their partial reports still count.
    fn collect_batch(
        &mut self,
        targets: &[NodeId],
        block: u64,
        first: u64,
    ) -> io::Result<HashMap<NodeId, HashMap<u64, TrialLine>>> {
        let mut got: HashMap<NodeId, HashMap<u64, TrialLine>> = HashMap::new();
        let mut waiting: HashSet<NodeId> = targets.iter().copied().collect();
        let deadline = Instant::now() + self.cfg.effective_batch_deadline();
        while !waiting.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok((
                    node,
                    NodeMsg::Batch {
                        block: rb,
                        first: rf,
                        lines,
                    },
                )) if rb == block && rf == first => {
                    let per_trial = got.entry(node).or_default();
                    for l in lines {
                        per_trial.insert(l.trial, l);
                    }
                    waiting.remove(&node);
                }
                // A stale partial report from an abandoned earlier batch.
                Ok((_, NodeMsg::Batch { .. })) => {}
                Ok((node, NodeMsg::Dead)) => {
                    if self.slots[node].alive {
                        self.slots[node].alive = false;
                        self.slots[node].ctl = None;
                        if let Some(mut child) = self.slots[node].child.take() {
                            let _ = child.wait();
                        }
                    }
                    if waiting.remove(&node) {
                        for &v in targets {
                            if waiting.contains(&v) {
                                self.send_line(v, "abandon");
                            }
                        }
                    }
                }
                Ok((_, NodeMsg::Hello { .. })) => {}
                Err(RecvTimeoutError::Timeout) => {
                    // Non-reporters are stuck or dead: treat as dead so
                    // the run degrades instead of hanging.
                    let stuck: Vec<NodeId> = waiting.drain().collect();
                    for &v in &stuck {
                        self.slots[v].alive = false;
                        self.slots[v].ctl = None;
                        self.kill_process(v);
                    }
                    // Consume the reader threads' Dead notifications for
                    // the processes just killed — left queued, they would
                    // be mistaken for a fresh death during the upcoming
                    // restart handshake.
                    let mut pending: HashSet<NodeId> = stuck.into_iter().collect();
                    let grace = Instant::now() + Duration::from_secs(5);
                    while !pending.is_empty() && Instant::now() < grace {
                        match self.rx.recv_timeout(Duration::from_millis(100)) {
                            Ok((node, NodeMsg::Dead)) => {
                                pending.remove(&node);
                            }
                            Ok(_) => {}
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(other("control listener thread died"));
                }
            }
        }
        Ok(got)
    }

    /// Folds one batch into the tallies, mirroring the sequential
    /// sampler's fold exactly: per trial, XOR the per-node digests, add
    /// the salt, `mix`, XOR into the running digest; any fault or missing
    /// report aborts the trial, otherwise unanimity accepts.
    fn fold_batch(
        &self,
        outcomes: &mut BlockOutcomes,
        salt_cursor: &mut StreamCursor,
        wpt: u64,
        first: u64,
        count: u64,
        got: &HashMap<NodeId, HashMap<u64, TrialLine>>,
    ) {
        for t in first..first + count {
            salt_cursor.seek(t * wpt);
            let salt = salt_cursor.word();
            let mut digest = 0u64;
            let mut fault = false;
            let mut reject = false;
            let mut missing = false;
            for v in 0..self.num_nodes {
                match got.get(&v).and_then(|m| m.get(&t)) {
                    Some(line) => {
                        digest ^= line.digest;
                        outcomes.messages += line.sent;
                        outcomes.retries += line.retries;
                        match line.code {
                            TrialCode::Accept => {}
                            TrialCode::Reject => reject = true,
                            TrialCode::Fault => fault = true,
                        }
                    }
                    None => missing = true,
                }
            }
            if fault || missing {
                if std::env::var_os("DQMA_CLUSTER_DEBUG").is_some() {
                    eprintln!("[cluster] trial {t}: abort (fault={fault} missing={missing})");
                }
                outcomes.aborts += 1;
            } else if reject {
                outcomes.rejects += 1;
            } else {
                outcomes.accepts += 1;
            }
            outcomes.digest ^= mix(digest.wrapping_add(salt));
        }
    }

    /// Orderly shutdown: `quit` fleet-wide, then reap (escalating to
    /// kill for processes that ignore the request).
    pub fn shutdown(&mut self) {
        for v in 0..self.num_nodes {
            if self.slots[v].ctl.is_some() {
                self.send_line(v, "quit");
            }
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            slot.alive = false;
            slot.ctl = None;
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainCheat;
    use crate::eq_path::EqPathProtocol;
    use crate::eq_tree::EqTreeProtocol;
    use crate::net::run_round;
    use crate::relay::RelayEqProtocol;
    use commproto::bitstring::BitString;
    use commproto::fingerprint::FingerprintScheme;
    use netsim::topology::{spider, spider_leaf};
    use netsim::transport::ChannelTransport;
    use netsim::RoundOutcome;
    use rand::SeedableRng;

    fn chain_program(equal: bool) -> ChainNetProgram {
        let protocol = EqPathProtocol::with_scheme(4, FingerprintScheme::small(6, 7), 8);
        let x = BitString::from_u64(0b101010, 6);
        let y = if equal {
            x.clone()
        } else {
            BitString::from_u64(0b010110, 6)
        };
        protocol.net_program(&x, &y, ChainCheat::Interpolate)
    }

    fn relay_program() -> RelayNetProgram {
        let protocol = RelayEqProtocol::new(8, 9, 3);
        let x = BitString::from_u64(0b1011_0010, 8);
        let strings: Vec<BitString> = protocol.relay_points().iter().map(|_| x.clone()).collect();
        protocol.net_program(&x, &x, &strings, ChainCheat::Interpolate)
    }

    fn tree_program() -> TreeNetProgram {
        let graph = spider(3, 2);
        let terminals: Vec<usize> = (0..3).map(|k| spider_leaf(k, 2)).collect();
        let protocol =
            EqTreeProtocol::with_scheme(&graph, &terminals, FingerprintScheme::small(4, 7), 2);
        let x = BitString::from_u64(0b1010, 4);
        let inputs = vec![x.clone(); terminals.len()];
        let proof = protocol.uniform_proof(&inputs[0]);
        protocol.net_program(&inputs, &proof)
    }

    #[test]
    fn chain_spec_roundtrips_bit_exactly() {
        let program = chain_program(false);
        let spec = ProgramSpec::from_chain(&program);
        let wire = spec.encode();
        let decoded = ProgramSpec::decode(&wire).expect("decode");
        assert_eq!(decoded.encode(), wire, "re-encode must be stable");
        let back = decoded.instantiate();
        assert_eq!(back.num_nodes(), program.num_nodes());
        assert_eq!(back.schedule(), program.schedule());
        let AnyProgram::Chain(back) = back else {
            panic!("chain spec must decode to a chain program");
        };
        assert_eq!(back.plan.tables(), program.plan.tables());
        assert_eq!(back.message_qubits, program.message_qubits);
    }

    #[test]
    fn relay_spec_roundtrips_bit_exactly() {
        let program = relay_program();
        let spec = ProgramSpec::from_relay(&program);
        let wire = spec.encode();
        let decoded = ProgramSpec::decode(&wire).expect("decode");
        assert_eq!(decoded.encode(), wire);
        let back = decoded.instantiate();
        assert_eq!(back.num_nodes(), program.num_nodes());
        let AnyProgram::Relay(back) = back else {
            panic!("relay spec must decode to a relay program");
        };
        assert_eq!(back.boundaries(), program.boundaries());
        for (a, b) in back.segments.iter().zip(program.segments.iter()) {
            assert_eq!(a.tables(), b.tables());
        }
    }

    #[test]
    fn tree_spec_roundtrips_bit_exactly() {
        let program = tree_program();
        let spec = ProgramSpec::from_tree(&program);
        let wire = spec.encode();
        let decoded = ProgramSpec::decode(&wire).expect("decode");
        assert_eq!(decoded.encode(), wire);
        let back = decoded.instantiate();
        assert_eq!(back.num_nodes(), program.num_nodes());
        assert_eq!(back.schedule(), program.schedule());
        // Spot-check decisions: run both programs over a fault-free
        // transport from the same stream.
        let transport = ChannelTransport::poll(program.num_nodes());
        let policy = RetryPolicy::default();
        for salt in 0..32u64 {
            let mut r1 = StdRng::seed_from_u64(salt);
            let mut r2 = StdRng::seed_from_u64(salt);
            let (o1, s1) = run_round(&program, &transport, &policy, salt, &mut r1);
            let (o2, s2) = run_round(&back, &transport, &policy, salt, &mut r2);
            assert_eq!(format!("{o1:?}"), format!("{o2:?}"));
            assert_eq!(s1.digest, s2.digest);
        }
    }

    /// The cross-process alignment contract, exercised without sockets:
    /// running each node separately against its own cursor-positioned
    /// slice of the block stream reproduces the sequential driver's
    /// decisions, message counts and digest bit-for-bit.
    #[test]
    fn split_streams_match_sequential_driver() {
        for program in [chain_program(true), chain_program(false)] {
            let n = program.num_nodes();
            let wpt = words_per_trial(&program);
            let policy = RetryPolicy::default();
            let seed = 0xD15C0;

            // Sequential reference: one stream threads through all nodes.
            let mut seq_rng = stream_rng(seed, 0);
            let transport = ChannelTransport::poll(n);
            let mut reference = Vec::new();
            for _ in 0..24 {
                let salt = seq_rng.random::<u64>();
                let (outcome, stats) = run_round(&program, &transport, &policy, salt, &mut seq_rng);
                reference.push((salt, format!("{outcome:?}"), stats.sent, stats.digest));
            }

            // Split replay: every node owns a cursor into the same block
            // stream and skips the other nodes' words.
            let transport = ChannelTransport::poll(n);
            let mut cursors: Vec<StreamCursor> =
                (0..n).map(|_| StreamCursor::new(seed, 0)).collect();
            for (t, (ref_salt, ref_outcome, ref_sent, ref_digest)) in reference.iter().enumerate() {
                transport.begin_trial(*ref_salt);
                let mut all_accept = true;
                let mut fault = false;
                let mut sent = 0;
                let mut digest = 0u64;
                for &v in program.schedule() {
                    let cursor = &mut cursors[v];
                    cursor.seek(t as u64 * wpt);
                    let salt = cursor.word();
                    assert_eq!(salt, *ref_salt, "trial {t}: salt misaligned");
                    cursor.skip(prefix_draws(&program, v));
                    let (decision, _, stats) =
                        run_single_node(&program, v, &transport, &policy, salt, cursor.rng());
                    match decision {
                        Ok(accept) => {
                            all_accept &= accept;
                            cursor.advance(program.fault_free_draws(v));
                        }
                        Err(_) => {
                            fault = true;
                            cursor.poison();
                        }
                    }
                    sent += stats.sent;
                    digest ^= stats.digest;
                }
                assert!(!fault, "trial {t}: fault-free replay must not fault");
                let outcome = if all_accept {
                    RoundOutcome::Accept
                } else {
                    RoundOutcome::Reject
                };
                assert_eq!(&format!("{outcome:?}"), ref_outcome, "trial {t}");
                assert_eq!(sent, *ref_sent, "trial {t}: message count");
                assert_eq!(digest, *ref_digest, "trial {t}: digest");
            }
        }
    }

    #[test]
    fn node_config_argv_roundtrips() {
        let cfg = NodeConfig {
            ctl_addr: "127.0.0.1:9999".into(),
            node: 7,
            num_nodes: 12,
            nanos_per_vns: 250,
            policy: RetryPolicy {
                base_timeout: 1 << 13,
                max_attempts: 9,
                jitter: 0.125,
            },
        };
        let back = NodeConfig::from_args(&cfg.to_args()).expect("parse");
        assert_eq!(back.ctl_addr, cfg.ctl_addr);
        assert_eq!(back.node, cfg.node);
        assert_eq!(back.num_nodes, cfg.num_nodes);
        assert_eq!(back.nanos_per_vns, cfg.nanos_per_vns);
        assert_eq!(back.policy.base_timeout, cfg.policy.base_timeout);
        assert_eq!(back.policy.max_attempts, cfg.policy.max_attempts);
        assert_eq!(back.policy.jitter.to_bits(), cfg.policy.jitter.to_bits());
    }

    #[test]
    fn seeded_churn_schedule_is_deterministic_and_bounded() {
        let nodes = [1, 2, 3];
        let a = ChurnSchedule::seeded_kills(42, 1000, &nodes, 8, Duration::from_millis(50));
        let b = ChurnSchedule::seeded_kills(42, 1000, &nodes, 8, Duration::from_millis(50));
        assert_eq!(a.events().len(), 8);
        for (x, y) in a.events().iter().zip(b.events().iter()) {
            let (
                ChurnEvent::Kill {
                    at_trial: ta,
                    node: na,
                    restart_delay: da,
                },
                ChurnEvent::Kill {
                    at_trial: tb,
                    node: nb,
                    restart_delay: db,
                },
            ) = (x, y)
            else {
                panic!("seeded_kills must emit kill events");
            };
            assert_eq!((ta, na, da), (tb, nb, db));
            assert!((1..1000).contains(ta), "offset in [1, trials)");
            assert!(nodes.contains(na));
            assert!(*da <= Duration::from_millis(50));
        }
        let c = ChurnSchedule::seeded_kills(43, 1000, &nodes, 8, Duration::from_millis(50));
        assert_ne!(
            a.events()
                .iter()
                .map(ChurnEvent::at_trial)
                .collect::<Vec<_>>(),
            c.events()
                .iter()
                .map(ChurnEvent::at_trial)
                .collect::<Vec<_>>(),
            "different seeds must give different schedules"
        );
    }
}
