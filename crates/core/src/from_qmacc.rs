//! dQMA protocols from QMA communication protocols (Section 7 of the paper):
//! Algorithm 10 / Theorem 42, the dQMAsep construction via the LSD problem
//! (Theorem 46), and Proposition 47.
//!
//! Given a QMA one-way communication protocol in purified form (Merlin →
//! Alice → Bob), the path protocol works like the EQ chain except that the
//! left extremity's state is produced by applying Alice's unitary to the
//! Merlin proof it received, and the right extremity runs Bob's POVM. Since
//! the soundness analysis of the chain never used anything about the boundary
//! state beyond Bob's acceptance of it, the whole Section 3.2 machinery
//! carries over (Lemma 43).

use crate::chain::{SeparableChainProof, SwapTestChain};
use crate::eq_path::scale_costs;
use commproto::qma::{QmaCommSpec, QmaOneWayProtocol};
use netsim::{CostTracker, ProtocolCosts};
use qsim::PureState;

/// The path protocol `P_QMAcc` of Algorithm 10, built from a QMA one-way
/// protocol `Q`.
#[derive(Clone, Debug)]
pub struct QmaccPathProtocol<Q> {
    qma: Q,
    r: usize,
    repetitions: usize,
}

impl<Q: QmaOneWayProtocol> QmaccPathProtocol<Q> {
    /// Builds the protocol on a path of length `r` with the paper's repetition
    /// count.
    pub fn new(qma: Q, r: usize) -> Self {
        QmaccPathProtocol {
            qma,
            r,
            repetitions: SwapTestChain::paper_repetitions(r),
        }
    }

    /// Overrides the repetition count (for exact small simulations).
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        self.repetitions = repetitions;
        self
    }

    /// The underlying QMA one-way protocol.
    pub fn qma(&self) -> &Q {
        &self.qma
    }

    /// Path length.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// The state the left extremity forwards when Merlin sends `proof0`:
    /// `U_x (|proof0> ⊗ |0…0>)`.
    pub fn left_state(&self, x: &Q::Input, proof0: &PureState) -> PureState {
        assert_eq!(
            proof0.dim(),
            self.qma.proof_dim(),
            "proof dimension mismatch"
        );
        let ancilla = PureState::single(self.qma.ancilla_dim(), 0);
        let mut joint = proof0.tensor(&ancilla).regroup(&[self.qma.message_dim()]);
        joint.apply_unitary(&[0], &self.qma.alice_unitary(x));
        joint
    }

    /// The SWAP-test chain induced by the inputs and the proof Merlin sends to
    /// the left extremity.
    pub fn chain(&self, x: &Q::Input, y: &Q::Input, proof0: &PureState) -> SwapTestChain {
        SwapTestChain::new(self.r, self.left_state(x, proof0), self.qma.bob_effect(y))
    }

    /// Single-repetition acceptance when Merlin sends `proof0` to the left
    /// extremity and the given separable proof to the intermediate nodes.
    pub fn single_round_acceptance(
        &self,
        x: &Q::Input,
        y: &Q::Input,
        proof0: &PureState,
        chain_proof: &SeparableChainProof,
    ) -> f64 {
        self.chain(x, y, proof0).acceptance_separable(chain_proof)
    }

    /// Completeness witness: the honest Merlin proof at the left extremity and
    /// honest relaying everywhere else. Equals the underlying protocol's
    /// honest acceptance probability (all SWAP tests pass with certainty).
    pub fn completeness(&self, x: &Q::Input, y: &Q::Input) -> f64 {
        let proof0 = self.qma.honest_proof(x, y);
        let chain = self.chain(x, y, &proof0);
        chain.acceptance_separable(&chain.honest_proof())
    }

    /// The best acceptance a prover can reach on `(x, y)` by sending the
    /// **optimal** proof to the left extremity and relaying it honestly — the
    /// natural strongest separable strategy.
    pub fn best_relaying_acceptance(&self, x: &Q::Input, y: &Q::Input) -> f64 {
        // The optimal boundary proof is the top eigenvector of the per-pair
        // acceptance operator of the underlying QMA protocol; relaying it
        // honestly makes every SWAP test pass, so the acceptance equals the
        // underlying protocol's optimal acceptance.
        self.qma.optimal_accept_probability(x, y)
    }

    /// Acceptance of the repeated protocol under a fixed per-repetition
    /// acceptance probability.
    pub fn repeated_acceptance(&self, single: f64) -> f64 {
        SwapTestChain::repeated_soundness(single, self.repetitions)
    }

    /// Cost summary (Theorem 42): the left extremity receives the
    /// `γ`-qubit Merlin proof, the intermediate nodes receive two
    /// `(γ + µ)`-qubit registers, everything repeated `O(r²)` times.
    pub fn costs(&self) -> ProtocolCosts {
        let gamma = self.qma.proof_qubits() as u64;
        let message = self.qma.comm_qubits() as u64;
        let mut t = CostTracker::new();
        t.record_proof(0, gamma);
        for j in 1..self.r {
            t.record_proof(j, 2 * message);
        }
        for j in 0..self.r {
            t.record_message(j, j + 1, message);
        }
        t.set_rounds(1);
        scale_costs(&t.summary(), self.repetitions as u64)
    }

    /// The paper's bound on the local proof/message size of Theorem 42:
    /// `O(r²·(γ + µ)·log(n + r))` (constant 1).
    pub fn paper_local_cost(n: usize, r: usize, gamma: usize, mu: usize) -> f64 {
        (r * r * (gamma + mu)) as f64 * ((n + r) as f64).log2().max(1.0)
    }
}

/// Cost of the dQMAsep protocol obtained from **any** dQMA protocol on a path
/// via the LSD-completeness route (Theorem 46): a dQMA protocol of total cost
/// `C = Σ c(v_j) + min_j m(v_j, v_{j+1})` yields a 1-round dQMAsep protocol
/// with local proof and message size `Õ(r²·C²)`.
pub fn dqmasep_from_dqma_local_cost(r: usize, total_cost: f64) -> f64 {
    let c = total_cost.max(1.0);
    (r * r) as f64 * c * c * c.log2().max(1.0)
}

/// Cost of the dQMAsep protocol for a function with a QMA* communication
/// protocol of cost `C` (Proposition 47): `O(r²·log r·poly(C))`; the
/// polynomial is taken to be `C²` as in the LSD route.
pub fn dqmasep_from_qmacc_local_cost(r: usize, spec: &QmaCommSpec) -> f64 {
    let c = spec.costs.qma_simulation_cost().max(1) as f64;
    (r * r) as f64 * (r as f64).log2().max(1.0) * c * c
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::bitstring::BitString;
    use commproto::fingerprint::FingerprintScheme;
    use commproto::lsd::{LsdInstance, LsdQmaOneWay};
    use commproto::one_way::EqOneWay;
    use commproto::qma::{OneWayAsQma, QmaCosts};

    #[test]
    fn lsd_yes_instances_are_accepted_with_high_probability() {
        let qma = LsdQmaOneWay::new(4);
        let proto = QmaccPathProtocol::new(qma, 3).with_repetitions(2);
        let inst = LsdInstance::random(4, 1, true, 5);
        let c = proto.completeness(&inst.v1, &inst.v2);
        assert!(c >= 0.98 - 1e-9, "completeness {c}");
    }

    #[test]
    fn lsd_no_instances_are_rejected_even_with_optimal_relaying() {
        let qma = LsdQmaOneWay::new(4);
        let proto = QmaccPathProtocol::new(qma, 3).with_repetitions(2);
        let inst = LsdInstance::random(4, 1, false, 9);
        let best = proto.best_relaying_acceptance(&inst.v1, &inst.v2);
        assert!(best <= 0.0361 + 1e-9, "best relaying acceptance {best}");
        assert!(proto.repeated_acceptance(best) <= best);
    }

    #[test]
    fn eq_as_qma_one_way_reproduces_the_eq_chain_behaviour() {
        let qma = OneWayAsQma::new(EqOneWay::new(FingerprintScheme::small(3, 4)));
        let proto = QmaccPathProtocol::new(qma, 2).with_repetitions(2);
        let x = BitString::from_u64(5, 3);
        let y = BitString::from_u64(2, 3);
        assert!((proto.completeness(&x, &x) - 1.0).abs() < 1e-9);
        // Honest relaying of the (trivial) proof on a no-instance is caught by Bob.
        let p = proto.best_relaying_acceptance(&x, &y);
        assert!(p < 1.0 - 1e-3, "acceptance {p}");
    }

    #[test]
    fn cheating_the_chain_does_not_help_on_no_instances() {
        // Even a prover that manipulates the intermediate registers cannot beat
        // the single-round paper bound.
        let qma = LsdQmaOneWay::new(4);
        let proto = QmaccPathProtocol::new(qma, 3).with_repetitions(1);
        let inst = LsdInstance::random(4, 1, false, 2);
        let proof0 = proto.qma().honest_proof(&inst.v1, &inst.v2);
        let chain = proto.chain(&inst.v1, &inst.v2, &proof0);
        let target = proto.left_state(&inst.v1, &proof0);
        let cheat =
            crate::chain::cheating_proof(&chain, &target, crate::chain::ChainCheat::Interpolate);
        let p = proto.single_round_acceptance(&inst.v1, &inst.v2, &proof0, &cheat);
        assert!(
            p <= SwapTestChain::paper_soundness_bound(3) + 1e-9,
            "acceptance {p}"
        );
    }

    #[test]
    fn costs_follow_theorem_42() {
        let qma = LsdQmaOneWay::new(16);
        let proto = QmaccPathProtocol::new(qma, 4);
        let c = proto.costs();
        assert!(c.local_proof_qubits > 0);
        assert!(c.local_message_qubits > 0);
        // Doubling r roughly quadruples the local cost through the repetitions.
        let c2 = QmaccPathProtocol::new(LsdQmaOneWay::new(16), 8).costs();
        let ratio = c2.local_proof_qubits as f64 / c.local_proof_qubits as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn theorem_46_and_proposition_47_cost_formulas() {
        assert!(dqmasep_from_dqma_local_cost(4, 10.0) > dqmasep_from_dqma_local_cost(2, 10.0));
        assert!(dqmasep_from_dqma_local_cost(4, 20.0) > dqmasep_from_dqma_local_cost(4, 10.0));
        let spec = QmaCommSpec {
            name: "f".into(),
            costs: QmaCosts {
                proof_to_alice: 3,
                proof_to_bob: 1,
                communication: 4,
            },
            rounds: 2,
        };
        assert!(dqmasep_from_qmacc_local_cost(8, &spec) > dqmasep_from_qmacc_local_cost(4, &spec));
    }
}
