//! dQMA protocols for the Hamming distance and arbitrary `∀t f` lifts on
//! general networks (Section 6 of the paper, Algorithm 9, Theorems 30 and 32).
//!
//! Any two-party function `f` with an efficient one-way quantum protocol
//! lifts to a dQMA protocol for `∀t f` (all ordered pairs of terminals
//! satisfy `f`): for every terminal `u_j` the prover helps distribute the
//! one-way message `|ψ(x_j)>` from `u_j` down a spanning tree rooted at `u_j`;
//! intermediate nodes SWAP-test and forward, and every leaf terminal runs
//! Bob's measurement on the received state against its own input. Running the
//! `t` trees in parallel covers all ordered pairs, which is what the soundness
//! argument needs. The Hamming-distance protocol (Theorem 30) is the special
//! case `f = HAM≤d`.

use crate::chain::{cheating_proof, ChainCheat, SwapTestChain};
use crate::eq_path::scale_costs;
use commproto::bitstring::BitString;
use commproto::one_way::OneWayProtocol;
use netsim::{CostTracker, ProtocolCosts};

/// The `∀t f` protocol on a star-of-paths (spider) network: `t` terminals,
/// each at distance `leg_len` from a common centre, so every ordered pair of
/// terminals is connected by a path of length `2·leg_len` through the centre.
#[derive(Clone, Debug)]
pub struct ForAllProtocol<P> {
    one_way: P,
    t: usize,
    leg_len: usize,
    repetitions: usize,
}

impl<P: OneWayProtocol> ForAllProtocol<P> {
    /// Builds the protocol from a one-way protocol for `f`, with the paper's
    /// `O(r²)` repetition count for path length `2·leg_len`.
    pub fn new(one_way: P, t: usize, leg_len: usize) -> Self {
        assert!(t >= 2, "need at least two terminals");
        let r = 2 * leg_len.max(1);
        ForAllProtocol {
            one_way,
            t,
            leg_len: leg_len.max(1),
            repetitions: SwapTestChain::paper_repetitions(r),
        }
    }

    /// Overrides the repetition count (for exact small simulations).
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        self.repetitions = repetitions;
        self
    }

    /// The underlying one-way protocol.
    pub fn one_way(&self) -> &P {
        &self.one_way
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.t
    }

    /// The path length between any ordered pair of terminals.
    pub fn pair_path_length(&self) -> usize {
        2 * self.leg_len
    }

    /// Number of parallel repetitions per tree.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The SWAP-test chain carrying the root terminal `j`'s one-way message to
    /// leaf terminal `k` (the root-to-leaf path of tree `T_j`).
    pub fn pair_chain(&self, inputs: &[BitString], j: usize, k: usize) -> SwapTestChain {
        SwapTestChain::new(
            self.pair_path_length(),
            self.one_way.alice_message(&inputs[j]),
            self.one_way.bob_effect(&inputs[k]),
        )
    }

    /// Single-repetition acceptance probability when the prover plays `cheat`
    /// independently on every root-to-leaf path of every tree. Paths of
    /// different trees (and different leaves of the same tree) use disjoint
    /// proof registers, so the joint acceptance factorises.
    pub fn single_round_acceptance(&self, inputs: &[BitString], cheat: ChainCheat) -> f64 {
        assert_eq!(inputs.len(), self.t, "one input per terminal required");
        let mut prob = 1.0;
        for j in 0..self.t {
            for k in 0..self.t {
                if j == k {
                    continue;
                }
                let chain = self.pair_chain(inputs, j, k);
                let proof = match cheat {
                    // The honest prover relays the root's message unchanged.
                    ChainCheat::AllLeft => chain.honest_proof(),
                    _ => {
                        let target = self.one_way.alice_message(&inputs[k]);
                        cheating_proof(&chain, &target, cheat)
                    }
                };
                prob *= chain.acceptance_separable(&proof);
                if prob < 1e-15 {
                    return 0.0;
                }
            }
        }
        prob
    }

    /// Completeness witness: honest relaying on every tree. For a one-way
    /// protocol with completeness `c` this is `c^{t(t−1)}` per repetition
    /// (exactly 1 for the fingerprint EQ protocol).
    pub fn completeness(&self, inputs: &[BitString]) -> f64 {
        self.single_round_acceptance(inputs, ChainCheat::AllLeft)
    }

    /// Acceptance of the repeated protocol under independent per-repetition
    /// strategies.
    pub fn repeated_acceptance(&self, inputs: &[BitString], cheat: ChainCheat) -> f64 {
        SwapTestChain::repeated_soundness(
            self.single_round_acceptance(inputs, cheat),
            self.repetitions,
        )
    }

    /// Cost summary (Theorem 32): every node participates in up to `t` trees,
    /// each carrying messages of `s = BQP¹(f)`-qubit registers repeated
    /// `O(r²)` times — local proof and message `O(t²·r²·s·log(n+t+r))`-shaped.
    pub fn costs(&self) -> ProtocolCosts {
        let q = self.one_way.message_qubits() as u64;
        let mut tracker = CostTracker::new();
        // Node ids on the spider: 0 = centre; leg k occupies 1+k·leg_len ..= (k+1)·leg_len.
        let node_on_leg = |leg: usize, step: usize| 1 + leg * self.leg_len + step;
        for tree_root in 0..self.t {
            for leaf in 0..self.t {
                if leaf == tree_root {
                    continue;
                }
                // Path: root leg (up) + centre + leaf leg (down).
                let mut path = Vec::new();
                for step in (0..self.leg_len).rev() {
                    path.push(node_on_leg(tree_root, step));
                }
                path.push(0);
                for step in 0..self.leg_len {
                    path.push(node_on_leg(leaf, step));
                }
                // Interior nodes of the path receive two registers.
                for w in 0..path.len() {
                    if w > 0 {
                        tracker.record_message(path[w - 1], path[w], q);
                    }
                    if w > 0 && w < path.len() - 1 {
                        tracker.record_proof(path[w], 2 * q);
                    }
                }
            }
        }
        tracker.set_rounds(1);
        scale_costs(&tracker.summary(), self.repetitions as u64)
    }

    /// The paper's local cost bound `O(t²·r²·s·log(n+t+r))` (Theorem 32,
    /// constant 1), where `s` is the one-way message size.
    pub fn paper_local_cost(n: usize, r: usize, t: usize, s: usize) -> f64 {
        (t * t * r * r * s) as f64 * ((n + t + r) as f64).log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::fingerprint::FingerprintScheme;
    use commproto::one_way::{EqOneWay, ExactHammingOneWay};
    use commproto::problems::{HammingMulti, MultiPartyFunction};

    fn inputs(vals: &[u64], n: usize) -> Vec<BitString> {
        vals.iter().map(|&v| BitString::from_u64(v, n)).collect()
    }

    #[test]
    fn eq_lift_has_perfect_completeness() {
        let proto = ForAllProtocol::new(EqOneWay::new(FingerprintScheme::small(4, 3)), 3, 1)
            .with_repetitions(2);
        let ins = inputs(&[9, 9, 9], 4);
        assert!((proto.completeness(&ins) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eq_lift_rejects_a_differing_terminal() {
        let proto = ForAllProtocol::new(EqOneWay::new(FingerprintScheme::small(4, 3)), 3, 1)
            .with_repetitions(4);
        let ins = inputs(&[9, 9, 6], 4);
        let single = proto.single_round_acceptance(&ins, ChainCheat::Interpolate);
        assert!(single < 1.0 - 1e-4, "single-round acceptance {single}");
        let repeated = proto.repeated_acceptance(&ins, ChainCheat::Interpolate);
        assert!(repeated < single);
    }

    #[test]
    fn hamming_lift_accepts_close_inputs_and_rejects_far_ones() {
        // Exact HAM<=1 one-way protocol on 3-bit inputs, three terminals.
        let proto =
            ForAllProtocol::new(ExactHammingOneWay { n: 3, d: 1 }, 3, 1).with_repetitions(4);
        let close = inputs(&[0b101, 0b100, 0b101], 3);
        assert!(HammingMulti { n: 3, t: 3, d: 1 }.eval(&close));
        assert!((proto.completeness(&close) - 1.0).abs() < 1e-9);

        let far = inputs(&[0b101, 0b010, 0b101], 3);
        assert!(!HammingMulti { n: 3, t: 3, d: 1 }.eval(&far));
        let p = proto.single_round_acceptance(&far, ChainCheat::Interpolate);
        assert!(p < 1.0 - 1e-4, "acceptance {p}");
    }

    #[test]
    fn costs_scale_with_terminal_count_squared() {
        let small = ForAllProtocol::new(ExactHammingOneWay { n: 4, d: 1 }, 2, 2).costs();
        let large = ForAllProtocol::new(ExactHammingOneWay { n: 4, d: 1 }, 4, 2).costs();
        // The centre node sits on every tree/leaf pair, so its proof grows ~t².
        let ratio = large.local_proof_qubits as f64 / small.local_proof_qubits as f64;
        assert!(ratio > 3.0, "t-scaling ratio {ratio}");
        assert!(
            ForAllProtocol::<ExactHammingOneWay>::paper_local_cost(8, 4, 4, 3)
                > ForAllProtocol::<ExactHammingOneWay>::paper_local_cost(8, 4, 2, 3)
        );
    }
}
