//! Cheating-prover optimisation: how close can a prover actually get to the
//! paper's `1 − 4/(81·r²)` soundness bound?
//!
//! Every suite before this module exercised honest provers or a *fixed*
//! wrong-input strategy ([`crate::chain::ChainCheat`]). Here the prover is
//! adversarially optimised, two ways:
//!
//! * **Entangled (spectral) optimum** — the exact maximum acceptance over
//!   *all* proofs is the top eigenvalue of the materialised acceptance
//!   operator ([`SwapTestChain::acceptance_operator`]). [`spectral_optimum`]
//!   computes it with the hardened power iteration
//!   ([`qsim::linalg::eigen::top_eigenpair`]) on the operator's Hermitian
//!   part — feasible while the joint dimension `d^{2(r−1)}` stays within the
//!   operator cap (1024, i.e. `r ≤ 6` at `d = 2`).
//! * **Separable coordinate ascent** — for the r-range the spectral method
//!   cannot reach (`r ∈ {8, 16, 32, …}`), [`optimise_cheat`] ascends over
//!   per-node product proofs. Conditioned on the symmetrisation coins each
//!   proof register appears in exactly one SWAP-test/boundary factor, so the
//!   round acceptance is a *quadratic form* `⟨v|E|v⟩` in any single register
//!   `v` — with `E` assembled in `O(k)` from prefix/suffix transfer weights
//!   over the round-plan tables — and the optimal update is the top
//!   eigenvector of the `d × d` Hermitian `E`. Each update is exact, so the
//!   ascent is monotone; it converges to a (locally) optimal separable cheat
//!   that dominates every named strategy it is seeded with.
//!
//! The optimised proof is then *fed back through the sampled round engines*
//! ([`SwapTestChain::sample_rounds_with_workers`], lane-batched): a
//! [`SoundnessPoint`] charts measured acceptance (with Wilson interval)
//! against the exact separable optimum, the spectral optimum where
//! available, and the paper bound — the measured-vs-proved table of
//! PAPER.md and `BENCH_adversarial.json`.
//!
//! The exact separable acceptance itself is evaluated in `O(k)` by a 2×2
//! transfer-matrix product over the coin Markov chain ([`exact_acceptance`])
//! instead of the `2^k` pattern enumeration of
//! [`SwapTestChain::acceptance_separable`] — the enumeration survives as the
//! oracle this module's unit tests pin against.

use crate::chain::{
    cheating_proof, ChainCheat, ChainRoundPlan, SeparableChainProof, SwapTestChain,
};
use qsim::linalg::eigen::top_eigenpair;
use qsim::{CMatrix, CVector, Complex, PureState};

/// Tolerance for declaring an ascent sweep converged (absolute acceptance
/// improvement per full sweep).
const ASCENT_TOL: f64 = 1e-12;

/// Hard cap on ascent sweeps; the quadratic updates converge in a handful of
/// sweeps on every instance family the suite runs, so hitting this indicates
/// a cycling pathology and simply returns the best proof found.
const MAX_SWEEPS: usize = 200;

/// Exact acceptance probability of a separable proof, evaluated in `O(k·d)`:
/// compile the proof to round-plan tables and contract the coin Markov chain
/// with a 2-state transfer product instead of enumerating the `2^k`
/// symmetrisation patterns. Agrees with
/// [`SwapTestChain::acceptance_separable`] to floating-point error (pinned
/// by the unit tests) but stays linear in `r`, which is what lets the
/// optimiser track exact acceptances at `r = 32` and beyond.
pub fn exact_acceptance(chain: &SwapTestChain, proof: &SeparableChainProof) -> f64 {
    plan_acceptance(&chain.round_plan(proof))
}

/// The transfer-product contraction over an already-compiled plan's tables.
pub fn plan_acceptance(plan: &ChainRoundPlan) -> f64 {
    let k = plan.num_intermediate();
    if k == 0 {
        return plan.table(0, 0).clamp(0.0, 1.0);
    }
    // w[c] = E over coins c_0..c_{j-1} of the partial product, conditioned on
    // c_j = c; each step folds in the uniform 1/2 coin weight.
    let mut w = [0.5 * plan.table(0, 0), 0.5 * plan.table(0, 2)];
    for j in 1..k {
        w = [
            0.5 * (w[0] * plan.table(j, 0) + w[1] * plan.table(j, 1)),
            0.5 * (w[0] * plan.table(j, 2) + w[1] * plan.table(j, 3)),
        ];
    }
    (w[0] * plan.table(k, 0) + w[1] * plan.table(k, 1)).clamp(0.0, 1.0)
}

/// Result of a cheating-prover optimisation run.
#[derive(Clone, Debug)]
pub struct OptimisedCheat {
    /// The optimised separable proof (one register pair per node).
    pub proof: SeparableChainProof,
    /// Exact acceptance probability of `proof` (via [`exact_acceptance`]).
    pub acceptance: f64,
    /// Full ascent sweeps performed across all seeds.
    pub sweeps: usize,
}

/// SWAP-test acceptance of two unit vectors: `(1 + |⟨a|b⟩|²)/2`.
pub(crate) fn swap_accept(a: &CVector, b: &CVector) -> f64 {
    0.5 * (1.0 + a.inner(b).norm_sqr())
}

/// Coordinate-ascent state: register amplitudes plus the round-plan tables
/// they induce, kept incrementally consistent as registers update.
struct Ascent<'a> {
    chain: &'a SwapTestChain,
    left: CVector,
    /// `states[j][b]` = amplitudes of register `R_{j,b}` (unit norm).
    states: Vec<[CVector; 2]>,
    /// Round-plan tables, `4·(k+1)` entries, same layout as
    /// [`ChainRoundPlan`]: node `j` at coin-pair index `prev + 2·cur`.
    tables: Vec<f64>,
}

impl<'a> Ascent<'a> {
    fn new(chain: &'a SwapTestChain, seed: &SeparableChainProof) -> Self {
        let k = chain.num_intermediate();
        let states: Vec<[CVector; 2]> = seed
            .iter()
            .map(|(a, b)| [a.amplitudes().normalized(), b.amplitudes().normalized()])
            .collect();
        let mut s = Ascent {
            chain,
            left: chain.left_state().amplitudes().clone(),
            states,
            tables: vec![0.0; 4 * (k + 1)],
        };
        for j in 0..=k {
            s.refresh_node(j);
        }
        s
    }

    fn k(&self) -> usize {
        self.states.len()
    }

    #[inline]
    fn table(&self, j: usize, idx: usize) -> f64 {
        self.tables[4 * j + idx]
    }

    fn boundary_accept(&self, v: &CVector) -> f64 {
        self.chain
            .right_effect()
            .quadratic_form(v)
            .re
            .clamp(0.0, 1.0)
    }

    /// Recomputes all four table entries of node `j` (`j = k` is the
    /// boundary pseudo-node) from the current register states.
    fn refresh_node(&mut self, j: usize) {
        let k = self.k();
        if k == 0 {
            let b = self.boundary_accept(&self.left.clone());
            self.tables[..4].fill(b);
            return;
        }
        if j == 0 {
            for cur in 0..2 {
                let t = swap_accept(&self.left, &self.states[0][cur]);
                self.tables[2 * cur] = t;
                self.tables[2 * cur + 1] = t;
            }
        } else if j < k {
            for prev in 0..2 {
                for cur in 0..2 {
                    // Node j tests the register node j−1 forwarded (its coin
                    // complement) against node j's kept register (its coin).
                    self.tables[4 * j + prev + 2 * cur] =
                        swap_accept(&self.states[j - 1][1 - prev], &self.states[j][cur]);
                }
            }
        } else {
            for prev in 0..2 {
                let t = self.boundary_accept(&self.states[k - 1][1 - prev]);
                self.tables[4 * k + prev] = t;
                self.tables[4 * k + prev + 2] = t;
            }
        }
    }

    /// `prefix[j][c]`: expectation over `c_0..c_{j−1}` (uniform coins, 1/2
    /// weight folded in) of the product of node factors `0..=j`, conditioned
    /// on `c_j = c`.
    fn prefixes(&self) -> Vec<[f64; 2]> {
        let k = self.k();
        let mut p = Vec::with_capacity(k);
        p.push([0.5 * self.table(0, 0), 0.5 * self.table(0, 2)]);
        for j in 1..k {
            let prev = p[j - 1];
            p.push([
                0.5 * (prev[0] * self.table(j, 0) + prev[1] * self.table(j, 1)),
                0.5 * (prev[0] * self.table(j, 2) + prev[1] * self.table(j, 3)),
            ]);
        }
        p
    }

    /// `suffix[j][c]`: expectation over `c_{j+1}..c_{k−1}` of the product of
    /// node factors `j+1..=k` (including the boundary), conditioned on
    /// `c_j = c`.
    fn suffixes(&self) -> Vec<[f64; 2]> {
        let k = self.k();
        let mut s = vec![[0.0; 2]; k];
        s[k - 1] = [self.table(k, 0), self.table(k, 1)];
        for j in (0..k - 1).rev() {
            let next = s[j + 1];
            s[j] = [
                0.5 * (self.table(j + 1, 0) * next[0] + self.table(j + 1, 2) * next[1]),
                0.5 * (self.table(j + 1, 1) * next[0] + self.table(j + 1, 3) * next[1]),
            ];
        }
        s
    }

    /// Current exact acceptance (same contraction as [`plan_acceptance`]).
    fn acceptance(&self) -> f64 {
        let k = self.k();
        if k == 0 {
            return self.table(0, 0).clamp(0.0, 1.0);
        }
        let mut w = [0.5 * self.table(0, 0), 0.5 * self.table(0, 2)];
        for j in 1..k {
            w = [
                0.5 * (w[0] * self.table(j, 0) + w[1] * self.table(j, 1)),
                0.5 * (w[0] * self.table(j, 2) + w[1] * self.table(j, 3)),
            ];
        }
        (w[0] * self.table(k, 0) + w[1] * self.table(k, 1)).clamp(0.0, 1.0)
    }

    /// `E += weight · (I + s·s†)/2` — the SWAP-test effect against a fixed
    /// unit vector `s`, as seen by the free register.
    fn add_swap_effect(e: &mut CMatrix, s: &CVector, weight: f64) {
        let d = s.dim();
        let half = 0.5 * weight;
        for i in 0..d {
            e.add_at(i, i, Complex::real(half));
            let si = s.at(i).scale(half);
            for j in 0..d {
                e.add_at(i, j, si * s.at(j).conj());
            }
        }
    }

    /// Replaces register `(m, b)` with the top eigenvector of its effective
    /// acceptance quadratic form, holding every other register fixed.
    /// Exact maximisation, so the global acceptance never decreases.
    fn update_register(&mut self, m: usize, b: usize) {
        let k = self.k();
        let d = self.chain.register_dim();
        let prefix = self.prefixes();
        let suffix = self.suffixes();
        let mut e = CMatrix::zeros(d, d);

        // Kept branch (c_m = b): node m's factor is the SWAP effect of the
        // state sent into node m, weighted by everything before and after.
        // The sent state depends on c_{m−1}; its uniform 1/2 weight is the
        // one prefix[m] would have folded in.
        let after = suffix[m][b];
        if m == 0 {
            Self::add_swap_effect(&mut e, &self.left.clone(), 0.5 * after);
        } else {
            for (prev, &pw) in prefix[m - 1].iter().enumerate() {
                let w = 0.5 * pw * after;
                let sent = self.states[m - 1][1 - prev].clone();
                Self::add_swap_effect(&mut e, &sent, w);
            }
        }

        // Forwarded branch (c_m = 1−b): node m's own factor uses the kept
        // register R_{m,1−b} (a scalar w.r.t. v = R_{m,b}); v is consumed by
        // node m+1's SWAP test — or by the boundary effect when m = k−1.
        let before = if m == 0 {
            // prefix[0] already carries node 0's factor, which involves the
            // kept register, not v: reuse it directly.
            prefix[0][1 - b]
        } else {
            prefix[m][1 - b]
        };
        if m + 1 < k {
            for (cur, &sw) in suffix[m + 1].iter().enumerate() {
                let w = 0.5 * before * sw;
                let kept = self.states[m + 1][cur].clone();
                Self::add_swap_effect(&mut e, &kept, w);
            }
        } else {
            // v is the register the right extremity measures.
            let eff = self.chain.right_effect();
            for i in 0..d {
                for j in 0..d {
                    e.add_at(i, j, eff.at(i, j).scale(before));
                }
            }
        }

        let (_, v) = top_eigenpair(&e, 1e-13, 2000);
        self.states[m][b] = v.normalized();
        self.refresh_node(m);
        self.refresh_node(m + 1);
    }

    fn into_proof(self) -> SeparableChainProof {
        let d = self.chain.register_dim();
        self.states
            .into_iter()
            .map(|[a, b]| {
                (
                    PureState::from_amplitudes(&[d], a),
                    PureState::from_amplitudes(&[d], b),
                )
            })
            .collect()
    }
}

/// Runs the coordinate ascent from an explicit seed proof. Returns the
/// ascended proof with its exact acceptance; the acceptance is monotone
/// non-decreasing in the seed's.
///
/// # Panics
///
/// Panics if the seed proof does not match the chain (wrong node count or
/// register dimension).
pub fn ascend_cheat(chain: &SwapTestChain, seed: &SeparableChainProof) -> OptimisedCheat {
    // Validate through the plan compiler (also the oracle for the exact
    // acceptance the caller sees).
    let start = exact_acceptance(chain, seed);
    if chain.num_intermediate() == 0 {
        return OptimisedCheat {
            proof: seed.clone(),
            acceptance: start,
            sweeps: 0,
        };
    }
    let mut ascent = Ascent::new(chain, seed);
    let mut current = ascent.acceptance();
    let mut sweeps = 0;
    while sweeps < MAX_SWEEPS {
        for m in 0..ascent.k() {
            ascent.update_register(m, 0);
            ascent.update_register(m, 1);
        }
        sweeps += 1;
        let next = ascent.acceptance();
        let gain = next - current;
        current = next;
        if gain < ASCENT_TOL {
            break;
        }
    }
    debug_assert!(
        current >= start - 1e-9,
        "ascent decreased acceptance: {start} -> {current}"
    );
    OptimisedCheat {
        proof: ascent.into_proof(),
        acceptance: current,
        sweeps,
    }
}

/// Optimises a cheating prover for the chain: seeds the coordinate ascent
/// from each named strategy of [`ChainCheat`] (the interpolation family is
/// the one that saturates `1 − Θ(1/r)` separably) and returns the best
/// ascended proof. The "right state" the named strategies interpolate
/// towards is the top eigenvector of the boundary effect — the state the
/// right extremity most wants to see.
pub fn optimise_cheat(chain: &SwapTestChain) -> OptimisedCheat {
    let (_, v) = top_eigenpair(chain.right_effect(), 1e-12, 5000);
    let right = PureState::from_amplitudes(&[chain.register_dim()], v.normalized());
    let mut best: Option<OptimisedCheat> = None;
    let mut total_sweeps = 0;
    for strategy in [
        ChainCheat::Interpolate,
        ChainCheat::AllRight,
        ChainCheat::AllLeft,
    ] {
        let seed = cheating_proof(chain, &right, strategy);
        let run = ascend_cheat(chain, &seed);
        total_sweeps += run.sweeps;
        if best.as_ref().is_none_or(|b| run.acceptance > b.acceptance) {
            best = Some(run);
        }
    }
    let mut best = best.expect("at least one seed strategy");
    best.sweeps = total_sweeps;
    best
}

/// Exact entangled-prover optimum via the hardened power iteration on the
/// Hermitian part of the materialised acceptance operator, or `None` when
/// the joint proof dimension `d^{2(r−1)}` exceeds the operator cap (1024).
/// Equals [`SwapTestChain::optimal_acceptance`] (dense Jacobi) to numerical
/// precision, at a fraction of the cost on the larger feasible instances.
pub fn spectral_optimum(chain: &SwapTestChain) -> Option<f64> {
    let k = chain.num_intermediate();
    if k == 0 {
        // No proof registers: acceptance is fixed by the boundary.
        return Some(
            chain
                .right_effect()
                .quadratic_form(chain.left_state().amplitudes())
                .re
                .clamp(0.0, 1.0),
        );
    }
    let total = (chain.register_dim() as u128).checked_pow(2 * k as u32)?;
    if total > 1024 {
        return None;
    }
    let a = chain.acceptance_operator();
    let herm = (&a + &a.adjoint()).scale(Complex::real(0.5));
    let (lam, _) = top_eigenpair(&herm, 1e-11, 50_000);
    Some(lam.clamp(0.0, 1.0))
}

/// One measured-vs-proved soundness point: the optimised cheat run back
/// through the lane-batched sampled round engine.
#[derive(Clone, Debug)]
pub struct SoundnessPoint {
    /// Path length of the instance.
    pub r: usize,
    /// Register dimension.
    pub dim: usize,
    /// Exact acceptance of the ascent-optimised separable cheat.
    pub separable_opt: f64,
    /// Exact entangled optimum where the spectral method is feasible.
    pub spectral_opt: Option<f64>,
    /// Measured acceptance rate of the optimised proof over `trials` rounds.
    pub measured: f64,
    /// Wilson 99.9999%-ish interval (`z = 5`) around `measured`.
    pub wilson: (f64, f64),
    /// The paper's single-round soundness bound `1 − 4/(81·r²)`.
    pub paper_bound: f64,
    /// Rounds sampled.
    pub trials: u64,
    /// Ascent sweeps spent.
    pub sweeps: usize,
}

/// Optimises the cheat for `chain` and samples it through the batched round
/// engine: the chart row of the measured-vs-proved table.
pub fn soundness_point(chain: &SwapTestChain, trials: u64, seed: u64) -> SoundnessPoint {
    let opt = optimise_cheat(chain);
    let report = chain.sample_rounds(&opt.proof, trials, seed);
    SoundnessPoint {
        r: chain.path_length(),
        dim: chain.register_dim(),
        separable_opt: opt.acceptance,
        spectral_opt: spectral_optimum(chain),
        measured: report.acceptance_rate(),
        wilson: report.wilson_interval(5.0),
        paper_bound: SwapTestChain::paper_soundness_bound(chain.path_length()),
        trials,
        sweeps: opt.sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::RandomStateGenerator;

    fn orthogonal_chain(r: usize, dim: usize) -> (SwapTestChain, PureState) {
        let left = PureState::single(dim, 0);
        let right_state = PureState::single(dim, 1);
        let effect = CMatrix::projector(right_state.amplitudes());
        (SwapTestChain::new(r, left, effect), right_state)
    }

    fn random_proof(chain: &SwapTestChain, seed: u64) -> SeparableChainProof {
        let mut gen = RandomStateGenerator::new(seed);
        let d = chain.register_dim();
        (0..chain.num_intermediate())
            .map(|_| (gen.random_pure(&[d]), gen.random_pure(&[d])))
            .collect()
    }

    #[test]
    fn transfer_product_matches_pattern_enumeration() {
        for dim in [2usize, 3] {
            for r in 1..=6 {
                let (chain, _) = orthogonal_chain(r, dim);
                for seed in 0..3u64 {
                    let proof = random_proof(&chain, 10 * r as u64 + seed);
                    let fast = exact_acceptance(&chain, &proof);
                    let slow = chain.acceptance_separable(&proof);
                    assert!(
                        (fast - slow).abs() < 1e-12,
                        "r={r} d={dim} seed={seed}: {fast} vs {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn ascent_dominates_every_named_strategy() {
        for r in [2usize, 4, 8, 16] {
            let (chain, right_state) = orthogonal_chain(r, 2);
            let opt = optimise_cheat(&chain);
            for strategy in [
                ChainCheat::AllLeft,
                ChainCheat::AllRight,
                ChainCheat::Interpolate,
            ] {
                let named = cheating_proof(&chain, &right_state, strategy);
                let named_acc = exact_acceptance(&chain, &named);
                assert!(
                    opt.acceptance >= named_acc - 1e-10,
                    "r={r} {strategy:?}: ascent {} < named {named_acc}",
                    opt.acceptance
                );
            }
            // The paper bound holds for the separable optimum too.
            assert!(opt.acceptance <= SwapTestChain::paper_soundness_bound(r) + 1e-9);
        }
    }

    #[test]
    fn ascent_from_random_seeds_is_monotone() {
        let (chain, _) = orthogonal_chain(5, 2);
        for seed in 0..4u64 {
            let start = random_proof(&chain, 100 + seed);
            let start_acc = exact_acceptance(&chain, &start);
            let run = ascend_cheat(&chain, &start);
            assert!(
                run.acceptance >= start_acc - 1e-12,
                "seed {seed}: {} < {start_acc}",
                run.acceptance
            );
            assert!((0.0..=1.0).contains(&run.acceptance));
        }
    }

    #[test]
    fn r2_separable_optimum_is_one_half() {
        // Orthogonal boundaries at r = 2: one node, coin c. Sending
        // (|0⟩, |1⟩) accepts with probability 1 at c = 0 and 0·(1/2) at
        // c = 1 — average 1/2, and no separable pair does better.
        let (chain, _) = orthogonal_chain(2, 2);
        let opt = optimise_cheat(&chain);
        assert!(
            (opt.acceptance - 0.5).abs() < 1e-9,
            "got {}",
            opt.acceptance
        );
    }

    #[test]
    fn separable_ascent_respects_the_spectral_optimum() {
        for r in [2usize, 3, 4] {
            let (chain, _) = orthogonal_chain(r, 2);
            let spectral = spectral_optimum(&chain).expect("small instance");
            let opt = optimise_cheat(&chain);
            assert!(
                opt.acceptance <= spectral + 1e-9,
                "r={r}: separable {} exceeds entangled {spectral}",
                opt.acceptance
            );
            // Power iteration agrees with the dense Jacobi path.
            let dense = chain.optimal_acceptance();
            assert!(
                (spectral - dense).abs() < 1e-8,
                "r={r}: power {spectral} vs jacobi {dense}"
            );
            // And the bound of the paper holds.
            assert!(spectral <= SwapTestChain::paper_soundness_bound(r) + 1e-9);
        }
    }

    #[test]
    fn spectral_optimum_is_none_beyond_the_operator_cap() {
        let (chain, _) = orthogonal_chain(8, 2);
        assert!(spectral_optimum(&chain).is_none());
        let (tiny, _) = orthogonal_chain(1, 2);
        // k = 0: fixed by the boundary — orthogonal states never accept.
        assert_eq!(spectral_optimum(&tiny), Some(0.0));
    }

    #[test]
    fn soundness_point_is_deterministic_and_consistent() {
        let (chain, _) = orthogonal_chain(4, 2);
        let a = soundness_point(&chain, 20_000, 7);
        let b = soundness_point(&chain, 20_000, 7);
        assert_eq!(a.measured, b.measured);
        assert!(a.wilson.0 <= a.measured && a.measured <= a.wilson.1);
        assert!(a.separable_opt <= a.paper_bound + 1e-9);
        let spectral = a.spectral_opt.expect("r=4 d=2 is spectral-feasible");
        assert!(a.separable_opt <= spectral + 1e-9);
    }
}
