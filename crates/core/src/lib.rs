//! # dqma — distributed quantum Merlin–Arthur verification protocols
//!
//! A faithful, executable reproduction of *Hasegawa, Kundu, Nishimura — "On
//! the Power of Quantum Distributed Proofs"* (PODC 2024, arXiv:2403.14108).
//! In a dQMA protocol an untrusted prover sends quantum proofs to the nodes of
//! a network; the nodes exchange messages for a constant number of rounds and
//! each accepts or rejects, so that yes-instances can be made to convince
//! every node while no-instances alarm at least one of them.
//!
//! The crate implements, on top of the exact simulator in [`qsim`], the
//! network substrate in [`netsim`] and the communication-complexity substrate
//! in [`commproto`]:
//!
//! * [`chain`] — the SWAP-test relay chain shared by all path protocols,
//!   including exact separable-proof acceptance and the spectral (optimal
//!   entangled prover) soundness;
//! * [`eq_path`] — the improved EQ protocol `Pπ[k]` on paths (§3.2);
//! * [`eq_tree`] — EQ on general graphs with the permutation test (§3.3,
//!   Theorem 19);
//! * [`relay`] — the relay-point protocol with `Õ(r·n^{2/3})` total proof
//!   (§4.1, Theorem 22);
//! * [`gt`] — the greater-than protocol and its variants (§5.1, Theorem 26);
//! * [`ranking`] — ranking verification (§5.2, Theorem 29);
//! * [`forall`] — the Hamming distance and general `∀t f` lifts (§6,
//!   Theorems 30 and 32);
//! * [`from_qmacc`] — dQMA protocols from QMA one-way communication protocols
//!   and the dQMAsep constructions (§7, Theorems 42 and 46);
//! * [`dma`] — classical dMA baselines and the cut-and-paste fooling attack
//!   behind the `Ω(r·n)` classical lower bound (§4.2);
//! * [`lower_bounds`] — the paper's dQMA lower bounds (§8) as formulas plus
//!   executable attacks;
//! * [`costs`] — the closed-form bounds of Tables 1–3 used by the benchmark
//!   harness;
//! * [`net`] — per-node round executors over the fault-injecting
//!   message-passing transport of [`netsim::transport`]: the four protocol
//!   round paths re-expressed as per-node programs with retry/timeout/
//!   backoff, graceful degradation to [`netsim::RoundOutcome::Aborted`], and
//!   block-deterministic fault-sweep sampling;
//! * [`trials`] — the batched zero-allocation Monte-Carlo trial engine: all
//!   four protocol samplers grow `sample_rounds(n, seed)` batch variants
//!   that prepare the instance once, dispatch fixed-size trial blocks over
//!   the persistent [`qsim::pool`] workers with counter-derived per-block
//!   RNG streams (accept counts bit-identical at any worker count), and
//!   return a [`trials::TrialReport`] with Wilson/Hoeffding intervals and
//!   rounds/sec;
//! * [`service`] — the overload-hardened verification service behind
//!   `dqma-server`/`dqma-cli`: one facade over instance construction and
//!   sampling, with a bounded admission queue (explicit shedding), per-job
//!   deadlines folded into partial reports, a crash-recovery journal built
//!   on the 8192-trial block-determinism contract, shared trial blocks
//!   across same-instance jobs, and a hand-rolled hardened HTTP/JSON layer.
//!
//! # Quickstart
//!
//! ```
//! use commproto::bitstring::BitString;
//! use commproto::fingerprint::FingerprintScheme;
//! use dqma::chain::ChainCheat;
//! use dqma::eq_path::EqPathProtocol;
//!
//! // EQ on a path of length 3 with 4-bit inputs.
//! let protocol = EqPathProtocol::with_scheme(3, FingerprintScheme::small(4, 40), 8);
//! let x = BitString::from_str01("1010");
//! let y = BitString::from_str01("0110");
//!
//! // Equal inputs: every node accepts with certainty.
//! assert!((protocol.completeness(&x) - 1.0).abs() < 1e-10);
//!
//! // Different inputs: even a prover that interpolates fingerprints along the
//! // path is caught with constant probability after repetition.
//! let cheating = protocol.repeated_acceptance(&x, &y, ChainCheat::Interpolate);
//! assert!(cheating < 1.0 / 3.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod chain;
pub mod cluster;
pub mod costs;
pub mod dma;
pub mod eq_path;
pub mod eq_tree;
pub mod forall;
pub mod from_qmacc;
pub mod gt;
pub mod lower_bounds;
pub mod net;
pub mod noise;
pub mod ranking;
pub mod relay;
pub mod service;
pub mod trials;

pub use chain::{ChainCheat, SwapTestChain};
pub use cluster::{ChurnSchedule, Cluster, ClusterConfig, ClusterReport, ProgramSpec};
pub use eq_path::EqPathProtocol;
pub use eq_tree::EqTreeProtocol;
pub use forall::ForAllProtocol;
pub use from_qmacc::QmaccPathProtocol;
pub use gt::GtPathProtocol;
pub use ranking::RankingProtocol;
pub use relay::RelayEqProtocol;
pub use service::{InstanceSpec, JobSpec, JobStatus, Service, ServiceConfig};
pub use trials::TrialReport;
