//! The improved dQMA protocol for EQ on a path (Section 3.2 of the paper):
//! protocol `Pπ` (Algorithm 3) and its parallel repetition `Pπ[k]`
//! (Algorithm 4).
//!
//! The left extremity holds `x`, the right extremity holds `y`; the prover
//! hands every intermediate node two fingerprint registers, the nodes
//! symmetrise, forward and SWAP-test, and the right extremity runs Bob's
//! measurement from the one-way EQ protocol π. The protocol has perfect
//! completeness and, before repetition, soundness error at most
//! `1 − 4/(81 r²)`; `O(r²)` parallel repetitions push it below 1/3 with local
//! proof and message size `O(r² log n)` (Theorem 19 specialised to a path).

use crate::chain::{cheating_proof, ChainCheat, SeparableChainProof, SwapTestChain};
use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use commproto::one_way::{EqOneWay, OneWayProtocol};
use netsim::ProtocolCosts;

/// The EQ protocol `Pπ[k]` on a path of length `r`.
#[derive(Clone, Debug)]
pub struct EqPathProtocol {
    r: usize,
    protocol: EqOneWay,
    repetitions: usize,
}

impl EqPathProtocol {
    /// Builds the protocol for `n`-bit inputs on a path of length `r`, with
    /// the paper's repetition count `⌈2·81r²/4⌉`.
    pub fn new(n: usize, r: usize, seed: u64) -> Self {
        EqPathProtocol {
            r,
            protocol: EqOneWay::for_input_len(n, seed),
            repetitions: SwapTestChain::paper_repetitions(r),
        }
    }

    /// Builds the protocol with an explicit fingerprint scheme and repetition
    /// count (used by the relay-point protocol and by small exact-simulation
    /// experiments).
    pub fn with_scheme(r: usize, scheme: FingerprintScheme, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        EqPathProtocol {
            r,
            protocol: EqOneWay::new(scheme),
            repetitions,
        }
    }

    /// Path length.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Input length in bits.
    pub fn input_len(&self) -> usize {
        self.protocol.input_len()
    }

    /// Number of parallel repetitions `k`.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The underlying one-way EQ protocol π.
    pub fn one_way(&self) -> &EqOneWay {
        &self.protocol
    }

    /// The SWAP-test chain of a single repetition on inputs `(x, y)`.
    pub fn chain(&self, x: &BitString, y: &BitString) -> SwapTestChain {
        SwapTestChain::new(
            self.r,
            self.protocol.alice_message(x),
            self.protocol.bob_effect(y),
        )
    }

    /// Acceptance probability of a single repetition with the honest proof.
    /// Equal inputs are accepted with probability exactly 1.
    pub fn completeness(&self, x: &BitString) -> f64 {
        self.chain(x, x).completeness()
    }

    /// Acceptance probability of a single repetition under a named cheating
    /// strategy on (not necessarily equal) inputs.
    pub fn single_round_acceptance(&self, x: &BitString, y: &BitString, cheat: ChainCheat) -> f64 {
        let chain = self.chain(x, y);
        let right_state = self.protocol.alice_message(y);
        let proof = cheating_proof(&chain, &right_state, cheat);
        chain.acceptance_separable(&proof)
    }

    /// Acceptance probability of a single repetition for an arbitrary
    /// separable proof.
    pub fn single_round_acceptance_with_proof(
        &self,
        x: &BitString,
        y: &BitString,
        proof: &SeparableChainProof,
    ) -> f64 {
        self.chain(x, y).acceptance_separable(proof)
    }

    /// Acceptance probability of the full `k`-fold repetition assuming the
    /// prover plays the same strategy independently in every repetition.
    pub fn repeated_acceptance(&self, x: &BitString, y: &BitString, cheat: ChainCheat) -> f64 {
        SwapTestChain::repeated_soundness(
            self.single_round_acceptance(x, y, cheat),
            self.repetitions,
        )
    }

    /// Samples one full round of a single repetition under a named cheating
    /// strategy, through the chain's pure-state fast path
    /// ([`SwapTestChain::simulate_round`]). No joint density matrix is ever
    /// formed, so end-to-end rounds stay benchable at `r ≥ 8` where the
    /// joint dense-projector simulation cannot run.
    ///
    /// This convenience wrapper also prepares the round's instance data
    /// (Alice's fingerprint, Bob's effect, the cheating proof) on every call.
    /// Monte-Carlo loops over a *fixed* instance should use
    /// [`EqPathProtocol::sample_rounds`], which hoists all of that — plus
    /// the per-node overlap arithmetic — into a one-time
    /// [`crate::chain::ChainRoundPlan`] and runs the batched trial engine.
    pub fn simulate_round<R: rand::Rng + ?Sized>(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
        rng: &mut R,
    ) -> bool {
        let chain = self.chain(x, y);
        let right_state = self.protocol.alice_message(y);
        let proof = cheating_proof(&chain, &right_state, cheat);
        chain.simulate_round(&proof, rng)
    }

    /// Samples one honest round on a yes-instance (both extremities hold `x`,
    /// the prover forwards the fingerprint unchanged). Accepts with
    /// probability 1 up to floating-point error.
    pub fn simulate_honest_round<R: rand::Rng + ?Sized>(&self, x: &BitString, rng: &mut R) -> bool {
        let chain = self.chain(x, x);
        let proof = chain.honest_proof();
        chain.simulate_round(&proof, rng)
    }

    /// Batched Monte-Carlo rounds of a single repetition under a named
    /// cheating strategy: the instance (Alice's fingerprint, Bob's effect,
    /// the cheating proof) and the chain's round tables are prepared
    /// **once**, then `n` sampled rounds run through the block engine of
    /// [`crate::trials`] — `O(r)` table lookups per round, no per-round
    /// state preparation, accept counts bit-identical at any worker count.
    pub fn sample_rounds(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
        n: u64,
        seed: u64,
    ) -> crate::trials::TrialReport {
        self.sample_rounds_with_workers(x, y, cheat, n, seed, crate::trials::default_workers())
    }

    /// As [`EqPathProtocol::sample_rounds`] with an explicit worker-slot
    /// count (determinism tests, bench worker sweeps).
    pub fn sample_rounds_with_workers(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
        n: u64,
        seed: u64,
        workers: usize,
    ) -> crate::trials::TrialReport {
        let chain = self.chain(x, y);
        let right_state = self.protocol.alice_message(y);
        let proof = cheating_proof(&chain, &right_state, cheat);
        chain.sample_rounds_with_workers(&proof, n, seed, workers)
    }

    /// Compiles `(x, y, cheat)` into the same [`crate::chain::ChainRoundPlan`]
    /// that [`EqPathProtocol::sample_rounds_with_workers`] drives internally.
    /// Exposed so determinism tests and benches can run the plan through
    /// [`crate::trials::with_lane_width`] (or toggle the SIMD executors) and
    /// pin the results against the default engine bit-for-bit.
    pub fn round_plan(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
    ) -> crate::chain::ChainRoundPlan {
        let chain = self.chain(x, y);
        let right_state = self.protocol.alice_message(y);
        let proof = cheating_proof(&chain, &right_state, cheat);
        chain.round_plan(&proof)
    }

    /// Compiles `(x, y, cheat)` into a per-node message-passing program for
    /// the transport executors of [`crate::net`]: the same round tables as
    /// [`EqPathProtocol::sample_rounds`], but walked one network node at a
    /// time over a [`netsim::Transport`]. With `x == y` every cheat strategy
    /// degenerates to the honest proof, so the same constructor covers
    /// completeness runs.
    pub fn net_program(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
    ) -> crate::net::ChainNetProgram {
        let chain = self.chain(x, y);
        let right_state = self.protocol.alice_message(y);
        let proof = cheating_proof(&chain, &right_state, cheat);
        crate::net::ChainNetProgram::new(chain.round_plan(&proof))
            .with_message_qubits(self.protocol.scheme().qubits() as u64)
    }

    /// Batched honest rounds on a yes-instance; every round accepts (up to
    /// floating-point error), so `accepts == trials` for a correct sampler.
    pub fn sample_honest_rounds(
        &self,
        x: &BitString,
        n: u64,
        seed: u64,
    ) -> crate::trials::TrialReport {
        let chain = self.chain(x, x);
        let proof = chain.honest_proof();
        chain.sample_rounds(&proof, n, seed)
    }

    /// Exact soundness error of a single repetition against arbitrary
    /// (entangled) proofs, via the acceptance-operator spectral method.
    /// Only available for small fingerprint dimensions and short paths.
    pub fn single_round_optimal_acceptance(&self, x: &BitString, y: &BitString) -> f64 {
        self.chain(x, y).optimal_acceptance()
    }

    /// Cost summary of the full repeated protocol.
    pub fn costs(&self) -> ProtocolCosts {
        let q = self.protocol.scheme().qubits() as u64;
        let single = SwapTestChain::new(
            self.r,
            self.protocol
                .alice_message(&BitString::zeros(self.input_len())),
            qsim::CMatrix::identity(self.protocol.message_dim()),
        )
        .costs(q);
        scale_costs(&single, self.repetitions as u64)
    }

    /// The paper's bound on the local proof/message size:
    /// `O(r² log n)` qubits (constant 1).
    pub fn paper_local_cost(n: usize, r: usize) -> f64 {
        (r * r) as f64 * (n as f64).log2().max(1.0)
    }

    /// Cost summary of the full protocol with the paper's parameters, computed
    /// without materialising a fingerprint code — usable for very large `n` in
    /// the benchmark sweeps. Fingerprint registers are `⌈log₂(8n)⌉` qubits as
    /// in [`FingerprintScheme::new`].
    pub fn costs_for(n: usize, r: usize) -> ProtocolCosts {
        let q = ((8 * n).next_power_of_two().trailing_zeros() as u64).max(1);
        let reps = SwapTestChain::paper_repetitions(r) as u64;
        let mut t = netsim::CostTracker::new();
        for j in 1..r {
            t.record_proof(j, 2 * q);
        }
        for j in 0..r {
            t.record_message(j, j + 1, q);
        }
        t.set_rounds(1);
        scale_costs(&t.summary(), reps)
    }
}

/// Multiplies every cost entry of a single repetition by the repetition count.
pub fn scale_costs(single: &ProtocolCosts, k: u64) -> ProtocolCosts {
    ProtocolCosts {
        local_proof_qubits: single.local_proof_qubits * k,
        total_proof_qubits: single.total_proof_qubits * k,
        local_message_qubits: single.local_message_qubits * k,
        total_message_qubits: single.total_message_qubits * k,
        local_proof_bits: single.local_proof_bits * k,
        total_proof_bits: single.total_proof_bits * k,
        local_message_bits: single.local_message_bits * k,
        total_message_bits: single.total_message_bits * k,
        rounds: single.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_protocol(n: usize, r: usize) -> EqPathProtocol {
        // A small fingerprint (m = 4) keeps exact simulation cheap.
        EqPathProtocol::with_scheme(r, FingerprintScheme::small(n, 7), 4)
    }

    #[test]
    fn perfect_completeness_on_equal_inputs() {
        let proto = small_protocol(4, 3);
        for v in [0u64, 5, 15] {
            let x = BitString::from_u64(v, 4);
            assert!((proto.completeness(&x) - 1.0).abs() < 1e-10, "x = {v}");
        }
    }

    #[test]
    fn unequal_inputs_are_rejected_with_positive_probability() {
        let proto = small_protocol(4, 3);
        let x = BitString::from_u64(3, 4);
        let y = BitString::from_u64(12, 4);
        for cheat in [
            ChainCheat::AllLeft,
            ChainCheat::AllRight,
            ChainCheat::Interpolate,
        ] {
            let p = proto.single_round_acceptance(&x, &y, cheat);
            assert!(p < 1.0 - 1e-4, "{cheat:?} accepted with probability {p}");
        }
    }

    #[test]
    fn repetition_drives_acceptance_down_exponentially() {
        let proto = EqPathProtocol::with_scheme(3, FingerprintScheme::small(4, 7), 64);
        let x = BitString::from_u64(3, 4);
        let y = BitString::from_u64(12, 4);
        let single = proto.single_round_acceptance(&x, &y, ChainCheat::Interpolate);
        let repeated = proto.repeated_acceptance(&x, &y, ChainCheat::Interpolate);
        assert!(repeated < single);
        assert!(repeated < 1.0 / 3.0, "repeated acceptance {repeated}");
        // Completeness survives repetition unchanged.
        assert!((proto.completeness(&x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampled_rounds_agree_with_exact_single_round_acceptance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let proto = small_protocol(4, 3);
        let x = BitString::from_u64(3, 4);
        let y = BitString::from_u64(12, 4);
        let exact = proto.single_round_acceptance(&x, &y, ChainCheat::Interpolate);
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 3000;
        let accepts = (0..trials)
            .filter(|_| proto.simulate_round(&x, &y, ChainCheat::Interpolate, &mut rng))
            .count();
        let est = accepts as f64 / trials as f64;
        assert!(
            (est - exact).abs() < 0.05,
            "estimated {est} vs exact {exact}"
        );
        // Honest rounds accept with certainty.
        for _ in 0..20 {
            assert!(proto.simulate_honest_round(&x, &mut rng));
        }
    }

    #[test]
    fn paper_repetition_count_suffices_for_the_paper_bound() {
        // Using the paper's analytical bound (independent of the strategy).
        for r in [2usize, 3, 5] {
            let single = SwapTestChain::paper_soundness_bound(r);
            let repeated =
                SwapTestChain::repeated_soundness(single, SwapTestChain::paper_repetitions(r));
            assert!(repeated < 1.0 / 3.0);
        }
    }

    #[test]
    fn costs_match_theorem_19_shape() {
        // Local proof size O(r^2 log n): doubling r roughly quadruples the cost,
        // squaring n only doubles it.
        let c_base = EqPathProtocol::new(16, 4, 1).costs();
        let c_double_r = EqPathProtocol::new(16, 8, 1).costs();
        let c_square_n = EqPathProtocol::new(256, 4, 1).costs();
        let ratio_r = c_double_r.local_proof_qubits as f64 / c_base.local_proof_qubits as f64;
        let ratio_n = c_square_n.local_proof_qubits as f64 / c_base.local_proof_qubits as f64;
        assert!((3.0..=5.0).contains(&ratio_r), "r-scaling ratio {ratio_r}");
        assert!(ratio_n <= 2.5, "n-scaling ratio {ratio_n}");
        assert_eq!(c_base.rounds, 1);
    }

    #[test]
    fn spectral_soundness_on_tiny_instance() {
        // One intermediate node, tiny fingerprints: exact soundness against
        // arbitrary entangled proofs stays below 1.
        let proto = EqPathProtocol::with_scheme(2, FingerprintScheme::small(2, 3), 1);
        let x = BitString::from_u64(1, 2);
        let y = BitString::from_u64(2, 2);
        let opt = proto.single_round_optimal_acceptance(&x, &y);
        assert!(opt < 1.0 - 1e-6);
        // No separable strategy can beat it.
        for cheat in [
            ChainCheat::AllLeft,
            ChainCheat::AllRight,
            ChainCheat::Interpolate,
        ] {
            assert!(proto.single_round_acceptance(&x, &y, cheat) <= opt + 1e-8);
        }
    }

    #[test]
    fn paper_local_cost_formula_shape() {
        assert!(EqPathProtocol::paper_local_cost(16, 8) > EqPathProtocol::paper_local_cost(16, 4));
        assert!(
            EqPathProtocol::paper_local_cost(256, 4) / EqPathProtocol::paper_local_cost(16, 4)
                < 2.5
        );
    }
}
