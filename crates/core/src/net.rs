//! Per-node round executors over the message-passing [`netsim::transport`]
//! layer.
//!
//! The batched samplers in [`crate::trials`] evaluate a round as a single
//! closed-form product — correct, but silent about *distribution*: every
//! verifier's test collapses into one process-local multiply, so nothing can
//! be said about what happens when messages are late, lost, duplicated or a
//! node crashes. This module re-expresses the four protocol round paths
//! ([`crate::eq_path`], [`crate::eq_tree`], [`crate::relay`] and the raw
//! [`crate::chain`]) as **per-node programs** exchanging sequence-numbered
//! envelopes over a [`Transport`], wrapped in the retry/timeout/backoff
//! robustness layer of [`netsim::transport`]:
//!
//! * a [`RoundProgram`] gives each network node a little script —
//!   *receive the previous coin, flip your own, run your local test, forward
//!   your coin* — driven through a [`NodeIo`] handle that hides sequencing,
//!   retries and cost accounting;
//! * [`run_round`] executes the program over any transport on one thread (the
//!   schedule is a topological order of the message dependencies, so a
//!   poll-mode transport never blocks); [`run_round_threaded`] runs one
//!   executor per node on the persistent [`qsim::pool`] workers against a
//!   blocking transport;
//! * faults degrade gracefully: an exhausted retry budget, a receive
//!   timeout, a crashed node or a panicking executor all terminate the trial
//!   as [`RoundOutcome::Aborted`] with a [`FaultReport`] carrying the partial
//!   [`CostTracker`] state of the affected verifier — never a hang, never a
//!   poisoned pool;
//! * [`TransportSampler`] plugs a program into the block-deterministic
//!   outcome engine of [`crate::trials`], so fault sweeps inherit the
//!   bit-identical-at-any-worker-count contract of every other sampler.
//!
//! # Statistical equivalence with the in-process samplers
//!
//! A plan-based sampler accepts a round with probability `E_c[Π_v p_v(c)]`
//! using a *single* accept draw; the per-node programs draw one Bernoulli per
//! verifier. Conditioned on the shared coins `c`, the product of independent
//! `Bernoulli(p_v(c))` successes is `Bernoulli(Π_v p_v(c))` — identical to
//! the single draw. Fault-free transport rounds therefore match the
//! in-process samplers in distribution (asserted by the Hoeffding tests in
//! `tests/integration_transport_rounds.rs`), though not bit-for-bit: the RNG
//! consumption differs.
//!
//! # Determinism
//!
//! Each trial derives a fault salt from the block RNG stream, and every
//! fault decision is a pure hash of `(salt, message identity)` — so a
//! `(seed, FaultPlan)` pair reproduces the same accepts/rejects/aborts,
//! message counts and transcript digest at *any* worker count, exactly like
//! the accept counts of [`crate::trials`]. The sequential and pool-threaded
//! drivers are each individually deterministic, but not bit-identical to one
//! another (they consume RNG streams differently).

use crate::chain::ChainRoundPlan;
use crate::relay::RelayRoundPlan;
use crate::trials::{self, BlockOutcomes, OutcomeReport, OutcomeSampler};
use netsim::transport::{robust_recv, robust_send};
use netsim::{
    ChannelTransport, CostTracker, Envelope, FaultCause, FaultPlan, FaultReport, FaultyTransport,
    LocalChannelTransport, NodeId, ProtocolCosts, RetryPolicy, RoundOutcome, Transport, VTime,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

/// SplitMix64 finalizer: the digest and per-node seed mixer. (Same finalizer
/// the transport layer uses for fault decisions; duplicated locally because
/// the transcript digest is a consumer-side concern.)
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Golden-ratio stride for deriving per-node RNG streams in the threaded
/// driver (the same constant `trials` uses for per-block streams).
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Wall-clock guard for a single blocking receive in the threaded driver: a
/// lost message must not hang a pool worker (liveness only — all timeout
/// *semantics* are virtual).
const BLOCKING_RECV_GUARD: Duration = Duration::from_millis(200);

/// Transmission statistics of one executed round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Envelope transmissions, including retransmissions.
    pub sent: u64,
    /// Retransmissions alone (`sent − distinct messages`).
    pub retries: u64,
    /// XOR-fold of per-delivery hashes: a transcript fingerprint that is
    /// invariant under executor interleaving (XOR is commutative) but
    /// sensitive to *what* was delivered to whom.
    pub digest: u64,
}

impl RoundStats {
    /// Accumulates `other` (commutative).
    fn merge(&mut self, other: &RoundStats) {
        self.sent += other.sent;
        self.retries += other.retries;
        self.digest ^= other.digest;
    }
}

/// Per-node I/O handle handed to [`RoundProgram::run_node`]: wraps a
/// [`Transport`] with the robust send/receive layer, the node's virtual
/// clock, its RNG stream and optional cost accounting.
pub struct NodeIo<'a, T: Transport + ?Sized> {
    transport: &'a T,
    policy: &'a RetryPolicy,
    salt: u64,
    node: NodeId,
    clock: VTime,
    rng: &'a mut StdRng,
    next_seq: u32,
    message_qubits: u64,
    stats: RoundStats,
    costs: Option<&'a mut CostTracker>,
}

impl<'a, T: Transport + ?Sized> NodeIo<'a, T> {
    fn new(
        transport: &'a T,
        policy: &'a RetryPolicy,
        salt: u64,
        rng: &'a mut StdRng,
        message_qubits: u64,
        costs: Option<&'a mut CostTracker>,
    ) -> Self {
        NodeIo {
            transport,
            policy,
            salt,
            node: 0,
            clock: 0,
            rng,
            next_seq: 0,
            message_qubits,
            stats: RoundStats::default(),
            costs,
        }
    }

    /// Re-targets the handle at `node` for a fresh executor (the per-trial
    /// accumulators — stats, cost tracker — carry across nodes). Reports the
    /// node as crashed when the fault schedule has it down at round start.
    fn begin_node(&mut self, node: NodeId) -> Result<(), FaultCause> {
        self.node = node;
        self.clock = 0;
        self.next_seq = 0;
        match self.transport.node_down_until(node, 0) {
            Some(until) => Err(FaultCause::NodeCrashed { until }),
            None => Ok(()),
        }
    }

    /// The node this handle is executing.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's virtual clock (ns).
    pub fn vtime(&self) -> VTime {
        self.clock
    }

    /// Reliably sends `payload` to `dst`: sequence-numbered envelope,
    /// per-message timeout, bounded exponential backoff with deterministic
    /// jitter. Advances the virtual clock through the backoff schedule.
    #[inline]
    pub fn send(&mut self, dst: NodeId, payload: u64) -> Result<(), FaultCause> {
        let env = Envelope {
            src: self.node,
            dst,
            seq: self.next_seq,
            attempt: 0,
            payload,
        };
        self.next_seq += 1;
        let attempts = robust_send(self.transport, self.policy, self.salt, &mut self.clock, env)?;
        self.stats.sent += u64::from(attempts);
        self.stats.retries += u64::from(attempts - 1);
        if let Some(costs) = self.costs.as_deref_mut() {
            costs.record_message(self.node, dst, self.message_qubits);
        }
        Ok(())
    }

    /// Reliably receives the next envelope addressed to this node,
    /// extending the deadline through the backoff schedule. Deliveries are
    /// deduplicated by the transport, so a retransmitted or duplicated
    /// envelope is observed at most once.
    #[inline]
    pub fn recv(&mut self) -> Result<Envelope, FaultCause> {
        let env = robust_recv(
            self.transport,
            self.policy,
            self.salt,
            self.node,
            &mut self.clock,
        )?;
        // One odd-constant multiply spreads the identity word; the full
        // SplitMix finalizer runs once per trial when the block fold mixes
        // the salt in, so a bijective per-delivery fold suffices here.
        let ident = ((env.src as u64) << 40)
            ^ ((env.dst as u64) << 24)
            ^ (u64::from(env.seq) << 1)
            ^ env.payload.rotate_left(17);
        self.stats.digest ^= ident.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ok(env)
    }

    /// Flips this node's symmetrisation coin (0 or 1).
    pub fn coin(&mut self) -> usize {
        usize::from(self.rng.random::<bool>())
    }

    /// Draws this node's local accept/reject decision at probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p
    }

    /// Draws the node's symmetrisation coin and its accept verdict at the
    /// coin-dependent probability `p(coin)` from a single RNG word: bit 0 is
    /// the coin, bits 11..64 (disjoint from the coin bit) form the uniform
    /// accept draw — one generator call instead of two on the round hot
    /// path, with the two outputs exactly distributed and independent.
    #[inline]
    pub fn coin_accept(&mut self, p: impl FnOnce(usize) -> f64) -> (usize, bool) {
        let h = self.rng.random::<u64>();
        let coin = (h & 1) as usize;
        let accept = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p(coin);
        (coin, accept)
    }
}

/// A protocol round expressed as one small program per network node.
///
/// `schedule()` must list every participating node in a topological order of
/// the message dependencies (senders before their receivers); the sequential
/// driver runs nodes in exactly that order over a poll-mode transport, the
/// threaded driver uses it as the dispatch order of the per-node executors.
pub trait RoundProgram: Sync {
    /// Number of network nodes (mailboxes) the program needs.
    fn num_nodes(&self) -> usize;

    /// Dependency-ordered executor schedule.
    fn schedule(&self) -> &[NodeId];

    /// Qubits per protocol message, for cost accounting (0 = untracked).
    fn message_qubits(&self) -> u64 {
        0
    }

    /// Executes `node`'s verifier: receive, test, forward. Returns the
    /// node's accept decision, or the fault that prevented it from deciding.
    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut NodeIo<'_, T>,
    ) -> Result<bool, FaultCause>;

    /// Exactly how many RNG words `node`'s executor consumes on a
    /// *fault-free* run — the cross-process RNG alignment contract.
    ///
    /// The sequential driver threads one block stream through all nodes in
    /// schedule order; a node process replaying only its own slice must skip
    /// precisely this many words for every node scheduled before it (see
    /// `dqma::cluster`). Every `NodeIo` RNG helper ([`NodeIo::coin`],
    /// [`NodeIo::bernoulli`], [`NodeIo::coin_accept`]) consumes exactly one
    /// word, so this is a static property of the node's script.
    fn fault_free_draws(&self, node: NodeId) -> u64;
}

/// Folds per-node results (in schedule order) into a [`RoundOutcome`]:
/// the first fault wins, otherwise unanimous acceptance is required.
fn fold_outcome(
    failure: Option<(NodeId, VTime, FaultCause)>,
    all_accept: bool,
    partial: ProtocolCosts,
) -> RoundOutcome {
    match failure {
        Some((node, vtime, cause)) => RoundOutcome::Aborted(FaultReport {
            node,
            vtime,
            cause,
            partial,
        }),
        None if all_accept => RoundOutcome::Accept,
        None => RoundOutcome::Reject,
    }
}

fn run_round_inner<P: RoundProgram + ?Sized, T: Transport + ?Sized>(
    program: &P,
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    rng: &mut StdRng,
    costs: Option<&mut CostTracker>,
) -> (RoundOutcome, RoundStats) {
    transport.begin_trial(salt);
    let mut io = NodeIo::new(
        transport,
        policy,
        salt,
        rng,
        program.message_qubits(),
        costs,
    );
    let mut failure: Option<(NodeId, VTime, FaultCause)> = None;
    let mut all_accept = true;
    let mut partial = ProtocolCosts::default();
    let mut current = 0;
    // One unwind boundary per trial (not per node): a panic in any node's
    // executor is contained here and attributed to the node that was
    // running. Only the schedule tail after the panic is skipped.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        for &node in program.schedule() {
            current = node;
            let decision = io
                .begin_node(node)
                .and_then(|()| program.run_node(node, &mut io));
            match decision {
                Ok(accept) => all_accept &= accept,
                Err(cause) => {
                    if failure.is_none() {
                        partial = io
                            .costs
                            .as_deref()
                            .map(CostTracker::summary)
                            .unwrap_or_default();
                        failure = Some((node, io.clock, cause));
                    }
                }
            }
        }
    }));
    if caught.is_err() && failure.is_none() {
        partial = io
            .costs
            .as_deref()
            .map(CostTracker::summary)
            .unwrap_or_default();
        failure = Some((current, io.clock, FaultCause::NodePanicked));
    }
    let stats = io.stats;
    (fold_outcome(failure, all_accept, partial), stats)
}

/// Executes one round of `program` over `transport` on the calling thread,
/// visiting nodes in schedule order (so a poll-mode transport never waits).
///
/// Every trial terminates: faults and even executor panics degrade to
/// [`RoundOutcome::Aborted`] with the responsible node's [`FaultReport`].
pub fn run_round<P: RoundProgram + ?Sized, T: Transport + ?Sized>(
    program: &P,
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    rng: &mut StdRng,
) -> (RoundOutcome, RoundStats) {
    run_round_inner(program, transport, policy, salt, rng, None)
}

/// As [`run_round`], additionally recording message costs into `costs`. On
/// an abort, the returned [`FaultReport::partial`] snapshots the tracker at
/// the instant of the first fault — the affected verifier's partial view.
pub fn run_round_with_costs<P: RoundProgram + ?Sized, T: Transport + ?Sized>(
    program: &P,
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    rng: &mut StdRng,
    costs: &mut CostTracker,
) -> (RoundOutcome, RoundStats) {
    run_round_inner(program, transport, policy, salt, rng, Some(costs))
}

/// Executes one round with **one executor per node** on the persistent
/// [`qsim::pool`] workers, against a blocking transport (one mailbox per
/// node; receives park briefly rather than poll).
///
/// Each node draws from its own RNG stream derived from `(trial_seed,
/// schedule position)`, so the result is deterministic for a fixed
/// `(program, plan, salt, trial_seed)` at any worker count — but not
/// bit-identical to the sequential driver, which threads one stream through
/// all nodes. Deadlock-free by construction: the pool claims chunks in
/// increasing schedule order and every node's senders precede it in the
/// schedule, so the lowest unfinished executor always has its inputs queued.
/// A panicking executor is contained per node ([`FaultCause::NodePanicked`])
/// and the pool remains usable.
pub fn run_round_threaded<P: RoundProgram + ?Sized, T: Transport + Sync + ?Sized>(
    program: &P,
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    trial_seed: u64,
) -> (RoundOutcome, RoundStats) {
    let schedule = program.schedule();
    transport.begin_trial(salt);
    let message_qubits = program.message_qubits();
    type NodeResult = (Result<bool, FaultCause>, VTime, RoundStats);
    let results: Mutex<Vec<Option<NodeResult>>> = Mutex::new(vec![None; schedule.len()]);
    qsim::pool::global().dispatch(schedule.len(), schedule.len(), &|_slot, i| {
        let node = schedule[i];
        let mut rng = StdRng::seed_from_u64(trial_seed ^ (i as u64 + 1).wrapping_mul(PHI));
        let mut io = NodeIo::new(transport, policy, salt, &mut rng, message_qubits, None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            io.begin_node(node)
                .and_then(|()| program.run_node(node, &mut io))
        }))
        .unwrap_or(Err(FaultCause::NodePanicked));
        let entry = (outcome, io.clock, io.stats);
        results
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(entry);
    });
    let results = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut failure: Option<(NodeId, VTime, FaultCause)> = None;
    let mut all_accept = true;
    let mut stats = RoundStats::default();
    for (i, entry) in results.into_iter().enumerate() {
        let (decision, vtime, node_stats) =
            entry.unwrap_or((Err(FaultCause::NodePanicked), 0, RoundStats::default()));
        stats.merge(&node_stats);
        match decision {
            Ok(accept) => all_accept &= accept,
            Err(cause) => {
                if failure.is_none() {
                    failure = Some((schedule[i], vtime, cause));
                }
            }
        }
    }
    (
        fold_outcome(failure, all_accept, ProtocolCosts::default()),
        stats,
    )
}

/// Builds the blocking transport matching `program` and `plan` for the
/// threaded driver: one mailbox per node, wall-guarded receives.
pub fn blocking_transport<P: RoundProgram + ?Sized>(
    program: &P,
    plan: FaultPlan,
) -> FaultyTransport<ChannelTransport> {
    FaultyTransport::new(
        ChannelTransport::blocking(program.num_nodes(), BLOCKING_RECV_GUARD),
        plan,
    )
}

/// Executes **one node's** executor of one trial — the per-process entry
/// point of the multi-process runtime (`dqma::cluster`), where every network
/// node runs in its own OS process over a [`netsim::tcp::TcpTransport`].
///
/// Unlike [`run_round`], this does **not** call `begin_trial`: the caller
/// owns the trial boundary (the cluster node loop pins the TCP epoch to the
/// global trial index so every process agrees on which trial a frame belongs
/// to). On the fault-free path the executor consumes exactly
/// [`RoundProgram::fault_free_draws`]`(node)` words of `rng` — the property
/// the cluster runtime relies on to keep per-process RNG streams aligned
/// with the sequential driver's single thread of consumption. Panics are
/// contained, surfacing as [`FaultCause::NodePanicked`].
pub fn run_single_node<P: RoundProgram + ?Sized, T: Transport + ?Sized>(
    program: &P,
    node: NodeId,
    transport: &T,
    policy: &RetryPolicy,
    salt: u64,
    rng: &mut StdRng,
) -> (Result<bool, FaultCause>, VTime, RoundStats) {
    let mut io = NodeIo::new(transport, policy, salt, rng, program.message_qubits(), None);
    let decision = catch_unwind(AssertUnwindSafe(|| {
        io.begin_node(node)
            .and_then(|()| program.run_node(node, &mut io))
    }))
    .unwrap_or(Err(FaultCause::NodePanicked));
    (decision, io.clock, io.stats)
}

// ---------------------------------------------------------------------------
// Protocol programs
// ---------------------------------------------------------------------------

/// The SWAP-test chain as a per-node program on the path `0..=k+1`:
/// node 0 (left extremity) opens the relay with a fixed token, intermediate
/// node `v` tests its kept register against the forwarded one
/// (`table(v−1, c_prev + 2·c_own)`) and forwards its coin, and the right
/// extremity runs the boundary measurement (`table(k, c_prev)`).
#[derive(Clone, Debug)]
pub struct ChainNetProgram {
    pub(crate) plan: ChainRoundPlan,
    schedule: Vec<NodeId>,
    pub(crate) message_qubits: u64,
}

impl ChainNetProgram {
    /// Wraps a compiled [`ChainRoundPlan`] (see
    /// [`crate::chain::SwapTestChain::round_plan`]).
    pub fn new(plan: ChainRoundPlan) -> Self {
        let nodes = plan.num_intermediate() + 2;
        ChainNetProgram {
            plan,
            schedule: (0..nodes).collect(),
            message_qubits: 0,
        }
    }

    /// Sets the per-message qubit cost recorded by
    /// [`run_round_with_costs`].
    pub fn with_message_qubits(mut self, qubits: u64) -> Self {
        self.message_qubits = qubits;
        self
    }
}

impl RoundProgram for ChainNetProgram {
    fn num_nodes(&self) -> usize {
        self.plan.num_intermediate() + 2
    }

    fn schedule(&self) -> &[NodeId] {
        &self.schedule
    }

    fn message_qubits(&self) -> u64 {
        self.message_qubits
    }

    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut NodeIo<'_, T>,
    ) -> Result<bool, FaultCause> {
        let k = self.plan.num_intermediate();
        if node == 0 {
            // Left extremity: opens the chain; its own test is folded into
            // node 1's table (the plan conditions on c_{−1} = 0).
            io.send(1, 0)?;
            Ok(true)
        } else if node <= k {
            let prev = (io.recv()?.payload & 1) as usize;
            let (cur, accept) = io.coin_accept(|cur| self.plan.table(node - 1, prev + 2 * cur));
            io.send(node + 1, cur as u64)?;
            Ok(accept)
        } else {
            // Right extremity: boundary measurement on the forwarded
            // register, selected by the last intermediate's coin.
            let prev = (io.recv()?.payload & 1) as usize;
            Ok(io.bernoulli(self.plan.table(k, prev)))
        }
    }

    fn fault_free_draws(&self, node: NodeId) -> u64 {
        // Node 0 only opens the chain; intermediates draw one `coin_accept`
        // word, the right extremity one `bernoulli` word.
        u64::from(node != 0)
    }
}

/// A path node's role in the relay-point protocol.
#[derive(Clone, Debug)]
pub(crate) enum RelayRole {
    /// Node 0: opens the first segment.
    LeftEnd,
    /// Strictly inside segment `seg`, as its `j`-th intermediate.
    Intermediate { seg: usize, j: usize },
    /// A relay point: right boundary of `prev_seg`, left end of the next.
    Relay { prev_seg: usize },
    /// Node `r`: right boundary of the last segment.
    RightEnd,
}

/// The relay-point protocol ([`crate::relay`]) as a per-node program on the
/// path `0..=r`: relay points measure the incoming segment's boundary and
/// open the next segment with a fresh token, so each segment runs the chain
/// walk of [`ChainNetProgram`] end to end.
#[derive(Clone, Debug)]
pub struct RelayNetProgram {
    pub(crate) segments: Vec<ChainRoundPlan>,
    pub(crate) roles: Vec<RelayRole>,
    schedule: Vec<NodeId>,
    pub(crate) message_qubits: u64,
}

impl RelayNetProgram {
    /// Builds the program from a compiled [`RelayRoundPlan`] and the
    /// protocol's segment boundaries (see
    /// [`crate::relay::RelayEqProtocol::segment_boundaries`]).
    ///
    /// # Panics
    ///
    /// Panics when the boundary spacing disagrees with the per-segment plan
    /// sizes.
    pub fn new(plan: &RelayRoundPlan, boundaries: &[usize]) -> Self {
        Self::from_segments(plan.segment_plans().to_vec(), boundaries)
    }

    /// Assembles the program directly from per-segment chain plans — the
    /// cluster wire-decode path ([`crate::cluster::ProgramSpec`]) rebuilds a
    /// relay program without re-deriving the full [`RelayRoundPlan`].
    pub(crate) fn from_segments(segments: Vec<ChainRoundPlan>, boundaries: &[usize]) -> Self {
        assert_eq!(
            segments.len() + 1,
            boundaries.len(),
            "one segment per consecutive boundary pair required"
        );
        let r = *boundaries.last().expect("at least two boundaries");
        let mut roles = Vec::with_capacity(r + 1);
        for v in 0..=r {
            let role = if v == 0 {
                RelayRole::LeftEnd
            } else if v == r {
                RelayRole::RightEnd
            } else if let Some(i) = boundaries.iter().position(|&b| b == v) {
                // boundaries[i] closes segment i − 1.
                RelayRole::Relay { prev_seg: i - 1 }
            } else {
                let seg = boundaries.iter().take_while(|&&b| b < v).count() - 1;
                RelayRole::Intermediate {
                    seg,
                    j: v - boundaries[seg] - 1,
                }
            };
            roles.push(role);
        }
        for (i, seg) in segments.iter().enumerate() {
            assert_eq!(
                seg.num_intermediate(),
                boundaries[i + 1] - boundaries[i] - 1,
                "segment {i} plan size disagrees with its boundaries"
            );
        }
        RelayNetProgram {
            segments,
            roles,
            schedule: (0..=r).collect(),
            message_qubits: 0,
        }
    }

    /// Sets the per-message qubit cost recorded by
    /// [`run_round_with_costs`].
    pub fn with_message_qubits(mut self, qubits: u64) -> Self {
        self.message_qubits = qubits;
        self
    }

    /// Reconstructs the segment boundaries from the role assignment:
    /// node 0, every relay point, node `r`.
    pub(crate) fn boundaries(&self) -> Vec<usize> {
        let mut b = vec![0usize];
        b.extend(
            self.roles
                .iter()
                .enumerate()
                .filter(|(_, role)| matches!(role, RelayRole::Relay { .. }))
                .map(|(v, _)| v),
        );
        b.push(self.roles.len() - 1);
        b
    }
}

impl RoundProgram for RelayNetProgram {
    fn num_nodes(&self) -> usize {
        self.roles.len()
    }

    fn schedule(&self) -> &[NodeId] {
        &self.schedule
    }

    fn message_qubits(&self) -> u64 {
        self.message_qubits
    }

    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut NodeIo<'_, T>,
    ) -> Result<bool, FaultCause> {
        match self.roles[node] {
            RelayRole::LeftEnd => {
                io.send(1, 0)?;
                Ok(true)
            }
            RelayRole::Intermediate { seg, j } => {
                let prev = (io.recv()?.payload & 1) as usize;
                let (cur, accept) =
                    io.coin_accept(|cur| self.segments[seg].table(j, prev + 2 * cur));
                io.send(node + 1, cur as u64)?;
                Ok(accept)
            }
            RelayRole::Relay { prev_seg } => {
                let seg = &self.segments[prev_seg];
                let prev = (io.recv()?.payload & 1) as usize;
                let accept = io.bernoulli(seg.table(seg.num_intermediate(), prev));
                // Measured and re-announced: the next segment starts from
                // the relay's classical string, i.e. a fresh token.
                io.send(node + 1, 0)?;
                Ok(accept)
            }
            RelayRole::RightEnd => {
                let seg = self.segments.last().expect("at least one segment");
                let prev = (io.recv()?.payload & 1) as usize;
                Ok(io.bernoulli(seg.table(seg.num_intermediate(), prev)))
            }
        }
    }

    fn fault_free_draws(&self, node: NodeId) -> u64 {
        // Every role draws exactly one word (coin_accept or bernoulli)
        // except the opening left extremity.
        u64::from(!matches!(self.roles[node], RelayRole::LeftEnd))
    }
}

/// A tree node's role in the EQ-tree program; built by
/// [`crate::eq_tree::EqTreeProtocol::net_program`].
#[derive(Clone, Debug)]
pub(crate) enum TreeRole {
    /// A node id outside the announced tree (no executor).
    Unused,
    /// A terminal leaf: sends its fingerprint token to its parent.
    Leaf {
        /// The leaf's parent in the announced tree.
        parent: NodeId,
    },
    /// An internal node: collects its children's messages, runs the
    /// permutation test, forwards its own coin.
    Internal {
        /// Parent in the announced tree (`None` at the root).
        parent: Option<NodeId>,
        /// Children in tree order; `Some(shift)` marks a non-leaf child
        /// whose coin lands at bit `shift` of the table index.
        children: Vec<(NodeId, Option<u32>)>,
        /// Permutation-test acceptance per coin combination, bit 0 the
        /// node's own coin (the layout of
        /// [`crate::eq_tree::EqTreeProtocol::round_plan`]).
        probs: Vec<f64>,
    },
}

/// The EQ-tree protocol ([`crate::eq_tree`]) as a per-node program over the
/// announced spanning tree: leaves send up, internal nodes gather their
/// children (attributing arrivals by source, so reordering is harmless),
/// test, and forward their coin; the schedule is the tree's post order.
#[derive(Clone, Debug)]
pub struct TreeNetProgram {
    pub(crate) roles: Vec<TreeRole>,
    schedule: Vec<NodeId>,
    pub(crate) message_qubits: u64,
}

impl TreeNetProgram {
    pub(crate) fn new(roles: Vec<TreeRole>, schedule: Vec<NodeId>, message_qubits: u64) -> Self {
        TreeNetProgram {
            roles,
            schedule,
            message_qubits,
        }
    }
}

impl RoundProgram for TreeNetProgram {
    fn num_nodes(&self) -> usize {
        self.roles.len()
    }

    fn schedule(&self) -> &[NodeId] {
        &self.schedule
    }

    fn message_qubits(&self) -> u64 {
        self.message_qubits
    }

    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut NodeIo<'_, T>,
    ) -> Result<bool, FaultCause> {
        match &self.roles[node] {
            TreeRole::Unused => Ok(true),
            TreeRole::Leaf { parent } => {
                io.send(*parent, 0)?;
                Ok(true)
            }
            TreeRole::Internal {
                parent,
                children,
                probs,
            } => {
                let mut idx = 0usize;
                for _ in 0..children.len() {
                    let env = io.recv()?;
                    // Attribute by source: children may arrive in any order
                    // under latency jitter.
                    if let Some((_, Some(shift))) = children.iter().find(|(c, _)| *c == env.src) {
                        idx |= ((env.payload & 1) as usize) << shift;
                    }
                }
                // Child coins occupy bits >= 1, so the own coin (bit 0) ors
                // in cleanly.
                let (own, accept) = io.coin_accept(|own| probs[idx | own]);
                if let Some(p) = parent {
                    io.send(*p, own as u64)?;
                }
                Ok(accept)
            }
        }
    }

    fn fault_free_draws(&self, node: NodeId) -> u64 {
        // Only internal nodes flip a coin; unused ids and leaves are
        // draw-free.
        u64::from(matches!(self.roles[node], TreeRole::Internal { .. }))
    }
}

// ---------------------------------------------------------------------------
// Batched fault-sweep sampling
// ---------------------------------------------------------------------------

/// An [`OutcomeSampler`] running a [`RoundProgram`] over a faulty channel
/// transport: each pool worker owns one transport instance (scratch), each
/// trial draws a fresh fault salt from its block stream, so outcomes —
/// accepts, rejects, aborts, message counts and the transcript digest — are
/// bit-identical at any worker count.
pub struct TransportSampler<'a, P: RoundProgram> {
    program: &'a P,
    plan: FaultPlan,
    policy: RetryPolicy,
}

impl<'a, P: RoundProgram> TransportSampler<'a, P> {
    /// Builds the sampler for `program` under fault schedule `plan`.
    pub fn new(program: &'a P, plan: FaultPlan, policy: RetryPolicy) -> Self {
        TransportSampler {
            program,
            plan,
            policy,
        }
    }
}

impl<P: RoundProgram> OutcomeSampler for TransportSampler<'_, P> {
    // Each worker slot owns its transport exclusively, so the unsynchronised
    // local channel is safe — and roughly halves the zero-fault round cost
    // relative to the lock-per-mailbox shared transport.
    type Scratch = FaultyTransport<LocalChannelTransport>;

    fn scratch(&self) -> Self::Scratch {
        FaultyTransport::new(
            LocalChannelTransport::poll(self.program.num_nodes()),
            self.plan.clone(),
        )
    }

    fn sample_block(
        &self,
        trials: u64,
        scratch: &mut Self::Scratch,
        rng: &mut StdRng,
    ) -> BlockOutcomes {
        let mut out = BlockOutcomes::default();
        for _ in 0..trials {
            let salt = rng.random::<u64>();
            let (outcome, stats) = run_round(self.program, scratch, &self.policy, salt, rng);
            match outcome {
                RoundOutcome::Accept => out.accepts += 1,
                RoundOutcome::Reject => out.rejects += 1,
                RoundOutcome::Aborted(_) => out.aborts += 1,
            }
            out.messages += stats.sent;
            out.retries += stats.retries;
            out.digest ^= mix(stats.digest.wrapping_add(salt));
        }
        out
    }
}

/// Runs `n` transport-level rounds of `program` under fault schedule `plan`,
/// dispatched over at most `workers` pool slots. The block-index determinism
/// contract of [`crate::trials`] applies: every field of the report's
/// [`BlockOutcomes`] is bit-identical at any worker count.
pub fn sample_transport_rounds<P: RoundProgram>(
    program: &P,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    n: u64,
    seed: u64,
    workers: usize,
) -> OutcomeReport {
    let sampler = TransportSampler::new(program, plan.clone(), policy.clone());
    trials::run_outcome_trials_with_workers(&sampler, n, seed, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainCheat;
    use crate::eq_path::EqPathProtocol;
    use commproto::bitstring::BitString;
    use commproto::fingerprint::FingerprintScheme;

    fn eq_path_program(equal: bool) -> ChainNetProgram {
        let protocol = EqPathProtocol::with_scheme(4, FingerprintScheme::small(6, 7), 8);
        let x = BitString::from_u64(0b101010, 6);
        let y = if equal {
            x.clone()
        } else {
            BitString::from_u64(0b010110, 6)
        };
        protocol.net_program(&x, &y, ChainCheat::Interpolate)
    }

    #[test]
    fn honest_chain_round_accepts_over_fault_free_transport() {
        let program = eq_path_program(true);
        let transport = ChannelTransport::poll(program.num_nodes());
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        for salt in 0..64u64 {
            let (outcome, stats) = run_round(&program, &transport, &policy, salt, &mut rng);
            assert!(outcome.is_accept(), "honest round must accept: {outcome:?}");
            assert_eq!(stats.retries, 0, "fault-free transport must not retry");
            // One message per hop on the path 0..=r.
            assert_eq!(stats.sent as usize, program.num_nodes() - 1);
        }
    }

    #[test]
    fn full_partition_aborts_with_retries_exhausted() {
        let program = eq_path_program(true);
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::none()
        };
        let transport = FaultyTransport::new(ChannelTransport::poll(program.num_nodes()), plan);
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(11);
        let (outcome, _) = run_round(&program, &transport, &policy, 3, &mut rng);
        match outcome {
            RoundOutcome::Aborted(report) => {
                assert_eq!(report.node, 0, "the first sender hits the wall first");
                assert!(matches!(
                    report.cause,
                    FaultCause::RetriesExhausted { to: 1, .. }
                ));
            }
            other => panic!("expected an abort, got {other:?}"),
        }
    }

    #[test]
    fn panicking_program_degrades_to_aborted() {
        struct Bomb;
        impl RoundProgram for Bomb {
            fn num_nodes(&self) -> usize {
                2
            }
            fn schedule(&self) -> &[NodeId] {
                &[0, 1]
            }
            fn run_node<T: Transport + ?Sized>(
                &self,
                node: NodeId,
                _io: &mut NodeIo<'_, T>,
            ) -> Result<bool, FaultCause> {
                if node == 1 {
                    panic!("verifier bug");
                }
                Ok(true)
            }
            fn fault_free_draws(&self, _node: NodeId) -> u64 {
                0
            }
        }
        let transport = ChannelTransport::poll(2);
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(0);
        let (outcome, _) = run_round(&Bomb, &transport, &policy, 1, &mut rng);
        match outcome {
            RoundOutcome::Aborted(report) => {
                assert_eq!(report.node, 1);
                assert_eq!(report.cause, FaultCause::NodePanicked);
            }
            other => panic!("expected an abort, got {other:?}"),
        }
        // The poll transport (and the driver) stay usable.
        let program = eq_path_program(true);
        let transport = ChannelTransport::poll(program.num_nodes());
        let (outcome, _) = run_round(&program, &transport, &policy, 2, &mut rng);
        assert!(outcome.is_accept());
    }

    #[test]
    fn crashed_node_reports_partial_costs() {
        let program = eq_path_program(true).with_message_qubits(3);
        let plan = FaultPlan {
            crashes: vec![netsim::transport::CrashWindow {
                node: 2,
                start: 0,
                end: VTime::MAX,
            }],
            ..FaultPlan::none()
        };
        let transport = FaultyTransport::new(ChannelTransport::poll(program.num_nodes()), plan);
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut costs = CostTracker::new();
        let (outcome, _) =
            run_round_with_costs(&program, &transport, &policy, 9, &mut rng, &mut costs);
        match outcome {
            RoundOutcome::Aborted(report) => {
                // Node 1's send into the crashed node exhausts first (send
                // order precedes node 2's own crash check in the schedule).
                assert!(
                    matches!(report.cause, FaultCause::RetriesExhausted { to: 2, .. })
                        || matches!(report.cause, FaultCause::NodeCrashed { .. }),
                    "unexpected cause: {:?}",
                    report.cause
                );
                // The partial tracker saw node 0's opening message at least.
                assert!(report.partial.total_message_qubits >= 3);
            }
            other => panic!("expected an abort, got {other:?}"),
        }
    }

    #[test]
    fn threaded_driver_matches_outcome_determinism() {
        let program = eq_path_program(false);
        let plan = FaultPlan::with_drop(0.2);
        let policy = RetryPolicy::default();
        let transport = blocking_transport(&program, plan);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut accepts = 0u64;
            let mut digest = 0u64;
            for trial in 0..32u64 {
                let (outcome, stats) =
                    run_round_threaded(&program, &transport, &policy, trial, trial ^ 0xABCD);
                accepts += u64::from(outcome.is_accept());
                digest ^= mix(stats.digest.wrapping_add(trial));
            }
            runs.push((accepts, digest));
        }
        assert_eq!(runs[0], runs[1], "threaded driver must be reproducible");
    }
}
