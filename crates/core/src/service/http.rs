//! A minimal, hostile-input-hardened HTTP/1.1 request reader (std-only;
//! the offline dependency set has no hyper).
//!
//! The serving contract this enforces: a connection can be slow, truncated,
//! oversized, or garbage, and the outcome is always a structured
//! [`HttpError`] the accept loop maps to a response (or a clean close) —
//! never a panic, never an unbounded buffer, never a worker wedged past its
//! socket read timeout. Size caps ([`Limits`]) bound per-connection memory;
//! read timeouts (set on the socket by the caller) bound per-connection
//! time; everything else is plain parsing with explicit errors.

use std::io::Read;

/// Per-connection input caps.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head: usize,
    /// Maximum bytes of body (`Content-Length` above this is refused
    /// before any body byte is read).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_body: 256 * 1024,
        }
    }
}

/// Why a request could not be read. Every variant is a *structured*
/// outcome — the accept loop turns these into 4xx/408 responses or a
/// close, and stays alive either way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed before sending a complete request (the common
    /// mid-request-disconnect chaos case).
    Closed,
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// Request line + headers exceeded [`Limits::max_head`].
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body`].
    BodyTooLarge,
    /// The socket read timeout fired (slow-client protection).
    Timeout,
    /// Any other I/O failure.
    Io(std::io::ErrorKind),
}

impl HttpError {
    /// The HTTP status code this error maps to, or `None` when the
    /// connection is not worth responding on (peer already gone).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed => None,
            HttpError::Malformed(_) => Some(400),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Timeout => Some(408),
            HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Io(k) => write!(f, "i/o error: {k:?}"),
        }
    }
}

/// One parsed request: just the triple the router needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (upper-case as sent).
    pub method: String,
    /// Request target path.
    pub path: String,
    /// Decoded UTF-8 body (empty when none was sent).
    pub body: String,
}

fn io_err(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof => HttpError::Closed,
        k => HttpError::Io(k),
    }
}

/// Reads one HTTP/1.1 request from `r` under `limits`.
///
/// The head is read byte-at-a-time up to `limits.max_head` (terminated by
/// the blank line), so a hostile peer can hold at most `max_head` bytes of
/// buffer; the body is read only after its declared length passes the cap.
/// `Transfer-Encoding` is refused outright — the service speaks only
/// `Content-Length`, which keeps framing unambiguous.
pub fn read_request(r: &mut impl Read, limits: Limits) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed("truncated head".to_string()))
                };
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > limits.max_head {
                    return Err(HttpError::HeadTooLarge);
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    let head = std::str::from_utf8(&head)
        .map_err(|_| HttpError::Malformed("head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported".to_string(),
            ));
        }
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
        }
    }
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(io_err)?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::Malformed("body is not UTF-8".to_string()))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Renders a complete `Connection: close` HTTP/1.1 response.
pub fn response_bytes(status: u16, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut &bytes[..], Limits::default())
    }

    #[test]
    fn well_formed_requests_parse() {
        let req = read(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.body, "");

        let req = read(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"a\"");
    }

    #[test]
    fn malformed_and_hostile_inputs_are_structured_errors() {
        // Table of hostile connections: every row must be a structured
        // error — a panic or a hang here is a wedged accept loop in prod.
        type Expect = fn(&HttpError) -> bool;
        let cases: &[(&[u8], Expect)] = &[
            (b"", |e| *e == HttpError::Closed),
            (b"GET", |e| matches!(e, HttpError::Malformed(_))),
            (b"GET /x HTTP/1.1\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (b"\r\n\r\n", |e| matches!(e, HttpError::Malformed(_))),
            (b"GET nopath HTTP/1.1\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (b"GET /x SMTP/9\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (b"GET /x HTTP/1.1 extra\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (b"POST /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                |e| matches!(e, HttpError::Malformed(_)),
            ),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                |e| *e == HttpError::Closed,
            ),
            (b"\xff\xfe /x HTTP/1.1\r\n\r\n", |e| {
                matches!(e, HttpError::Malformed(_))
            }),
        ];
        for (bytes, check) in cases {
            let err = read(bytes).expect_err("hostile input must not parse");
            assert!(check(&err), "unexpected error {err:?} for {bytes:?}");
        }
    }

    #[test]
    fn size_caps_bound_memory() {
        let limits = Limits {
            max_head: 64,
            max_body: 16,
        };
        let huge_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert_eq!(
            read_request(&mut huge_head.as_bytes(), limits),
            Err(HttpError::HeadTooLarge)
        );
        // An oversized declared body is refused before reading any of it.
        let big = b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(
            read_request(&mut &big[..], limits),
            Err(HttpError::BodyTooLarge)
        );
    }

    #[test]
    fn error_status_mapping_is_total_for_respondable_errors() {
        assert_eq!(HttpError::Closed.status(), None);
        assert_eq!(HttpError::Malformed("x".into()).status(), Some(400));
        assert_eq!(HttpError::HeadTooLarge.status(), Some(431));
        assert_eq!(HttpError::BodyTooLarge.status(), Some(413));
        assert_eq!(HttpError::Timeout.status(), Some(408));
    }

    #[test]
    fn responses_are_well_formed() {
        let bytes = response_bytes(202, "{\"job\":1}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 9\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"job\":1}"));
    }
}
