//! Minimal dependency-free JSON parsing — just enough of the grammar for
//! the service wire format and the bench-trajectory reports (objects,
//! arrays, strings, numbers, booleans, null). No serde in the offline
//! dependency set.
//!
//! This began life in `dqma_bench` (which still re-exports it for the
//! `bench_compare` tooling) and moved here when the serving layer made it
//! load-bearing for request parsing: a hostile request body must produce a
//! structured `Err`, never a panic, and the parser is fully recursive-free
//! on strings/numbers with explicit bounds checks throughout.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Parsed {
    /// `null` (also what non-finite numbers serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Parsed>),
    /// An object, in source order.
    Obj(Vec<(String, Parsed)>),
}

impl Parsed {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Parsed> {
        match self {
            Parsed::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Parsed::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Parsed::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Parsed]> {
        match self {
            Parsed::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields in source order, if the value is an object.
    pub fn fields(&self) -> Option<&[(String, Parsed)]> {
        match self {
            Parsed::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Maximum container nesting depth accepted by [`parse`]. Deeply nested
/// hostile documents (`[[[[…]]]]`) would otherwise recurse the parser off
/// the stack — the wire format never nests more than a handful of levels.
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Parsed, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Parsed, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Parsed::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Parsed::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Parsed::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Parsed::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Parsed::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Parsed::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Parsed::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Parsed::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Parsed,
) -> Result<Parsed, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Parsed, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Parsed::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    // Accumulate raw bytes and decode once: multi-byte UTF-8 sequences in
    // the source must pass through intact, not be widened byte-by-byte.
    let mut out: Vec<u8> = Vec::new();
    let push_char = |out: &mut Vec<u8>, c: char| {
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
    };
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|_| "invalid UTF-8 string".to_string()),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(8),
                    b'f' => out.push(12),
                    b'u' => {
                        let mut unit = parse_hex4(bytes, pos)?;
                        // Surrogate pair: a high surrogate must combine
                        // with an immediately following \uXXXX low half.
                        if (0xD800..0xDC00).contains(&unit)
                            && bytes.get(*pos) == Some(&b'\\')
                            && bytes.get(*pos + 1) == Some(&b'u')
                        {
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if (0xDC00..0xE000).contains(&low) {
                                unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            }
                        }
                        push_char(&mut out, char::from_u32(unit).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or("invalid \\u escape")?;
    *pos += 4;
    Ok(hex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let parsed = parse(r#"{"a": [1, -2.5e3, true, null], "b": "x\"y"}"#).unwrap();
        let arr = parsed.get("a").and_then(Parsed::as_arr).unwrap();
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2], Parsed::Bool(true));
        assert_eq!(parsed.get("b").and_then(Parsed::as_str), Some("x\"y"));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn parser_preserves_utf8_and_surrogate_pairs() {
        let parsed = parse("{\"name\": \"µs_per_op\"}").unwrap();
        assert_eq!(
            parsed.get("name").and_then(Parsed::as_str),
            Some("µs_per_op")
        );
        let parsed = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
    }

    #[test]
    fn hostile_nesting_is_a_structured_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(parse(&ok).is_ok());
    }
}
