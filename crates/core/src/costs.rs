//! Closed-form cost formulas for every row of the paper's Tables 1–3.
//!
//! The benchmark harness prints, for each experiment, the paper's asymptotic
//! bound (evaluated with constant 1) next to the cost measured from the
//! implemented protocol, so the *shape* agreement (scaling in `n`, `r`, `t`)
//! can be read off directly. These helpers are deliberately tiny — they exist
//! so the tables have a single authoritative source for the formulas.

use commproto::sdisc::HardProblem;

fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Table 1, row 1 — FGNP21's EQ protocol: local proof `O(t·r²·log n)`.
pub fn table1_fgnp_eq_local(n: usize, r: usize, t: usize) -> f64 {
    (t * r * r) as f64 * log2n(n)
}

/// Table 1, row 2 — FGNP21's protocol from a one-way protocol of cost `s`:
/// local proof `O(r²·s·log(n + r))`.
pub fn table1_fgnp_oneway_local(n: usize, r: usize, s: usize) -> f64 {
    (r * r * s) as f64 * ((n + r).max(2) as f64).log2()
}

/// Table 1, row 3 — classical dMA lower bound for EQ with `ν` rounds:
/// local proof `Ω(n/ν)`.
pub fn table1_classical_local(n: usize, rounds: usize) -> f64 {
    n as f64 / rounds.max(1) as f64
}

/// Table 2, row 1 — this paper's EQ protocol (Theorem 19): local proof
/// `O(r²·log n)`, independent of `t`.
pub fn table2_eq_local(n: usize, r: usize) -> f64 {
    (r * r) as f64 * log2n(n)
}

/// Table 2, row 2 — the relay-point protocol (Theorem 22): total proof
/// `Õ(r·n^{2/3})`.
pub fn table2_relay_total(n: usize, r: usize) -> f64 {
    r as f64 * (n as f64).powf(2.0 / 3.0) * log2n(n)
}

/// Table 2, row 3 — the classical dMA lower bound (Corollary 25): total proof
/// `Ω(r·n)`.
pub fn table2_classical_total(n: usize, r: usize) -> f64 {
    (r * n) as f64
}

/// Table 2, row 4 — GT (Theorem 26): local proof `O(r²·log n)`.
pub fn table2_gt_local(n: usize, r: usize) -> f64 {
    table2_eq_local(n, r)
}

/// Table 2, row 5 — ranking verification (Theorem 29): local proof
/// `O(t·r²·log n)`.
pub fn table2_rv_local(n: usize, r: usize, t: usize) -> f64 {
    (t * r * r) as f64 * log2n(n)
}

/// Table 2, row 6 — `∀t f` from a one-way protocol of cost `s` (Theorem 32):
/// local proof `O(t²·r²·s·log(n + t + r))`.
pub fn table2_forall_local(n: usize, r: usize, t: usize, s: usize) -> f64 {
    (t * t * r * r * s) as f64 * ((n + t + r).max(2) as f64).log2()
}

/// Table 2, row 7 — functions with a QMA communication protocol of cost `c`
/// (Proposition 47): local proof `O(r²·log r·poly(c))` with `poly = c²`.
pub fn table2_qmacc_local(r: usize, c: usize) -> f64 {
    (r * r) as f64 * (r.max(2) as f64).log2() * (c * c) as f64
}

/// Table 2, row 8 — dQMAsep from any dQMA protocol of total cost `c`
/// (Theorem 46): local proof `Õ(r²·c²)`.
pub fn table2_dqmasep_local(r: usize, c: f64) -> f64 {
    (r * r) as f64 * c * c * c.max(2.0).log2()
}

/// Table 3, row 1 — dQMAsep,sep lower bound (Theorem 51): total proof
/// `Ω(r·log n)`.
pub fn table3_sepsep_total(n: usize, r: usize) -> f64 {
    r as f64 * log2n(n)
}

/// Table 3, row 2 — entangled-proof bound `Ω((log n)^{1/2−ε} / r^{1+ε})`
/// (Theorem 52).
pub fn table3_entangled_ratio(n: usize, r: usize, eps: f64) -> f64 {
    log2n(n).powf(0.5 - eps) / (r as f64).powf(1.0 + eps)
}

/// Table 3, row 3 — `Ω(r)` for any non-constant function (Corollary 55).
pub fn table3_r_bound(r: usize) -> f64 {
    r as f64
}

/// Table 3, row 4 — the combined `Ω((log n)^{1/4−ε})` bound (Theorem 56).
pub fn table3_combined(n: usize, eps: f64) -> f64 {
    log2n(n).powf(0.25 - eps)
}

/// Table 3, rows 5–7 — DISJ / IP / PAND bounds (Corollaries 64–66).
pub fn table3_hard_problem(problem: HardProblem, n: usize) -> f64 {
    commproto::sdisc::dqma_total_lower_bound(problem, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_vs_table2_shows_the_t_improvement() {
        let (n, r, t) = (1 << 10, 4, 8);
        assert!(table1_fgnp_eq_local(n, r, t) > table2_eq_local(n, r) * (t as f64 - 0.5));
    }

    #[test]
    fn table2_relay_beats_classical_total_asymptotically() {
        // For n large enough relative to r, Õ(r n^{2/3}) < Ω(r n).
        let r = 32;
        let n = 1 << 30;
        assert!(table2_relay_total(n, r) < table2_classical_total(n, r));
        // While for small n the classical total can be smaller — the crossover
        // the benchmarks chart.
        let n_small = 1 << 6;
        assert!(table2_relay_total(n_small, r) > table2_classical_total(n_small, r));
    }

    #[test]
    fn table2_quantum_exponentially_beats_table1_classical_in_n() {
        let r = 3;
        let n = 1 << 20;
        assert!(table2_eq_local(n, r) < table1_classical_local(n, 1));
        assert!(table2_gt_local(n, r) < table1_classical_local(n, 1));
    }

    #[test]
    fn table3_lower_bounds_sit_below_table2_upper_bounds() {
        let (n, r) = (1 << 12, 4);
        assert!(table3_sepsep_total(n, r) < table2_eq_local(n, r) * (r as f64 + 1.0));
        assert!(table3_combined(n, 0.01) < table2_eq_local(n, r));
        assert!(table3_r_bound(r) < table2_eq_local(n, r));
    }

    #[test]
    fn monotonicity_in_every_parameter() {
        assert!(table2_eq_local(1 << 8, 6) > table2_eq_local(1 << 8, 3));
        assert!(table2_rv_local(1 << 8, 3, 8) > table2_rv_local(1 << 8, 3, 4));
        assert!(table2_forall_local(1 << 8, 3, 4, 10) > table2_forall_local(1 << 8, 3, 4, 5));
        assert!(table2_qmacc_local(8, 10) > table2_qmacc_local(4, 10));
        assert!(table2_dqmasep_local(4, 20.0) > table2_dqmasep_local(4, 10.0));
        assert!(
            table3_hard_problem(HardProblem::InnerProduct, 256)
                > table3_hard_problem(HardProblem::Disjointness, 256)
        );
    }
}
