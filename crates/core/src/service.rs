//! The dQMA verification *service* — one facade over instance construction
//! and trial sampling, shared by the `dqma-server` daemon, the `dqma-cli`
//! client, and the load/chaos benches.
//!
//! The compute layers below ([`crate::trials`], the compiled round plans,
//! the TCP fleet) answer "how fast can we sample"; this module answers "how
//! do we *serve* that safely". Its design center is overload robustness —
//! the serving-layer extension of the paper's soundness story (dQMA stays
//! sound under arbitrary message behaviour, so the daemon in front of it
//! must degrade to explicit errors and partial reports, never silent
//! rejects or hangs):
//!
//! * **Bounded admission** — [`Service::submit`] holds a fixed-capacity
//!   queue; a full queue sheds with [`SubmitError::Overloaded`] instead of
//!   growing without bound. Queue memory is `O(queue_capacity)` always.
//! * **Deadlines → partial reports** — each job may carry a deadline,
//!   measured from *submission* (queue wait counts). The engine
//!   ([`crate::trials::run_trials_observed`]) checks it at 8192-trial block
//!   boundaries and an expired job returns a *partial* [`JobReport`] with
//!   its Wilson interval over the trials actually sampled, freeing the
//!   worker for the next job.
//! * **Crash-safe jobs** — with a journal configured, admitted jobs and
//!   completed full blocks are appended to an append-only line journal.
//!   [`Service::start`] replays it: finished jobs stay queryable, unfinished
//!   jobs re-enqueue, and journaled blocks seed the block memo so resumed
//!   work is **bit-identical** to an uninterrupted run (the block
//!   determinism contract: a block's accept count is a pure function of
//!   `(instance, seed, block)`).
//! * **Shared trial blocks** — concurrent or repeated requests for the same
//!   `(instance, seed)` are merged at block granularity through an
//!   in-memory memo (bounded, FIFO-evicted): a block sampled for one job is
//!   reused by every other job that needs it, attributably, because the
//!   count is deterministic. Compiled round plans are likewise cached and
//!   shared per instance key.
//! * **Panic containment** — a worker panic (including the chaos-injected
//!   ones the battery uses) fails only that job, with
//!   [`JobStatus::Failed`]; the worker thread survives and serves the next
//!   job.
//!
//! [`http`] holds the minimal hand-rolled HTTP/1.1 layer (std-only, offline
//! build — no tokio/hyper), [`route`] maps requests onto a [`Service`], and
//! [`client`] is the blocking client used by the CLI and the benches. The
//! [`json`] submodule is the workspace's dependency-free JSON parser
//! (re-exported by `dqma_bench` for the bench-trajectory tooling).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use netsim::topology;

use crate::chain::{ChainCheat, ChainRoundPlan};
use crate::cluster::Tokens;
use crate::eq_path::EqPathProtocol;
use crate::eq_tree::{EqTreeProtocol, TreeRoundPlan};
use crate::relay::{RelayEqProtocol, RelayRoundPlan};
use crate::trials::{run_trials_observed, stats, BatchSampler, BlockRng, BLOCK_TRIALS};

pub mod http;
pub mod json;

// ---------------------------------------------------------------------------
// Instance specs
// ---------------------------------------------------------------------------

/// A named cheating-prover strategy for the path-shaped protocols (see
/// [`ChainCheat`]). With equal inputs every strategy degenerates to the
/// honest proof, so "honest completeness" is just `x == y` plus any cheat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheatSpec {
    /// Interpolate fingerprints along the chain (the soundness-saturating
    /// strategy).
    Interpolate,
    /// Send the left fingerprint everywhere.
    AllLeft,
    /// Send the right fingerprint everywhere.
    AllRight,
}

impl CheatSpec {
    fn as_str(self) -> &'static str {
        match self {
            CheatSpec::Interpolate => "interpolate",
            CheatSpec::AllLeft => "all_left",
            CheatSpec::AllRight => "all_right",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "interpolate" => Ok(CheatSpec::Interpolate),
            "all_left" => Ok(CheatSpec::AllLeft),
            "all_right" => Ok(CheatSpec::AllRight),
            _ => Err(format!("unknown cheat {s:?}")),
        }
    }

    fn to_chain(self) -> ChainCheat {
        match self {
            CheatSpec::Interpolate => ChainCheat::Interpolate,
            CheatSpec::AllLeft => ChainCheat::AllLeft,
            CheatSpec::AllRight => ChainCheat::AllRight,
        }
    }
}

/// A fully-described verification instance: which protocol, on which
/// inputs, against which prover. The spec is the service's unit of
/// identity — [`InstanceSpec::key`] keys the compiled-plan cache and the
/// shared block memo, and [`InstanceSpec::encode`] is the canonical journal
/// form.
///
/// Inputs are `bits`-bit strings carried as integers (`bits ≤ 16`, ample
/// for the fingerprint schemes the small exact simulator can hold); the
/// JSON wire form writes them as `"0101…"` strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceSpec {
    /// The improved EQ protocol `Pπ[k]` on a path of length `r` (§3.2).
    EqPath {
        /// Path length (number of intermediate nodes + 1).
        r: usize,
        /// Input width in bits.
        bits: usize,
        /// Left input.
        x: u64,
        /// Right input.
        y: u64,
        /// Fingerprint-scheme seed.
        scheme_seed: u64,
        /// Protocol repetitions (≥ 1).
        reps: usize,
        /// Prover strategy.
        cheat: CheatSpec,
    },
    /// The relay-point protocol on a path of length `r` (§4.1).
    Relay {
        /// Path length.
        r: usize,
        /// Input width in bits.
        bits: usize,
        /// Left input.
        x: u64,
        /// Right input.
        y: u64,
        /// Protocol seed (fingerprint scheme + relay spacing).
        seed: u64,
        /// Prover strategy.
        cheat: CheatSpec,
    },
    /// EQ on a spider graph with `arms` legs of `arm_len` edges (§3.3):
    /// every terminal leaf claims `x` except the last, which holds `y`.
    EqTree {
        /// Number of legs (terminals).
        arms: usize,
        /// Edges per leg.
        arm_len: usize,
        /// Input width in bits.
        bits: usize,
        /// Input at all but the last terminal (also the prover's claim).
        x: u64,
        /// Input at the last terminal.
        y: u64,
        /// Fingerprint-scheme seed.
        scheme_seed: u64,
        /// Protocol repetitions (≥ 1).
        reps: usize,
    },
}

/// Admission caps on instance shape, enforced by [`InstanceSpec::validate`]
/// before any compilation: requests outside them are rejected with a
/// structured error at the door, so a hostile spec can never drive the
/// exact simulator into an unbounded allocation.
pub mod limits {
    /// Maximum input width in bits.
    pub const MAX_BITS: usize = 16;
    /// Maximum path length for `eq_path` / `relay`.
    pub const MAX_R: usize = 256;
    /// Maximum repetitions.
    pub const MAX_REPS: usize = 16;
    /// Maximum spider legs.
    pub const MAX_ARMS: usize = 8;
    /// Maximum edges per spider leg.
    pub const MAX_ARM_LEN: usize = 7;
}

impl InstanceSpec {
    /// Checks the spec against the admission caps in [`limits`].
    pub fn validate(&self) -> Result<(), String> {
        let check_bits = |bits: usize, x: u64, y: u64| -> Result<(), String> {
            if bits == 0 || bits > limits::MAX_BITS {
                return Err(format!("bits {bits} outside 1..={}", limits::MAX_BITS));
            }
            let cap = 1u64 << bits;
            if x >= cap || y >= cap {
                return Err(format!("input exceeds {bits} bits"));
            }
            Ok(())
        };
        let check_reps = |reps: usize| -> Result<(), String> {
            if reps == 0 || reps > limits::MAX_REPS {
                return Err(format!("reps {reps} outside 1..={}", limits::MAX_REPS));
            }
            Ok(())
        };
        match *self {
            InstanceSpec::EqPath {
                r,
                bits,
                x,
                y,
                reps,
                ..
            } => {
                if r == 0 || r > limits::MAX_R {
                    return Err(format!("r {r} outside 1..={}", limits::MAX_R));
                }
                check_reps(reps)?;
                check_bits(bits, x, y)
            }
            InstanceSpec::Relay { r, bits, x, y, .. } => {
                if !(3..=limits::MAX_R).contains(&r) {
                    return Err(format!("r {r} outside 3..={}", limits::MAX_R));
                }
                check_bits(bits, x, y)
            }
            InstanceSpec::EqTree {
                arms,
                arm_len,
                bits,
                x,
                y,
                reps,
                ..
            } => {
                if !(2..=limits::MAX_ARMS).contains(&arms) {
                    return Err(format!("arms {arms} outside 2..={}", limits::MAX_ARMS));
                }
                if arm_len == 0 || arm_len > limits::MAX_ARM_LEN {
                    return Err(format!(
                        "arm_len {arm_len} outside 1..={}",
                        limits::MAX_ARM_LEN
                    ));
                }
                check_reps(reps)?;
                check_bits(bits, x, y)
            }
        }
    }

    /// Serialises the spec to its single-line token form (the journal and
    /// canonical-identity encoding). Inverse of [`InstanceSpec::decode`].
    pub fn encode(&self) -> String {
        match *self {
            InstanceSpec::EqPath {
                r,
                bits,
                x,
                y,
                scheme_seed,
                reps,
                cheat,
            } => format!(
                "eq_path {r} {bits} {x:x} {y:x} {scheme_seed} {reps} {}",
                cheat.as_str()
            ),
            InstanceSpec::Relay {
                r,
                bits,
                x,
                y,
                seed,
                cheat,
            } => format!("relay {r} {bits} {x:x} {y:x} {seed} {}", cheat.as_str()),
            InstanceSpec::EqTree {
                arms,
                arm_len,
                bits,
                x,
                y,
                scheme_seed,
                reps,
            } => format!("eq_tree {arms} {arm_len} {bits} {x:x} {y:x} {scheme_seed} {reps}"),
        }
    }

    /// Parses the token form produced by [`InstanceSpec::encode`]. Every
    /// malformed input yields a structured error, never a panic.
    pub fn decode(line: &str) -> Result<InstanceSpec, String> {
        let mut tok = Tokens::new(line);
        let spec = Self::decode_tokens(&mut tok)?;
        if tok.next_str().is_some() {
            return Err("trailing tokens after instance spec".to_string());
        }
        Ok(spec)
    }

    pub(crate) fn decode_tokens(tok: &mut Tokens<'_>) -> Result<InstanceSpec, String> {
        let spec = match tok.expect()? {
            "eq_path" => InstanceSpec::EqPath {
                r: tok.usize()?,
                bits: tok.usize()?,
                x: tok.hex_u64()?,
                y: tok.hex_u64()?,
                scheme_seed: tok.u64()?,
                reps: tok.usize()?,
                cheat: CheatSpec::from_str(tok.expect()?)?,
            },
            "relay" => InstanceSpec::Relay {
                r: tok.usize()?,
                bits: tok.usize()?,
                x: tok.hex_u64()?,
                y: tok.hex_u64()?,
                seed: tok.u64()?,
                cheat: CheatSpec::from_str(tok.expect()?)?,
            },
            "eq_tree" => InstanceSpec::EqTree {
                arms: tok.usize()?,
                arm_len: tok.usize()?,
                bits: tok.usize()?,
                x: tok.hex_u64()?,
                y: tok.hex_u64()?,
                scheme_seed: tok.u64()?,
                reps: tok.usize()?,
            },
            t => return Err(format!("unknown protocol {t:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Builds the spec from its JSON wire form (the `"instance"` object of
    /// a submit request; see [`InstanceSpec::to_json`]).
    pub fn from_json(v: &json::Parsed) -> Result<InstanceSpec, String> {
        let proto = v
            .get("protocol")
            .and_then(json::Parsed::as_str)
            .ok_or("missing \"protocol\"")?;
        let bits = get_u64(v, "bits")? as usize;
        let input = |key: &str| -> Result<u64, String> {
            let s = v
                .get(key)
                .and_then(json::Parsed::as_str)
                .ok_or_else(|| format!("missing input {key:?} (a \"01…\" string)"))?;
            if s.is_empty() || s.len() != bits {
                return Err(format!(
                    "input {key:?} must be exactly {bits} binary digits"
                ));
            }
            u64::from_str_radix(s, 2).map_err(|_| format!("input {key:?} is not binary"))
        };
        let (x, y) = (input("x")?, input("y")?);
        let cheat = match v.get("cheat").and_then(json::Parsed::as_str) {
            Some(s) => CheatSpec::from_str(s)?,
            None => CheatSpec::Interpolate,
        };
        let scheme_seed = opt_u64(v, "scheme_seed")?.unwrap_or(7);
        let reps = opt_u64(v, "reps")?.unwrap_or(2) as usize;
        let spec = match proto {
            "eq_path" => InstanceSpec::EqPath {
                r: get_u64(v, "r")? as usize,
                bits,
                x,
                y,
                scheme_seed,
                reps,
                cheat,
            },
            "relay" => InstanceSpec::Relay {
                r: get_u64(v, "r")? as usize,
                bits,
                x,
                y,
                seed: scheme_seed,
                cheat,
            },
            "eq_tree" => InstanceSpec::EqTree {
                arms: get_u64(v, "arms")? as usize,
                arm_len: get_u64(v, "arm_len")? as usize,
                bits,
                x,
                y,
                scheme_seed,
                reps,
            },
            _ => return Err(format!("unknown protocol {proto:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialises the spec to its JSON wire form. Inverse of
    /// [`InstanceSpec::from_json`].
    pub fn to_json(&self) -> String {
        let bin = |v: u64, bits: usize| format!("{v:0bits$b}");
        match *self {
            InstanceSpec::EqPath {
                r,
                bits,
                x,
                y,
                scheme_seed,
                reps,
                cheat,
            } => format!(
                "{{\"protocol\":\"eq_path\",\"r\":{r},\"bits\":{bits},\"x\":\"{}\",\
                 \"y\":\"{}\",\"scheme_seed\":{scheme_seed},\"reps\":{reps},\"cheat\":\"{}\"}}",
                bin(x, bits),
                bin(y, bits),
                cheat.as_str()
            ),
            InstanceSpec::Relay {
                r,
                bits,
                x,
                y,
                seed,
                cheat,
            } => format!(
                "{{\"protocol\":\"relay\",\"r\":{r},\"bits\":{bits},\"x\":\"{}\",\
                 \"y\":\"{}\",\"scheme_seed\":{seed},\"cheat\":\"{}\"}}",
                bin(x, bits),
                bin(y, bits),
                cheat.as_str()
            ),
            InstanceSpec::EqTree {
                arms,
                arm_len,
                bits,
                x,
                y,
                scheme_seed,
                reps,
            } => format!(
                "{{\"protocol\":\"eq_tree\",\"arms\":{arms},\"arm_len\":{arm_len},\
                 \"bits\":{bits},\"x\":\"{}\",\"y\":\"{}\",\"scheme_seed\":{scheme_seed},\
                 \"reps\":{reps}}}",
                bin(x, bits),
                bin(y, bits)
            ),
        }
    }

    /// The spec's identity hash (FNV-1a over the canonical encoding) —
    /// keys the plan cache, the block memo, and the journal's `blk` lines.
    pub fn key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.encode().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Compiles the instance into its shared round plan. Specs that pass
    /// [`InstanceSpec::validate`] always compile.
    pub fn compile(&self) -> CompiledPlan {
        match *self {
            InstanceSpec::EqPath {
                r,
                bits,
                x,
                y,
                scheme_seed,
                reps,
                cheat,
            } => {
                let proto = EqPathProtocol::with_scheme(
                    r,
                    FingerprintScheme::small(bits, scheme_seed),
                    reps,
                );
                let (x, y) = (BitString::from_u64(x, bits), BitString::from_u64(y, bits));
                CompiledPlan::Chain(proto.round_plan(&x, &y, cheat.to_chain()))
            }
            InstanceSpec::Relay {
                r,
                bits,
                x,
                y,
                seed,
                cheat,
            } => {
                let proto = RelayEqProtocol::new(bits, r, seed);
                let (x, y) = (BitString::from_u64(x, bits), BitString::from_u64(y, bits));
                let strings = vec![x.clone(); proto.relay_points().len()];
                CompiledPlan::Relay(proto.round_plan(&x, &y, &strings, cheat.to_chain()))
            }
            InstanceSpec::EqTree {
                arms,
                arm_len,
                bits,
                x,
                y,
                scheme_seed,
                reps,
            } => {
                let g = topology::spider(arms, arm_len);
                let terminals: Vec<usize> = (0..arms)
                    .map(|k| topology::spider_leaf(k, arm_len))
                    .collect();
                let proto = EqTreeProtocol::with_scheme(
                    &g,
                    &terminals,
                    FingerprintScheme::small(bits, scheme_seed),
                    reps,
                );
                let x = BitString::from_u64(x, bits);
                let mut inputs = vec![x.clone(); terminals.len()];
                *inputs.last_mut().expect("arms >= 2") = BitString::from_u64(y, bits);
                let proof = proto.uniform_proof(&x);
                CompiledPlan::Tree(proto.round_plan(&inputs, &proof))
            }
        }
    }
}

fn get_u64(v: &json::Parsed, key: &str) -> Result<u64, String> {
    opt_u64(v, key)?.ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn opt_u64(v: &json::Parsed, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(json::Parsed::Null) => Ok(None),
        Some(f) => {
            let x = f
                .as_num()
                .ok_or_else(|| format!("field {key:?} is not a number"))?;
            if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
                return Err(format!("field {key:?} is not a non-negative integer"));
            }
            Ok(Some(x as u64))
        }
    }
}

/// A compiled, protocol-agnostic round plan — the sampling unit the
/// service caches and shares per [`InstanceSpec::key`].
#[derive(Clone, Debug)]
pub enum CompiledPlan {
    /// A path-protocol plan.
    Chain(ChainRoundPlan),
    /// A relay-protocol plan.
    Relay(RelayRoundPlan),
    /// A tree-protocol plan.
    Tree(TreeRoundPlan),
}

impl BatchSampler for CompiledPlan {
    type Scratch = ();
    fn scratch(&self) {}
    fn sample_block(&self, trials: u64, _s: &mut (), stream: &BlockRng) -> u64 {
        match self {
            CompiledPlan::Chain(p) => p.sample_block(trials, &mut (), stream),
            CompiledPlan::Relay(p) => p.sample_block(trials, &mut (), stream),
            CompiledPlan::Tree(p) => p.sample_block(trials, &mut (), stream),
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Job identifier, unique per journal lineage (stable across restarts).
pub type JobId = u64;

/// Chaos-injection directives, honoured only when
/// [`ServiceConfig::allow_chaos`] is set (the battery's fault hooks must
/// never be reachable from ordinary traffic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosSpec {
    /// Panic the worker right after sampling the given block — exercises
    /// panic containment and journal consistency.
    PanicAtBlock(u64),
}

/// One admitted unit of work: an instance, a trial budget, a seed, and an
/// optional deadline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// What to sample.
    pub instance: InstanceSpec,
    /// Requested number of trials.
    pub trials: u64,
    /// Master seed of the block-deterministic RNG streams.
    pub seed: u64,
    /// Deadline in milliseconds from submission; `None` falls back to
    /// [`ServiceConfig::default_deadline_ms`].
    pub deadline_ms: Option<u64>,
    /// Chaos directive (rejected unless the service allows chaos).
    pub chaos: Option<ChaosSpec>,
}

impl JobSpec {
    /// Journal token form: `<seed> <trials> <deadline_ms|-> <panic_block|->
    /// <instance…>`.
    pub fn encode(&self) -> String {
        let dl = self
            .deadline_ms
            .map_or_else(|| "-".to_string(), |d| d.to_string());
        let chaos = match self.chaos {
            Some(ChaosSpec::PanicAtBlock(b)) => b.to_string(),
            None => "-".to_string(),
        };
        format!(
            "{} {} {dl} {chaos} {}",
            self.seed,
            self.trials,
            self.instance.encode()
        )
    }

    /// Parses the token form produced by [`JobSpec::encode`].
    pub fn decode(line: &str) -> Result<JobSpec, String> {
        let mut tok = Tokens::new(line);
        let seed = tok.u64()?;
        let trials = tok.u64()?;
        let opt = |t: &str| -> Result<Option<u64>, String> {
            if t == "-" {
                Ok(None)
            } else {
                t.parse().map(Some).map_err(|_| format!("bad token {t:?}"))
            }
        };
        let deadline_ms = opt(tok.expect()?)?;
        let chaos = opt(tok.expect()?)?.map(ChaosSpec::PanicAtBlock);
        let instance = InstanceSpec::decode_tokens(&mut tok)?;
        if tok.next_str().is_some() {
            return Err("trailing tokens after job spec".to_string());
        }
        Ok(JobSpec {
            instance,
            trials,
            seed,
            deadline_ms,
            chaos,
        })
    }

    /// Builds the spec from the JSON body of a `POST /v1/jobs` request:
    /// `{"instance": {…}, "trials": n, "seed": s, "deadline_ms": d?,
    /// "chaos_panic_block": b?}`.
    pub fn from_json(v: &json::Parsed) -> Result<JobSpec, String> {
        let instance = InstanceSpec::from_json(v.get("instance").ok_or("missing \"instance\"")?)?;
        let trials = get_u64(v, "trials")?;
        let seed = opt_u64(v, "seed")?.unwrap_or(0);
        let deadline_ms = opt_u64(v, "deadline_ms")?;
        let chaos = opt_u64(v, "chaos_panic_block")?.map(ChaosSpec::PanicAtBlock);
        Ok(JobSpec {
            instance,
            trials,
            seed,
            deadline_ms,
            chaos,
        })
    }

    /// Serialises the spec to the submit-request JSON body.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"instance\":{},\"trials\":{},\"seed\":{}",
            self.instance.to_json(),
            self.trials,
            self.seed
        );
        if let Some(d) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if let Some(ChaosSpec::PanicAtBlock(b)) = self.chaos {
            out.push_str(&format!(",\"chaos_panic_block\":{b}"));
        }
        out.push('}');
        out
    }
}

/// The final accounting of a finished (or deadline-expired) job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobReport {
    /// Trials the client asked for.
    pub requested: u64,
    /// Trials actually sampled (`< requested` iff `partial`).
    pub completed: u64,
    /// Accepting trials among the completed ones.
    pub accepts: u64,
    /// Whether the deadline expired before the full budget ran.
    pub partial: bool,
    /// Wall clock spent sampling (zero for reports replayed from a
    /// journal, whose wall clock belongs to a previous process life).
    pub elapsed: Duration,
}

impl JobReport {
    /// Empirical acceptance rate over the completed trials.
    pub fn acceptance_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.accepts as f64 / self.completed as f64
        }
    }

    /// Wilson score interval over the completed trials — the honest
    /// uncertainty statement a partial report ships with.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        stats::wilson_interval(self.accepts, self.completed, z)
    }

    /// Sampled rounds per second of wall clock (zero when unknown).
    pub fn rounds_per_sec(&self) -> f64 {
        let ns = self.elapsed.as_nanos();
        if ns == 0 {
            0.0
        } else {
            self.completed as f64 * 1e9 / ns as f64
        }
    }
}

/// A point-in-time view of one job's life cycle. Every admitted job ends
/// in [`JobStatus::Done`] (complete or partial) or [`JobStatus::Failed`]
/// (explicit abort) — never silence.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// On a worker.
    Running {
        /// Trials finished so far.
        completed: u64,
        /// Trials requested.
        requested: u64,
    },
    /// Finished (the report says whether it was cut short by a deadline).
    Done(JobReport),
    /// Explicitly aborted — the payload is the reason (e.g. a contained
    /// worker panic).
    Failed(String),
}

impl JobStatus {
    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_))
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full — explicit load shedding, the caller
    /// should back off and retry.
    Overloaded {
        /// Queue length at refusal (== capacity).
        queue_len: usize,
    },
    /// The spec itself is unacceptable (validation or policy).
    Invalid(String),
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// Service knobs. `Default` is sized for tests; the server binary maps its
/// flags onto this.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it shed.
    pub queue_capacity: usize,
    /// Hard cap on a single job's trial budget.
    pub max_trials: u64,
    /// Deadline applied to jobs that carry none (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Append-only journal path; `None` disables crash recovery.
    pub journal: Option<PathBuf>,
    /// Block-memo capacity (FIFO-evicted); bounds memo memory.
    pub memo_capacity: usize,
    /// Whether chaos directives in job specs are honoured.
    pub allow_chaos: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_trials: 1 << 22,
            default_deadline_ms: None,
            journal: None,
            memo_capacity: 4096,
            allow_chaos: false,
        }
    }
}

/// Monotone service counters — the observability surface `GET /v1/healthz`
/// exposes and the chaos battery audits (e.g. *zero silent rejects* is
/// `submitted == completed + failed + still-live`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions shed for overload.
    pub shed: u64,
    /// Jobs finished with a full report.
    pub completed: u64,
    /// Jobs finished with a partial (deadline-expired) report.
    pub partial: u64,
    /// Jobs explicitly aborted (worker panic or poisoned state).
    pub failed: u64,
    /// Jobs re-enqueued by journal recovery.
    pub resumed: u64,
    /// Blocks served from the shared memo instead of resampled.
    pub memo_hits: u64,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    partial: AtomicU64,
    failed: AtomicU64,
    resumed: AtomicU64,
    memo_hits: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }
}

struct Job {
    spec: JobSpec,
    submitted: Instant,
    status: JobStatus,
}

#[derive(Default)]
struct State {
    queue: VecDeque<JobId>,
    jobs: BTreeMap<JobId, Job>,
    plans: HashMap<u64, Arc<CompiledPlan>>,
    memo: HashMap<(u64, u64, u64), u64>,
    memo_order: VecDeque<(u64, u64, u64)>,
    next_id: JobId,
    shutdown: bool,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    journal: Mutex<Option<File>>,
    stats: Stats,
}

impl Shared {
    /// Locks the state, recovering from poisoning: a contained worker
    /// panic must never wedge the whole service behind a poisoned mutex.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn journal_line(&self, line: &str) {
        let mut j = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = j.as_mut() {
            // Best-effort: journal write failures must not take down
            // serving (the journal degrades, recovery just resamples).
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }

    fn memo_insert(&self, st: &mut State, key: (u64, u64, u64), accepts: u64) {
        if st.memo.insert(key, accepts).is_none() {
            st.memo_order.push_back(key);
            while st.memo.len() > self.cfg.memo_capacity {
                if let Some(old) = st.memo_order.pop_front() {
                    st.memo.remove(&old);
                } else {
                    break;
                }
            }
        }
    }
}

/// The verification service: bounded admission, deadline-bounded sampling,
/// shared trial blocks, optional crash-safe journal. See the module docs
/// for the design; see [`route`] for the HTTP surface.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the service: replays the journal (if configured), re-enqueues
    /// unfinished jobs, and spawns the worker threads.
    pub fn start(cfg: ServiceConfig) -> io::Result<Service> {
        let mut st = State::default();
        let stats = Stats::default();
        let mut journal_file = None;
        if let Some(path) = &cfg.journal {
            if path.exists() {
                recover(&mut st, &stats, path, cfg.memo_capacity)?;
            }
            journal_file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        }
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(st),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            journal: Mutex::new(journal_file),
            stats,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dqma-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Service { shared, workers })
    }

    /// Admits a job, or refuses with a structured error. Admission is the
    /// only place work enters the service, and it either returns an id the
    /// caller can poll to a terminal state or an explicit refusal —
    /// never a silent drop.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        spec.instance.validate().map_err(SubmitError::Invalid)?;
        if spec.trials == 0 || spec.trials > self.shared.cfg.max_trials {
            return Err(SubmitError::Invalid(format!(
                "trials {} outside 1..={}",
                spec.trials, self.shared.cfg.max_trials
            )));
        }
        if spec.chaos.is_some() && !self.shared.cfg.allow_chaos {
            return Err(SubmitError::Invalid(
                "chaos injection disabled on this server".to_string(),
            ));
        }
        let mut st = self.shared.lock();
        if st.queue.len() >= self.shared.cfg.queue_capacity {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                queue_len: st.queue.len(),
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        self.shared
            .journal_line(&format!("job {id} {}", spec.encode()));
        st.jobs.insert(
            id,
            Job {
                spec,
                submitted: Instant::now(),
                status: JobStatus::Queued,
            },
        );
        st.queue.push_back(id);
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// The current status of a job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.lock().jobs.get(&id).map(|j| j.status.clone())
    }

    /// Blocks until `id` reaches a terminal state or `timeout` elapses;
    /// returns the latest status either way (`None` for an unknown id).
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            let status = st.jobs.get(&id)?.status.clone();
            if status.is_terminal() {
                return Some(status);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(status);
            }
            st = self
                .shared
                .done_cv
                .wait_timeout(st, left)
                .map(|(g, _)| g)
                .unwrap_or_else(|e| {
                    let (g, _) = e.into_inner();
                    g
                });
        }
    }

    /// Current admission-queue length.
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Current block-memo size (bounded by
    /// [`ServiceConfig::memo_capacity`]).
    pub fn memo_len(&self) -> usize {
        self.shared.lock().memo.len()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops the workers after their current jobs and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Replays an append-only journal into fresh state. Tolerant of a torn
/// final line (the crash case) and of unknown/corrupt lines: recovery
/// prefers resampling over refusing to start.
fn recover(
    st: &mut State,
    stats: &Stats,
    path: &std::path::Path,
    memo_cap: usize,
) -> io::Result<()> {
    let reader = BufReader::new(File::open(path)?);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let mut tok = Tokens::new(&line);
        match tok.next_str() {
            Some("job") => {
                let Ok(id) = tok.u64() else { continue };
                let rest = line
                    .splitn(3, char::is_whitespace)
                    .nth(2)
                    .unwrap_or_default();
                let Ok(spec) = JobSpec::decode(rest) else {
                    continue;
                };
                st.next_id = st.next_id.max(id + 1);
                st.jobs.insert(
                    id,
                    Job {
                        spec,
                        submitted: Instant::now(),
                        status: JobStatus::Queued,
                    },
                );
            }
            Some("blk") => {
                let (Ok(key), Ok(seed), Ok(block), Ok(accepts)) =
                    (tok.hex_u64(), tok.u64(), tok.u64(), tok.u64())
                else {
                    continue;
                };
                let k = (key, seed, block);
                if st.memo.insert(k, accepts).is_none() {
                    st.memo_order.push_back(k);
                    while st.memo.len() > memo_cap {
                        if let Some(old) = st.memo_order.pop_front() {
                            st.memo.remove(&old);
                        }
                    }
                }
            }
            Some("done") => {
                let (Ok(id), Ok(completed), Ok(accepts), Ok(partial), Ok(elapsed_ms)) =
                    (tok.u64(), tok.u64(), tok.u64(), tok.u64(), tok.u64())
                else {
                    continue;
                };
                if let Some(job) = st.jobs.get_mut(&id) {
                    job.status = JobStatus::Done(JobReport {
                        requested: job.spec.trials,
                        completed,
                        accepts,
                        partial: partial != 0,
                        elapsed: Duration::from_millis(elapsed_ms),
                    });
                }
            }
            Some("fail") => {
                let Ok(id) = tok.u64() else { continue };
                if let Some(job) = st.jobs.get_mut(&id) {
                    let msg = line
                        .splitn(3, char::is_whitespace)
                        .nth(2)
                        .unwrap_or("unknown failure");
                    job.status = JobStatus::Failed(msg.to_string());
                }
            }
            _ => {}
        }
    }
    // Re-enqueue unfinished jobs in admission order: the journal is the
    // source of truth for what was promised.
    let unfinished: Vec<JobId> = st
        .jobs
        .iter()
        .filter(|(_, j)| !j.status.is_terminal())
        .map(|(&id, _)| id)
        .collect();
    stats
        .resumed
        .fetch_add(unfinished.len() as u64, Ordering::Relaxed);
    stats
        .submitted
        .fetch_add(st.jobs.len() as u64, Ordering::Relaxed);
    st.queue.extend(unfinished);
    Ok(())
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec, submitted) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.status = JobStatus::Running {
                        completed: 0,
                        requested: job.spec.trials,
                    };
                    break (id, job.spec.clone(), job.submitted);
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| run_job(shared, id, &spec, submitted)));
        {
            let mut st = shared.lock();
            match result {
                Ok(report) => {
                    shared.journal_line(&format!(
                        "done {id} {} {} {} {}",
                        report.completed,
                        report.accepts,
                        report.partial as u64,
                        report.elapsed.as_millis()
                    ));
                    if report.partial {
                        shared.stats.partial.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(job) = st.jobs.get_mut(&id) {
                        job.status = JobStatus::Done(report);
                    }
                }
                Err(panic) => {
                    let msg = panic_message(panic.as_ref());
                    shared.journal_line(&format!("fail {id} {msg}"));
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(job) = st.jobs.get_mut(&id) {
                        job.status = JobStatus::Failed(msg);
                    }
                }
            }
        }
        shared.done_cv.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    let msg = panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    format!("worker panicked: {}", msg.replace(['\n', '\r'], " "))
}

fn run_job(shared: &Shared, id: JobId, spec: &JobSpec, submitted: Instant) -> JobReport {
    let key = spec.instance.key();
    let plan = {
        let cached = shared.lock().plans.get(&key).cloned();
        match cached {
            Some(p) => p,
            None => {
                // Compile outside the lock (scheme construction can be the
                // expensive part), then publish; a racing worker's copy
                // wins or loses harmlessly.
                let p = Arc::new(spec.instance.compile());
                shared
                    .lock()
                    .plans
                    .entry(key)
                    .or_insert_with(|| Arc::clone(&p));
                p
            }
        }
    };
    let deadline = spec
        .deadline_ms
        .or(shared.cfg.default_deadline_ms)
        .map(|ms| submitted + Duration::from_millis(ms));
    let chaos_block = match spec.chaos {
        Some(ChaosSpec::PanicAtBlock(b)) if shared.cfg.allow_chaos => Some(b),
        _ => None,
    };
    let seed = spec.seed;
    let report = run_trials_observed(
        plan.as_ref(),
        spec.trials,
        seed,
        deadline,
        &mut |b| {
            let hit = shared.lock().memo.get(&(key, seed, b)).copied();
            if hit.is_some() {
                shared.stats.memo_hits.fetch_add(1, Ordering::Relaxed);
            }
            hit
        },
        &mut |b, len, accepts| {
            if chaos_block == Some(b) {
                panic!("chaos: injected panic at block {b}");
            }
            if len == BLOCK_TRIALS {
                // Only full blocks are shareable and journalable: a short
                // tail block's length depends on the job's trial budget,
                // so it is recomputed (deterministically) instead.
                let mut st = shared.lock();
                shared.memo_insert(&mut st, (key, seed, b), accepts);
                shared.journal_line(&format!("blk {key:016x} {seed} {b} {accepts}"));
            }
            let mut st = shared.lock();
            if let Some(Job {
                status: JobStatus::Running { completed, .. },
                ..
            }) = st.jobs.get_mut(&id)
            {
                *completed += len;
            }
        },
    );
    JobReport {
        requested: spec.trials,
        completed: report.trials,
        accepts: report.accepts,
        partial: report.trials < spec.trials,
        elapsed: report.elapsed,
    }
}

// ---------------------------------------------------------------------------
// HTTP routing
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Renders one job status as the `GET /v1/jobs/<id>` response body.
pub fn status_json(id: JobId, status: &JobStatus) -> String {
    match status {
        JobStatus::Queued => format!("{{\"job\":{id},\"state\":\"queued\"}}"),
        JobStatus::Running {
            completed,
            requested,
        } => format!(
            "{{\"job\":{id},\"state\":\"running\",\"completed\":{completed},\
             \"requested\":{requested}}}"
        ),
        JobStatus::Done(r) => {
            let (lo, hi) = r.wilson_interval(1.96);
            format!(
                "{{\"job\":{id},\"state\":\"done\",\"requested\":{},\"completed\":{},\
                 \"accepts\":{},\"partial\":{},\"acceptance_rate\":{},\"wilson_lo\":{},\
                 \"wilson_hi\":{},\"elapsed_ms\":{},\"rounds_per_sec\":{}}}",
                r.requested,
                r.completed,
                r.accepts,
                r.partial,
                finite(r.acceptance_rate()),
                finite(lo),
                finite(hi),
                r.elapsed.as_millis(),
                finite(r.rounds_per_sec()),
            )
        }
        JobStatus::Failed(msg) => format!(
            "{{\"job\":{id},\"state\":\"aborted\",\"error\":\"{}\"}}",
            json_escape(msg)
        ),
    }
}

/// Maps one parsed HTTP request onto the service. Pure with respect to the
/// connection: the server binary (and the unit tests, without sockets)
/// feed it `(method, path, body)` and write back `(status, json_body)`.
///
/// Surface:
///
/// * `POST /v1/jobs` — submit; `202 {"job":id}`, `503` overloaded,
///   `400` invalid.
/// * `GET /v1/jobs/<id>` — status; `200` (see [`status_json`]) or `404`.
/// * `GET /v1/healthz` — liveness + counters.
pub fn route(svc: &Service, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("POST", "/v1/jobs") => {
            let parsed = match json::parse(body) {
                Ok(p) => p,
                Err(e) => {
                    return (
                        400,
                        format!("{{\"error\":\"bad json: {}\"}}", json_escape(&e)),
                    )
                }
            };
            let spec = match JobSpec::from_json(&parsed) {
                Ok(s) => s,
                Err(e) => return (400, format!("{{\"error\":\"{}\"}}", json_escape(&e))),
            };
            match svc.submit(spec) {
                Ok(id) => (202, format!("{{\"job\":{id}}}")),
                Err(SubmitError::Overloaded { queue_len }) => (
                    503,
                    format!("{{\"error\":\"overloaded\",\"queue_len\":{queue_len}}}"),
                ),
                Err(SubmitError::Invalid(e)) => {
                    (400, format!("{{\"error\":\"{}\"}}", json_escape(&e)))
                }
            }
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => {
            let id = match p["/v1/jobs/".len()..].parse::<JobId>() {
                Ok(id) => id,
                Err(_) => return (400, "{\"error\":\"bad job id\"}".to_string()),
            };
            match svc.status(id) {
                Some(status) => (200, status_json(id, &status)),
                None => (404, "{\"error\":\"unknown job\"}".to_string()),
            }
        }
        ("GET", "/v1/healthz") => {
            let s = svc.stats();
            (
                200,
                format!(
                    "{{\"ok\":true,\"queue_len\":{},\"memo_len\":{},\"stats\":{{\
                     \"submitted\":{},\"shed\":{},\"completed\":{},\"partial\":{},\
                     \"failed\":{},\"resumed\":{},\"memo_hits\":{}}}}}",
                    svc.queue_len(),
                    svc.memo_len(),
                    s.submitted,
                    s.shed,
                    s.completed,
                    s.partial,
                    s.failed,
                    s.resumed,
                    s.memo_hits
                ),
            )
        }
        _ => (404, "{\"error\":\"not found\"}".to_string()),
    }
}

// ---------------------------------------------------------------------------
// Client + binary location
// ---------------------------------------------------------------------------

/// A minimal blocking HTTP/1.1 client (std-only), used by `dqma-cli`, the
/// integration suite, and the load bench.
pub mod client {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    /// Performs one request against `addr` and returns `(status, body)`.
    /// `timeout` bounds connect, read, and write individually.
    pub fn call(
        addr: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: dqma\r\nConnection: close\r\n");
        if let Some(b) = body {
            req.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{b}",
                b.len()
            ));
        } else {
            req.push_str("\r\n");
        }
        stream.write_all(req.as_bytes())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let text = String::from_utf8_lossy(&raw);
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        Ok((status, body))
    }
}

/// Locates the `dqma-server` binary: the `DQMA_SERVER_BIN` environment
/// variable if set, else a sibling of the current executable (cargo's
/// `target/<profile>` layout) — the same discipline as
/// [`crate::cluster::locate_node_bin`].
pub fn locate_server_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("DQMA_SERVER_BIN") {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("dqma-server{}", std::env::consts::EXE_SUFFIX);
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join(&name);
        if cand.is_file() {
            return Some(cand);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trials::run_trials_with_workers;

    fn eq_path_spec() -> InstanceSpec {
        InstanceSpec::EqPath {
            r: 8,
            bits: 6,
            x: 0b101101,
            y: 0b101101,
            scheme_seed: 11,
            reps: 2,
            cheat: CheatSpec::Interpolate,
        }
    }

    fn small_job(trials: u64, seed: u64) -> JobSpec {
        JobSpec {
            instance: eq_path_spec(),
            trials,
            seed,
            deadline_ms: None,
            chaos: None,
        }
    }

    #[test]
    fn instance_specs_roundtrip_through_tokens_and_json() {
        let specs = [
            eq_path_spec(),
            InstanceSpec::Relay {
                r: 9,
                bits: 8,
                x: 0xA5,
                y: 0x5A,
                seed: 3,
                cheat: CheatSpec::AllLeft,
            },
            InstanceSpec::EqTree {
                arms: 3,
                arm_len: 2,
                bits: 4,
                x: 9,
                y: 6,
                scheme_seed: 5,
                reps: 4,
            },
        ];
        for spec in specs {
            assert_eq!(InstanceSpec::decode(&spec.encode()).unwrap(), spec);
            let parsed = json::parse(&spec.to_json()).unwrap();
            assert_eq!(InstanceSpec::from_json(&parsed).unwrap(), spec);
            // The identity key is a pure function of the canonical form.
            assert_eq!(
                spec.key(),
                InstanceSpec::decode(&spec.encode()).unwrap().key()
            );
        }
    }

    #[test]
    fn job_specs_roundtrip_and_malformed_inputs_are_structured_errors() {
        let spec = JobSpec {
            instance: eq_path_spec(),
            trials: 100_000,
            seed: 42,
            deadline_ms: Some(250),
            chaos: Some(ChaosSpec::PanicAtBlock(3)),
        };
        assert_eq!(JobSpec::decode(&spec.encode()).unwrap(), spec);
        let parsed = json::parse(&spec.to_json()).unwrap();
        assert_eq!(JobSpec::from_json(&parsed).unwrap(), spec);

        for bad in [
            "",
            "7",
            "7 100 - -",
            "7 100 - - eq_path",
            "7 100 - - eq_path 8 6 2d 2d 11 2",
            "7 100 - - warp 8 6 2d 2d 11 2 interpolate",
            "7 100 - - eq_path 8 6 zz 2d 11 2 interpolate",
            "7 100 x - eq_path 8 6 2d 2d 11 2 interpolate",
            "7 100 - - eq_path 8 6 2d 2d 11 2 interpolate trailing",
        ] {
            assert!(JobSpec::decode(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn validation_rejects_out_of_range_instances() {
        let cases = [
            eq_path(0, 6, 0b101101, 2),
            eq_path(limits::MAX_R + 1, 6, 0b101101, 2),
            eq_path(8, limits::MAX_BITS + 1, 0, 2),
            eq_path(8, 6, 1 << 6, 2),
            eq_path(8, 6, 0b101101, 0),
            InstanceSpec::Relay {
                r: 2,
                bits: 4,
                x: 1,
                y: 1,
                seed: 0,
                cheat: CheatSpec::Interpolate,
            },
            InstanceSpec::EqTree {
                arms: 1,
                arm_len: 1,
                bits: 4,
                x: 1,
                y: 1,
                scheme_seed: 0,
                reps: 1,
            },
            InstanceSpec::EqTree {
                arms: 2,
                arm_len: limits::MAX_ARM_LEN + 1,
                bits: 4,
                x: 1,
                y: 1,
                scheme_seed: 0,
                reps: 1,
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?} must not validate");
        }
    }

    fn eq_path(r: usize, bits: usize, x: u64, reps: usize) -> InstanceSpec {
        InstanceSpec::EqPath {
            r,
            bits,
            x,
            y: x,
            scheme_seed: 11,
            reps,
            cheat: CheatSpec::Interpolate,
        }
    }

    #[test]
    fn service_report_is_bit_identical_to_the_engine() {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let spec = small_job(3 * BLOCK_TRIALS + 101, 9);
        let reference = run_trials_with_workers(&spec.instance.compile(), spec.trials, 9, 1);
        let id = svc.submit(spec).unwrap();
        let status = svc.wait(id, Duration::from_secs(60)).unwrap();
        let JobStatus::Done(r) = status else {
            panic!("job must finish, got {status:?}");
        };
        assert!(!r.partial);
        assert_eq!(r.completed, r.requested);
        assert_eq!(
            r.accepts, reference.accepts,
            "service must match the engine"
        );
        svc.shutdown();
    }

    #[test]
    fn overload_sheds_explicitly_and_every_admitted_job_terminates() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        // A job slow enough to hold the single worker while we flood.
        let slow = JobSpec {
            instance: eq_path(64, 6, 0b101101, 2),
            trials: 64 * BLOCK_TRIALS,
            seed: 1,
            deadline_ms: None,
            chaos: None,
        };
        let mut admitted = vec![svc.submit(slow).unwrap()];
        let mut shed = 0;
        for i in 0..16 {
            match svc.submit(small_job(BLOCK_TRIALS, 100 + i)) {
                Ok(id) => admitted.push(id),
                Err(SubmitError::Overloaded { queue_len }) => {
                    assert_eq!(queue_len, 1);
                    shed += 1;
                }
                Err(e) => panic!("unexpected refusal {e:?}"),
            }
        }
        assert!(shed > 0, "a 1-deep queue under a 16-job flood must shed");
        assert_eq!(svc.stats().shed, shed);
        // Zero silent rejects: every admitted id reaches a terminal state.
        for id in admitted {
            let status = svc.wait(id, Duration::from_secs(120)).unwrap();
            assert!(status.is_terminal(), "job {id} stuck at {status:?}");
        }
        assert_eq!(
            svc.stats().submitted,
            svc.stats().completed + svc.stats().partial + svc.stats().failed
        );
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_returns_partial_report_with_wilson_interval() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let spec = JobSpec {
            instance: eq_path(64, 6, 0b101101, 2),
            trials: 512 * BLOCK_TRIALS,
            seed: 5,
            deadline_ms: Some(30),
            chaos: None,
        };
        let id = svc.submit(spec).unwrap();
        let status = svc.wait(id, Duration::from_secs(60)).unwrap();
        let JobStatus::Done(r) = status else {
            panic!("deadline expiry must still yield a report, got {status:?}");
        };
        assert!(r.partial, "512-block job cannot finish in 30 ms");
        assert!(r.completed < r.requested);
        assert_eq!(
            r.completed % BLOCK_TRIALS,
            0,
            "partial cuts at block bounds"
        );
        let (lo, hi) = r.wilson_interval(1.96);
        assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0);
        assert_eq!(svc.stats().partial, 1);
        svc.shutdown();
    }

    #[test]
    fn chaos_panic_is_contained_and_the_worker_survives() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            allow_chaos: true,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut doomed = small_job(2 * BLOCK_TRIALS, 3);
        doomed.chaos = Some(ChaosSpec::PanicAtBlock(0));
        let id = svc.submit(doomed).unwrap();
        let status = svc.wait(id, Duration::from_secs(60)).unwrap();
        let JobStatus::Failed(msg) = status else {
            panic!("chaos panic must fail the job, got {status:?}");
        };
        assert!(msg.contains("injected panic"), "unexpected reason {msg:?}");
        // The single worker thread must have survived to serve this:
        let id2 = svc.submit(small_job(BLOCK_TRIALS, 4)).unwrap();
        let status = svc.wait(id2, Duration::from_secs(60)).unwrap();
        assert!(matches!(status, JobStatus::Done(_)), "got {status:?}");
        svc.shutdown();
    }

    #[test]
    fn chaos_is_rejected_unless_enabled() {
        let svc = Service::start(ServiceConfig::default()).unwrap();
        let mut spec = small_job(BLOCK_TRIALS, 3);
        spec.chaos = Some(ChaosSpec::PanicAtBlock(0));
        assert!(matches!(
            svc.submit(spec),
            Err(SubmitError::Invalid(msg)) if msg.contains("chaos")
        ));
        svc.shutdown();
    }

    #[test]
    fn identical_jobs_share_blocks_through_the_memo() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let spec = small_job(4 * BLOCK_TRIALS, 77);
        let a = svc.submit(spec.clone()).unwrap();
        let ra = svc.wait(a, Duration::from_secs(60)).unwrap();
        let b = svc.submit(spec).unwrap();
        let rb = svc.wait(b, Duration::from_secs(60)).unwrap();
        let (JobStatus::Done(ra), JobStatus::Done(rb)) = (ra, rb) else {
            panic!("both jobs must finish");
        };
        assert_eq!(ra.accepts, rb.accepts, "shared blocks are attributable");
        assert_eq!(svc.stats().memo_hits, 4, "second job reuses all 4 blocks");
        svc.shutdown();
    }

    #[test]
    fn memo_memory_is_bounded_by_fifo_eviction() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            memo_capacity: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let id = svc.submit(small_job(6 * BLOCK_TRIALS, 8)).unwrap();
        svc.wait(id, Duration::from_secs(60)).unwrap();
        assert!(svc.memo_len() <= 2, "memo exceeded capacity");
        svc.shutdown();
    }

    #[test]
    fn journal_recovery_resumes_bit_identically_and_reuses_blocks() {
        let dir = std::env::temp_dir().join(format!("dqma-svc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        let _ = std::fs::remove_file(&path);

        let spec = small_job(5 * BLOCK_TRIALS + 99, 123);
        let reference = run_trials_with_workers(&spec.instance.compile(), spec.trials, 123, 1);

        // Fabricate the journal of a crashed server: the job was admitted
        // and three full blocks were journaled before the "crash" (plus a
        // torn final line, which recovery must tolerate).
        let plan = spec.instance.compile();
        let key = spec.instance.key();
        let mut lines = vec![format!("job 7 {}", spec.encode())];
        for b in 0..3u64 {
            let a = plan.sample_block(BLOCK_TRIALS, &mut (), &BlockRng::new(123, b));
            lines.push(format!("blk {key:016x} 123 {b} {a}"));
        }
        let mut text = lines.join("\n");
        text.push_str("\nblk 00ff");
        std::fs::write(&path, text).unwrap();

        let svc = Service::start(ServiceConfig {
            workers: 1,
            journal: Some(path.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(svc.stats().resumed, 1);
        let status = svc.wait(7, Duration::from_secs(60)).unwrap();
        let JobStatus::Done(r) = status else {
            panic!("resumed job must finish, got {status:?}");
        };
        assert_eq!(r.completed, r.requested);
        assert_eq!(
            r.accepts, reference.accepts,
            "restart-resumed job must be bit-identical to an uninterrupted run"
        );
        assert_eq!(
            svc.stats().memo_hits,
            3,
            "journaled blocks are not resampled"
        );
        svc.shutdown();

        // Second restart: the finished job is still queryable and nothing
        // re-runs.
        let svc2 = Service::start(ServiceConfig {
            workers: 1,
            journal: Some(path),
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(svc2.stats().resumed, 0);
        let JobStatus::Done(r2) = svc2.status(7).unwrap() else {
            panic!("done status must survive restart");
        };
        assert_eq!(r2.accepts, reference.accepts);
        svc2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn route_covers_the_http_surface() {
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Malformed JSON and bad specs are structured 400s.
        assert_eq!(route(&svc, "POST", "/v1/jobs", "{oops").0, 400);
        assert_eq!(route(&svc, "POST", "/v1/jobs", "{}").0, 400);
        assert_eq!(
            route(
                &svc,
                "POST",
                "/v1/jobs",
                "{\"instance\":{\"protocol\":\"warp\"},\"trials\":1}"
            )
            .0,
            400
        );
        // Unknown paths and ids.
        assert_eq!(route(&svc, "GET", "/nope", "").0, 404);
        assert_eq!(route(&svc, "GET", "/v1/jobs/999", "").0, 404);
        assert_eq!(route(&svc, "GET", "/v1/jobs/abc", "").0, 400);
        // Happy path: submit, poll to done, health.
        let body = small_job(BLOCK_TRIALS, 2).to_json();
        let (code, resp) = route(&svc, "POST", "/v1/jobs", &body);
        assert_eq!(code, 202, "{resp}");
        let id = json::parse(&resp)
            .unwrap()
            .get("job")
            .and_then(json::Parsed::as_num)
            .unwrap() as u64;
        svc.wait(id, Duration::from_secs(60)).unwrap();
        let (code, resp) = route(&svc, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(code, 200);
        let parsed = json::parse(&resp).unwrap();
        assert_eq!(
            parsed.get("state").and_then(json::Parsed::as_str),
            Some("done")
        );
        let (code, health) = route(&svc, "GET", "/v1/healthz", "");
        assert_eq!(code, 200);
        assert!(json::parse(&health).is_ok(), "healthz must be valid JSON");
        svc.shutdown();
    }
}
