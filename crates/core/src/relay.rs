//! The relay-point protocol for EQ on long paths (Section 4.1, Algorithm 6,
//! Theorem 22).
//!
//! When the path length `r` is comparable to the input length `n`, the plain
//! fingerprint protocol's `O(r² log n)` *local* cost exceeds the trivial
//! classical protocol's `n` bits. The paper restores a quantum advantage in
//! **total** proof size by inserting relay points every `⌈n^{1/3}⌉` nodes:
//! relay points receive the full `n`-qubit string and measure it, and the
//! segments between relay points run the fingerprint chain with
//! `42·⌈n^{1/3}⌉²` repetitions. The total proof size is `Õ(r·n^{2/3})`,
//! beating both the trivial classical `Θ(r·n)` (every node gets the whole
//! string) and the classical lower bound `Ω(r·n)` of Section 4.2.

use crate::chain::{cheating_proof, ChainCheat, ChainRoundPlan, SwapTestChain};
use crate::trials::{
    self, default_lane_width, BatchSampler, BlockRng, LaneBatched, TrialReport, MAX_LANES,
};
use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use netsim::{CostTracker, ProtocolCosts};
use rand::Rng;

/// The relay-point EQ protocol on a path of length `r` with `n`-bit inputs.
#[derive(Clone, Debug)]
pub struct RelayEqProtocol {
    n: usize,
    r: usize,
    spacing: usize,
    segment_repetitions: usize,
    scheme: FingerprintScheme,
}

impl RelayEqProtocol {
    /// Builds the protocol with the paper's parameters: relay spacing
    /// `⌈n^{1/3}⌉` and `42·⌈n^{1/3}⌉²` repetitions per segment.
    pub fn new(n: usize, r: usize, seed: u64) -> Self {
        let spacing = (n as f64).powf(1.0 / 3.0).ceil() as usize;
        RelayEqProtocol::with_spacing(n, r, spacing.max(1), seed)
    }

    /// Builds the protocol with an explicit relay spacing (used by the
    /// spacing-ablation benchmark).
    pub fn with_spacing(n: usize, r: usize, spacing: usize, seed: u64) -> Self {
        assert!(spacing >= 1, "relay spacing must be at least 1");
        RelayEqProtocol {
            n,
            r,
            spacing,
            segment_repetitions: 42 * spacing * spacing,
            scheme: FingerprintScheme::new(n, seed),
        }
    }

    /// Input length in bits.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Path length.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Relay spacing (`⌈n^{1/3}⌉` in the paper).
    pub fn spacing(&self) -> usize {
        self.spacing
    }

    /// The node indices of the relay points (multiples of the spacing,
    /// excluding the extremities).
    pub fn relay_points(&self) -> Vec<usize> {
        (1..)
            .map(|k| k * self.spacing)
            .take_while(|&v| v < self.r)
            .collect()
    }

    /// The segment boundaries: extremities plus relay points, in order. Each
    /// consecutive pair delimits one fingerprint-chain segment.
    pub fn segment_boundaries(&self) -> Vec<usize> {
        let mut b = vec![0];
        b.extend(self.relay_points());
        b.push(self.r);
        b.dedup();
        b
    }

    /// The path's segments as `(left string, right string, length)` triples:
    /// the extremities hold `x` and `y`, relay points their announced
    /// strings. The single source of the boundary-resolution logic shared by
    /// the exact, sequential and batched evaluators.
    ///
    /// # Panics
    ///
    /// Panics if `relay_strings` does not have one entry per relay point.
    fn segments<'a>(
        &self,
        x: &'a BitString,
        y: &'a BitString,
        relay_strings: &'a [BitString],
    ) -> Vec<(&'a BitString, &'a BitString, usize)> {
        let relays = self.relay_points();
        assert_eq!(
            relay_strings.len(),
            relays.len(),
            "one classical string per relay point required"
        );
        // The string held at each boundary node.
        let string_at = move |b: usize| -> &'a BitString {
            if b == 0 {
                x
            } else if b == self.r {
                y
            } else {
                let idx = relays.iter().position(|&p| p == b).expect("relay boundary");
                &relay_strings[idx]
            }
        };
        self.segment_boundaries()
            .windows(2)
            .map(|w| (string_at(w[0]), string_at(w[1]), w[1] - w[0]))
            .collect()
    }

    /// The fingerprint chain of one segment, plus the proof the prover plays
    /// on it: honest when the endpoint strings agree, `cheat` otherwise.
    fn segment_chain(
        &self,
        left: &BitString,
        right: &BitString,
        seg_len: usize,
        cheat: ChainCheat,
    ) -> (SwapTestChain, crate::chain::SeparableChainProof) {
        let chain = SwapTestChain::new(
            seg_len,
            self.scheme.fingerprint(left),
            self.scheme.accept_effect(right),
        );
        let proof = if left == right {
            chain.honest_proof()
        } else {
            cheating_proof(&chain, &self.scheme.fingerprint(right), cheat)
        };
        (chain, proof)
    }

    /// Exact acceptance probability when the prover writes `relay_strings`
    /// (one `n`-bit string per relay point) into the relay registers and plays
    /// `cheat` on every segment whose endpoint strings differ.
    ///
    /// The extremities use their own inputs `x` and `y`; honest segments
    /// (equal endpoint strings) accept with probability 1.
    pub fn acceptance(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
    ) -> f64 {
        let mut prob = 1.0;
        for (left, right, seg_len) in self.segments(x, y, relay_strings) {
            if left == right {
                continue; // segment accepts with certainty
            }
            let (chain, proof) = self.segment_chain(left, right, seg_len, cheat);
            let single = chain.acceptance_separable(&proof);
            prob *= SwapTestChain::repeated_soundness(single, self.segment_repetitions);
            if prob < 1e-300 {
                return 0.0;
            }
        }
        prob.clamp(0.0, 1.0)
    }

    /// Completeness witness: on a yes-instance the honest prover writes `x`
    /// into every relay point and every segment accepts with certainty.
    pub fn completeness(&self, x: &BitString) -> f64 {
        let strings = vec![x.clone(); self.relay_points().len()];
        self.acceptance(x, x, &strings, ChainCheat::AllLeft)
    }

    /// The prover's best acceptance on a no-instance when it interpolates the
    /// relay strings from `x` to `y` along the path (flipping bits gradually)
    /// — the natural optimal classical-relay cheat.
    pub fn best_interpolating_acceptance(&self, x: &BitString, y: &BitString) -> f64 {
        let relays = self.relay_points();
        let strings: Vec<BitString> = relays
            .iter()
            .map(|&p| {
                // Take a prefix of y's bits proportional to the position.
                let cut = (p * self.n) / self.r;
                let bits: Vec<bool> = (0..self.n)
                    .map(|i| if i < cut { y.bit(i) } else { x.bit(i) })
                    .collect();
                BitString::new(&bits)
            })
            .collect();
        self.acceptance(x, y, &strings, ChainCheat::Interpolate)
    }

    /// Samples one round of every segment chain (one repetition each):
    /// honest segments (equal endpoint strings) run the honest proof, the
    /// others the `cheat` strategy. Returns `true` when every node of every
    /// segment accepts.
    ///
    /// Each segment round goes through the chain's pure-state fast path
    /// ([`SwapTestChain::simulate_round`]) — no joint density matrix per
    /// segment. As in the protocol, every sampled round re-prepares each
    /// segment's boundary states (fingerprints, Bob's effect) and proof, so
    /// the per-round cost is dominated by that preparation; Monte-Carlo
    /// loops over a fixed instance should use
    /// [`RelayEqProtocol::sample_rounds`], which compiles every segment into
    /// a [`ChainRoundPlan`] once and runs the batched trial engine.
    pub fn simulate_round<R: rand::Rng + ?Sized>(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
        rng: &mut R,
    ) -> bool {
        for (left, right, seg_len) in self.segments(x, y, relay_strings) {
            let (chain, proof) = self.segment_chain(left, right, seg_len, cheat);
            if !chain.simulate_round(&proof, rng) {
                return false;
            }
        }
        true
    }

    /// Compiles a fixed relay instance into a [`RelayRoundPlan`]: one
    /// [`ChainRoundPlan`] per segment (fingerprints, Bob's effects and
    /// proofs prepared once — the dominant cost of
    /// [`RelayEqProtocol::simulate_round`] — instead of per round).
    ///
    /// # Panics
    ///
    /// Panics if `relay_strings` does not have one entry per relay point.
    pub fn round_plan(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
    ) -> RelayRoundPlan {
        let segments = self
            .segments(x, y, relay_strings)
            .into_iter()
            .map(|(left, right, seg_len)| {
                let (chain, proof) = self.segment_chain(left, right, seg_len, cheat);
                chain.round_plan(&proof)
            })
            .collect();
        RelayRoundPlan { segments }
    }

    /// Compiles a fixed relay instance into a per-node message-passing
    /// program for the transport executors of [`crate::net`]: relay points
    /// close their incoming segment with the boundary measurement and open
    /// the next one, exactly as in [`RelayEqProtocol::simulate_round`], but
    /// one network node at a time over a [`netsim::Transport`].
    ///
    /// # Panics
    ///
    /// Panics if `relay_strings` does not have one entry per relay point.
    pub fn net_program(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
    ) -> crate::net::RelayNetProgram {
        crate::net::RelayNetProgram::new(
            &self.round_plan(x, y, relay_strings, cheat),
            &self.segment_boundaries(),
        )
        .with_message_qubits(self.scheme.qubits() as u64)
    }

    /// Batched Monte-Carlo rounds (one repetition of every segment per
    /// round) on a fixed relay instance: segments are compiled once, then
    /// `n` trials run through the block engine of [`crate::trials`] —
    /// accept counts bit-identical at any worker count.
    pub fn sample_rounds(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
        n: u64,
        seed: u64,
    ) -> TrialReport {
        trials::run_trials(&self.round_plan(x, y, relay_strings, cheat), n, seed)
    }

    /// As [`RelayEqProtocol::sample_rounds`] with an explicit worker-slot
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_rounds_with_workers(
        &self,
        x: &BitString,
        y: &BitString,
        relay_strings: &[BitString],
        cheat: ChainCheat,
        n: u64,
        seed: u64,
        workers: usize,
    ) -> TrialReport {
        trials::run_trials_with_workers(
            &self.round_plan(x, y, relay_strings, cheat),
            n,
            seed,
            workers,
        )
    }

    /// Cost summary (Theorem 22): relay points receive `n` qubits, other
    /// nodes receive `2·42·⌈n^{1/3}⌉²·O(log n)` qubits, for a total of
    /// `Õ(r·n^{2/3})`.
    pub fn costs(&self) -> ProtocolCosts {
        Self::costs_for(self.n, self.r, self.spacing)
    }

    /// Cost summary without materialising a fingerprint scheme (so it can be
    /// evaluated for very large `n` in the benchmark sweeps). Fingerprint
    /// registers are `⌈log₂(8n)⌉` qubits as in [`FingerprintScheme::new`].
    pub fn costs_for(n: usize, r: usize, spacing: usize) -> ProtocolCosts {
        let q = ((8 * n).next_power_of_two().trailing_zeros() as u64).max(1);
        let reps = (42 * spacing * spacing) as u64;
        let mut t = CostTracker::new();
        let relays: Vec<usize> = (1..).map(|k| k * spacing).take_while(|&v| v < r).collect();
        for j in 1..r {
            if relays.contains(&j) {
                t.record_proof(j, n as u64);
            } else {
                t.record_proof(j, 2 * reps * q);
            }
        }
        for j in 0..r {
            t.record_message(j, j + 1, reps * q);
        }
        t.set_rounds(1);
        t.summary()
    }

    /// The paper's total-proof bound `Õ(r·n^{2/3})` (constant 1, one log factor).
    pub fn paper_total_cost(n: usize, r: usize) -> f64 {
        r as f64 * (n as f64).powf(2.0 / 3.0) * (n as f64).log2().max(1.0)
    }

    /// The trivial classical protocol's total proof size: every node receives
    /// the whole `n`-bit string, `Θ(r·n)` bits.
    pub fn trivial_classical_total(n: usize, r: usize) -> f64 {
        ((r + 1) * n) as f64
    }
}

/// A relay instance compiled for batched round sampling; built by
/// [`RelayEqProtocol::round_plan`]. A sampled round draws each segment's
/// symmetrisation coins, multiplies the segments' coin-conditional
/// acceptances, and draws a single accept Bernoulli against the product —
/// identical in distribution to running every segment's per-node walk (the
/// segments are independent conditioned on their own coins).
#[derive(Clone, Debug)]
pub struct RelayRoundPlan {
    segments: Vec<ChainRoundPlan>,
}

impl RelayRoundPlan {
    /// Number of segments (one chain per consecutive boundary pair).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The per-segment chain plans, in boundary order — read by the
    /// transport executors of [`crate::net`], which walk each segment's
    /// tables one network node at a time.
    #[inline]
    pub(crate) fn segment_plans(&self) -> &[ChainRoundPlan] {
        &self.segments
    }

    /// Samples one round of every segment.
    #[inline]
    pub fn round<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let mut w = 1.0;
        for seg in &self.segments {
            w *= seg.round_weight(rng);
        }
        rng.random::<f64>() < w
    }
}

impl LaneBatched for RelayRoundPlan {
    fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64 {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane width {lanes} outside 1..={MAX_LANES}"
        );
        if self.segments.iter().any(|s| !s.single_coin_word()) {
            // Some segment's coins exceed one word: per-trial scalar walk on
            // per-trial counter streams — grouping-invariant by construction.
            return (0..trials)
                .filter(|&t| self.round(&mut stream.trial_rng(t)))
                .count() as u64;
        }
        // SoA lane walk: one pre-shifted coin-word plane per segment (drawn
        // in segment order per trial, then the accept draw, matching
        // `round`'s stream layout), one lane walk per segment multiplied
        // into the round accumulator. The per-segment planes live in one
        // heap strip sized `segments × lanes` — allocated once per
        // 8192-trial block, amortised to nothing.
        let nseg = self.segments.len();
        let mut aug = vec![0u64; nseg * lanes];
        let mut draw = [0.0f64; MAX_LANES];
        let mut acc = [0.0f64; MAX_LANES];
        let mut seg_acc = [0.0f64; MAX_LANES];
        let mut accepts = 0u64;
        let mut t = 0u64;
        while t < trials {
            let l = (lanes as u64).min(trials - t) as usize;
            // One fused fill per batch: `nseg` plane-major coin-word planes
            // (stride `l`, segment order) then the accept plane — exactly
            // `round`'s per-trial stream layout.
            stream.fill_lane_streams(t, &mut aug[..nseg * l], &mut draw[..l]);
            for a in &mut aug[..nseg * l] {
                *a <<= 1;
            }
            acc[..l].fill(1.0);
            for (s, seg) in self.segments.iter().enumerate() {
                seg.lane_walk(&aug[s * l..(s + 1) * l], &mut seg_acc[..l]);
                for (a, &w) in acc[..l].iter_mut().zip(&seg_acc[..l]) {
                    *a *= w;
                }
            }
            accepts += qsim::simd::count_accepts(&draw[..l], &acc[..l]);
            t += l as u64;
        }
        accepts
    }
}

impl BatchSampler for RelayRoundPlan {
    type Scratch = ();

    fn scratch(&self) {}

    fn sample_block(&self, trials: u64, _scratch: &mut (), stream: &BlockRng) -> u64 {
        self.sample_lane_block(trials, stream, default_lane_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_points_are_spaced_correctly() {
        let proto = RelayEqProtocol::with_spacing(8, 10, 2, 1);
        assert_eq!(proto.relay_points(), vec![2, 4, 6, 8]);
        assert_eq!(proto.segment_boundaries(), vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn perfect_completeness() {
        let proto = RelayEqProtocol::with_spacing(4, 6, 2, 3);
        let x = BitString::from_u64(11, 4);
        assert!((proto.completeness(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_instance_is_rejected_despite_interpolating_relays() {
        // Use a small scheme indirectly by keeping n small.
        let mut proto = RelayEqProtocol::with_spacing(4, 4, 2, 3);
        // Shrink repetitions to keep the exact computation cheap but positive.
        proto.segment_repetitions = 8;
        let x = BitString::from_u64(3, 4);
        let y = BitString::from_u64(12, 4);
        let p = proto.best_interpolating_acceptance(&x, &y);
        assert!(p < 1.0 / 3.0, "acceptance {p}");
    }

    #[test]
    fn sampled_relay_rounds_behave_like_the_exact_formulas() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let proto = RelayEqProtocol::with_spacing(4, 6, 2, 3);
        let x = BitString::from_u64(11, 4);
        let mut rng = StdRng::seed_from_u64(41);
        // Honest relays on a yes-instance accept every sampled round.
        let honest = vec![x.clone(); proto.relay_points().len()];
        for _ in 0..20 {
            assert!(proto.simulate_round(&x, &x, &honest, ChainCheat::AllLeft, &mut rng));
        }
        // A no-instance with honest-looking relays is rejected a positive
        // fraction of the time.
        let y = BitString::from_u64(4, 4);
        let rejects = (0..400)
            .filter(|_| !proto.simulate_round(&x, &y, &honest, ChainCheat::Interpolate, &mut rng))
            .count();
        assert!(rejects > 0, "no-instance must be rejected sometimes");
    }

    #[test]
    fn relay_round_plan_matches_the_sequential_sampler_statistics() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let proto = RelayEqProtocol::with_spacing(4, 6, 2, 3);
        let x = BitString::from_u64(11, 4);
        let y = BitString::from_u64(4, 4);
        let honest = vec![x.clone(); proto.relay_points().len()];
        // Yes-instance: every batched trial accepts.
        let yes = proto.sample_rounds(&x, &x, &honest, ChainCheat::AllLeft, 5000, 31);
        assert_eq!(yes.accepts, yes.trials);
        // No-instance: the batched rate agrees with the sequential sampler
        // within the combined Hoeffding margins.
        let trials = 20_000u64;
        let report = proto.sample_rounds(&x, &y, &honest, ChainCheat::Interpolate, trials, 37);
        let mut rng = StdRng::seed_from_u64(41);
        let seq = (0..trials)
            .filter(|_| proto.simulate_round(&x, &y, &honest, ChainCheat::Interpolate, &mut rng))
            .count() as f64
            / trials as f64;
        let eps = 2.0 * report.hoeffding_radius(1e-9);
        assert!(
            (report.acceptance_rate() - seq).abs() < eps,
            "batched {} vs sequential {seq}",
            report.acceptance_rate()
        );
        assert_eq!(report.trials, trials);
        // Worker invariance.
        let base = proto.sample_rounds_with_workers(
            &x,
            &y,
            &honest,
            ChainCheat::Interpolate,
            trials,
            37,
            1,
        );
        let pooled = proto.sample_rounds_with_workers(
            &x,
            &y,
            &honest,
            ChainCheat::Interpolate,
            trials,
            37,
            4,
        );
        assert_eq!(base.accepts, report.accepts);
        assert_eq!(pooled.accepts, report.accepts);
        assert_eq!(
            proto
                .round_plan(&x, &y, &honest, ChainCheat::Interpolate)
                .num_segments(),
            proto.segment_boundaries().len() - 1
        );
    }

    #[test]
    fn paper_repetition_count_gives_strong_per_segment_soundness() {
        // With the paper's 42·s² repetitions, a segment of length s with
        // differing endpoints accepts with probability < 1/3.
        for s in [2usize, 3, 4] {
            let single = SwapTestChain::paper_soundness_bound(s);
            let repeated = SwapTestChain::repeated_soundness(single, 42 * s * s);
            assert!(repeated < 1.0 / 3.0, "spacing {s}: {repeated}");
        }
    }

    #[test]
    fn total_cost_grows_sublinearly_in_n_unlike_the_classical_protocols() {
        // Theorem 22's point: the quantum total proof size grows like
        // Õ(n^{2/3}) with the input length, while every classical protocol is
        // forced to Θ(n) per node. We check the *growth rates*; the absolute
        // crossover happens at astronomically large n because of the 42·s²
        // repetition constant (reported as-is in EXPERIMENTS.md).
        let r = 64;
        let spacing = |n: usize| (n as f64).powf(1.0 / 3.0).ceil() as usize;
        let n_small = 1usize << 12;
        let n_large = 1usize << 24;
        let q_small =
            RelayEqProtocol::costs_for(n_small, r, spacing(n_small)).total_proof_qubits as f64;
        let q_large =
            RelayEqProtocol::costs_for(n_large, r, spacing(n_large)).total_proof_qubits as f64;
        let quantum_growth = q_large / q_small;
        let classical_growth = RelayEqProtocol::trivial_classical_total(n_large, r)
            / RelayEqProtocol::trivial_classical_total(n_small, r);
        assert!(
            quantum_growth < classical_growth,
            "quantum growth {quantum_growth} should be below classical growth {classical_growth}"
        );
        // And it is within a polylog factor of the ideal n^{2/3} growth (= 256 here).
        assert!(quantum_growth < 1024.0, "quantum growth {quantum_growth}");
    }

    #[test]
    fn total_cost_tracks_the_paper_formula_shape() {
        let c1 = RelayEqProtocol::costs_for(1 << 9, 32, 8).total_proof_qubits as f64;
        let c2 = RelayEqProtocol::costs_for(1 << 9, 64, 8).total_proof_qubits as f64;
        // Linear in r.
        let ratio = c2 / c1;
        assert!((1.7..=2.3).contains(&ratio), "r-scaling {ratio}");
    }
}
