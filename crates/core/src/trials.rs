//! Batched, zero-allocation Monte-Carlo trial engine for the sampled
//! protocol rounds.
//!
//! The paper's guarantees (completeness ≈ 1 on yes-instances, rejection
//! ≥ `4/(81 r²)` per round on no-instances) are only *observable* through
//! many sampled rounds, yet until this module every consumer of
//! `simulate_round` ran trials serially, one round at a time, re-preparing
//! proof states and reallocating scratch per round. Here the per-instance
//! preparation is hoisted into a *round plan* (see
//! [`crate::chain::ChainRoundPlan`] and friends), and a shared driver splits
//! the trials into fixed-size blocks dispatched over the persistent
//! [`qsim::pool`] workers.
//!
//! # Determinism across worker counts (and lane widths)
//!
//! Every block of [`BLOCK_TRIALS`] trials owns dedicated RNG streams derived
//! *from the block index alone*, handed to samplers as a [`BlockRng`]
//! coordinate with two stream families:
//!
//! * [`BlockRng::block_rng`] — the legacy sequential per-block stream
//!   (`StdRng::seed_from_u64(seed ⊕ (block+1)·φ)` with φ the 64-bit golden
//!   ratio), used by samplers that walk trials one at a time (the
//!   mixed-proof chain sampler, transport-backed outcome rounds);
//! * [`BlockRng::trial_rng`] — a counter-based stream **per trial**
//!   ([`qsim::random::CounterRng`] keyed by `(seed, block, trial)`), used by
//!   the lane-batched engine: a trial's draws are a pure function of its
//!   coordinates, so its outcome cannot depend on how trials are grouped
//!   into lanes.
//!
//! Blocks are claimed dynamically by workers, but a block's accept count
//! depends only on `(seed, block index, plan)`, and the total is a
//! commutative sum — so the [`TrialReport`] accept count is **bit-identical
//! at any worker count** (1, 2, 4, 8, …) *and*, for [`LaneBatched`] plans,
//! at any lane width and under either the scalar or the AVX2 executors —
//! all pinned by the integration suite. (Changing [`BLOCK_TRIALS`] or a
//! stream derivation changes accept counts *across versions*; the contract
//! is invariance across execution configurations, never across versions.)
//!
//! # Lane batching
//!
//! Plans whose rounds are pure table walks implement [`LaneBatched`] as
//! well: [`LaneBatched::sample_lane_block`] runs a lane batch of `L` trials
//! in lockstep over structure-of-arrays buffers (one coin word and one
//! acceptance accumulator per lane), which the [`qsim::simd`] executors
//! process four lanes per instruction under the `simd` feature — with the
//! scalar lane path always compiled as the oracle. [`BatchSampler`] is
//! blanket-forwarded per plan at [`default_lane_width`]; tests pin other
//! widths via [`with_lane_width`].
//!
//! # Scratch reuse
//!
//! A [`BatchSampler`] declares a `Scratch` type built once per worker slot
//! and reused across every block (and every trial) that worker processes —
//! per-worker arenas via [`qsim::pool::SlotScratch`]. The pure-state plans
//! need none (their tables make a round a handful of lookups); the
//! mixed-proof chain sampler reuses its density-matrix frontier buffers
//! across all trials instead of reallocating three matrices per node per
//! round.

use qsim::random::CounterRng;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Trials per RNG-stream block. Fixed — it is part of the determinism
/// contract: changing it changes which trial consumes which random draw, so
/// accept counts would differ (across versions, never across worker counts).
pub const BLOCK_TRIALS: u64 = 8192;

/// 64-bit golden-ratio increment (the SplitMix64 stream constant); spaces
/// the per-block seeds so `SeedableRng::seed_from_u64`'s SplitMix64
/// expansion yields decorrelated streams.
const STREAM_PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// The dedicated RNG stream of block `block` under master seed `seed`.
pub fn stream_rng(seed: u64, block: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ block.wrapping_add(1).wrapping_mul(STREAM_PHI))
}

/// Shared statistical bounds for the Monte-Carlo test batteries.
///
/// The integration suites (`integration_sampled_rounds`,
/// `integration_transport_rounds`, `integration_adversarial`) all assert
/// measured rates against exact probabilities through the same two
/// instruments; they live here — next to the engine whose outputs they
/// bound — instead of being copy-pasted per test file.
pub mod stats {
    /// Confidence parameter of the suite-wide default margin: a correct
    /// sampler violates a [`hoeffding_margin`] assertion with probability
    /// ≤ 1e-9 per check, so a battery of thousands of checks still fails
    /// spuriously less than once in a million runs.
    pub const SUITE_DELTA: f64 = 1e-9;

    /// Two-sided Hoeffding deviation `ε` such that
    /// `Pr[|p̂ − p| ≥ ε] ≤ delta` for a correct Bernoulli sampler over
    /// `trials` draws: `ε = sqrt(ln(2/δ) / (2n))`.
    pub fn hoeffding_radius(trials: u64, delta: f64) -> f64 {
        if trials == 0 {
            return 1.0;
        }
        (f64::ln(2.0 / delta) / (2.0 * trials as f64)).sqrt()
    }

    /// [`hoeffding_radius`] at the suite-wide [`SUITE_DELTA`].
    pub fn hoeffding_margin(trials: u64) -> f64 {
        hoeffding_radius(trials, SUITE_DELTA)
    }

    /// Wilson score interval for a true Bernoulli probability given
    /// `successes` out of `trials` at normal quantile `z` (e.g. `z = 1.96`
    /// for 95%): the binomial interval that stays inside `[0, 1]` and
    /// behaves at the boundary rates the protocols actually produce
    /// (completeness ≈ 1).
    pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
        if trials == 0 {
            return (0.0, 1.0);
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = p + z2 / (2.0 * n);
        let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        (
            ((centre - spread) / denom).clamp(0.0, 1.0),
            ((centre + spread) / denom).clamp(0.0, 1.0),
        )
    }
}

/// Length of block `b` when `n` trials split into `nblocks` fixed-size
/// blocks: [`BLOCK_TRIALS`] everywhere except a shorter final remainder
/// block when `n` is not a multiple (a full final block when it is).
pub(crate) fn block_len(n: u64, nblocks: u64, b: u64) -> u64 {
    if b + 1 == nblocks && !n.is_multiple_of(BLOCK_TRIALS) {
        n % BLOCK_TRIALS
    } else {
        BLOCK_TRIALS
    }
}

/// The RNG coordinate of one trial block: hands samplers both stream
/// families derived from `(seed, block)` — see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct BlockRng {
    seed: u64,
    block: u64,
    trial_key: u64,
    noise_key: u64,
}

/// Salt separating the noise-draw stream family from the coin/accept family.
/// An arbitrary odd 64-bit constant; it is finalised through a SplitMix64
/// round in [`BlockRng::new`], so the two families share no linear structure.
const NOISE_STREAM_SALT: u64 = 0xB5AD_4ECE_DA1C_E2A9;

impl BlockRng {
    /// The coordinate of block `block` under master seed `seed`.
    pub fn new(seed: u64, block: u64) -> Self {
        let trial_key = CounterRng::block_key(seed, block);
        BlockRng {
            seed,
            block,
            trial_key,
            noise_key: CounterRng::block_key(trial_key, NOISE_STREAM_SALT),
        }
    }

    /// The block's index.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The legacy sequential per-block stream (identical to
    /// [`stream_rng`]`(seed, block)`) for samplers that walk trials one at
    /// a time.
    pub fn block_rng(&self) -> StdRng {
        stream_rng(self.seed, self.block)
    }

    /// The counter-based stream of trial `trial` (0-based within the block):
    /// independent per trial, so draws never depend on lane grouping.
    #[inline]
    pub fn trial_rng(&self, trial: u64) -> CounterRng {
        CounterRng::for_trial_key(self.trial_key, trial)
    }

    /// The counter-based **noise-draw** stream of trial `trial`: the same
    /// `(block key, trial index)` derivation as [`BlockRng::trial_rng`], but
    /// keyed through [`NOISE_STREAM_SALT`], so noise-branch selections are a
    /// pure per-trial function that never consumes from — and therefore never
    /// perturbs — the coin/accept draw schedule. Toggling a noise model off
    /// reproduces the noise-free accept counts bit-exactly (pinned by the
    /// adversarial integration suite).
    #[inline]
    pub fn noise_rng(&self, trial: u64) -> CounterRng {
        CounterRng::for_trial_key(self.noise_key, trial)
    }

    /// Fills one lane batch of per-trial draws starting at trial `t0`:
    /// `words.len() / draws.len()` coin-word planes (plane-major) followed
    /// by one accept draw per lane, bit-identical to pulling the same draws
    /// from [`BlockRng::trial_rng`] lane by lane — but evaluated four
    /// trials per instruction when the `qsim::simd` AVX2 path is selected.
    #[inline]
    pub fn fill_lane_streams(&self, t0: u64, words: &mut [u64], draws: &mut [f64]) {
        qsim::simd::fill_trial_streams(self.trial_key, t0, words, draws);
    }
}

/// A prepared sampler that can run a block of protocol rounds.
///
/// Implementations must make a block's accept count a pure function of
/// `(self, trials, stream)` — independent of the worker slot — to preserve
/// the engine's determinism guarantee.
pub trait BatchSampler: Sync {
    /// Per-worker scratch, built once per slot and reused across blocks.
    type Scratch: Send;

    /// Builds one scratch arena.
    fn scratch(&self) -> Self::Scratch;

    /// Runs `trials` rounds drawing from `stream`, returning the accept
    /// count.
    fn sample_block(&self, trials: u64, scratch: &mut Self::Scratch, stream: &BlockRng) -> u64;
}

/// Hard upper bound on the lane width of [`LaneBatched::sample_lane_block`]:
/// implementations keep their per-lane planes in fixed stack arrays of this
/// size.
pub const MAX_LANES: usize = 64;

/// The lane width the [`BatchSampler`] forwarding impls of the lane-batched
/// plans use: 32 lanes — eight AVX2 registers of accumulators, deep enough
/// to overlap the table-gather latency of consecutive chunks while the
/// lane planes (coin words, accept draws, accumulators) stay inside one
/// cache line pair each. Measured on the reference Xeon it is the scalar
/// path's best width and within a few percent of the AVX2 path's.
pub fn default_lane_width() -> usize {
    32
}

/// A plan whose rounds run as a lane batch of trials in lockstep over
/// SoA-across-trials buffers.
///
/// The contract on top of [`BatchSampler`]'s purity requirement: the accept
/// count must be **identical for every `lanes` value** in
/// `1..=`[`MAX_LANES`]. Implementations get this by drawing each trial's
/// randomness from [`BlockRng::trial_rng`] (a pure function of the trial
/// index) and keeping every cross-lane operation elementwise.
pub trait LaneBatched: Sync {
    /// Runs `trials` rounds in lane batches of (at most) `lanes`, returning
    /// the accept count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is `0` or exceeds [`MAX_LANES`].
    fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64;
}

/// A [`LaneBatched`] plan pinned to an explicit lane width — the adapter the
/// lane-invariance tests drive through [`run_trials_with_workers`].
#[derive(Clone, Copy, Debug)]
pub struct LanePinned<'a, S: LaneBatched> {
    inner: &'a S,
    lanes: usize,
}

/// Pins `sampler` to an explicit lane width (see [`LanePinned`]).
///
/// # Panics
///
/// Panics if `lanes` is `0` or exceeds [`MAX_LANES`].
pub fn with_lane_width<S: LaneBatched>(sampler: &S, lanes: usize) -> LanePinned<'_, S> {
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "lane width {lanes} outside 1..={MAX_LANES}"
    );
    LanePinned {
        inner: sampler,
        lanes,
    }
}

impl<S: LaneBatched> BatchSampler for LanePinned<'_, S> {
    type Scratch = ();
    fn scratch(&self) {}
    fn sample_block(&self, trials: u64, _scratch: &mut (), stream: &BlockRng) -> u64 {
        self.inner.sample_lane_block(trials, stream, self.lanes)
    }
}

/// The outcome of a batched trial run.
#[derive(Clone, Debug)]
pub struct TrialReport {
    /// Number of sampled rounds.
    pub trials: u64,
    /// Number of accepting rounds.
    pub accepts: u64,
    /// Worker slots the run was dispatched over — the *effective* width:
    /// the requested worker count clamped to the number of RNG blocks
    /// (`⌈trials / BLOCK_TRIALS⌉`), since a block is the dispatch unit.
    pub workers: usize,
    /// Wall-clock duration of the batch.
    pub elapsed: Duration,
}

impl TrialReport {
    /// Empirical acceptance rate `accepts / trials` (0 when empty).
    pub fn acceptance_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.accepts as f64 / self.trials as f64
        }
    }

    /// Empirical rejection rate `1 − acceptance`.
    pub fn rejection_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            1.0 - self.acceptance_rate()
        }
    }

    /// Wilson score interval for the true acceptance probability at normal
    /// quantile `z` — see [`stats::wilson_interval`].
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        stats::wilson_interval(self.accepts, self.trials, z)
    }

    /// Two-sided Hoeffding deviation ε such that
    /// `Pr[|p̂ − p| ≥ ε] ≤ delta` for a correct Bernoulli sampler — see
    /// [`stats::hoeffding_radius`].
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        stats::hoeffding_radius(self.trials, delta)
    }

    /// Nanoseconds of wall clock per sampled round.
    pub fn ns_per_round(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.trials as f64
        }
    }

    /// Sampled rounds per second of wall clock.
    pub fn rounds_per_sec(&self) -> f64 {
        let ns = self.ns_per_round();
        if ns == 0.0 {
            0.0
        } else {
            1e9 / ns
        }
    }
}

/// Default dispatch width: the pool's worker policy when the `parallel`
/// feature is enabled, serial otherwise. Explicit widths are always
/// available through [`run_trials_with_workers`].
pub fn default_workers() -> usize {
    #[cfg(feature = "parallel")]
    {
        qsim::pool::worker_count()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Runs `n` trials of `sampler` under master seed `seed` at the default
/// width. See [`run_trials_with_workers`].
pub fn run_trials<S: BatchSampler>(sampler: &S, n: u64, seed: u64) -> TrialReport {
    run_trials_with_workers(sampler, n, seed, default_workers())
}

/// Runs `n` trials of `sampler` under master seed `seed`, dispatched over at
/// most `workers` pool slots. The accept count is identical for every
/// `workers` value (see the module docs); only the wall clock changes.
pub fn run_trials_with_workers<S: BatchSampler>(
    sampler: &S,
    n: u64,
    seed: u64,
    workers: usize,
) -> TrialReport {
    let start = Instant::now();
    let nblocks = n.div_ceil(BLOCK_TRIALS);
    // Effective width: a block is the dispatch unit, so more workers than
    // blocks cannot engage (the report records the width actually used).
    let workers = workers.max(1).min((nblocks as usize).max(1));
    let accepts = if workers == 1 || nblocks <= 1 {
        let mut scratch = sampler.scratch();
        (0..nblocks)
            .map(|b| {
                sampler.sample_block(
                    block_len(n, nblocks, b),
                    &mut scratch,
                    &BlockRng::new(seed, b),
                )
            })
            .sum()
    } else {
        let total = AtomicU64::new(0);
        let scratch = qsim::pool::SlotScratch::new(workers, || sampler.scratch());
        qsim::pool::global().dispatch(workers, nblocks as usize, &|slot, chunk| {
            let b = chunk as u64;
            // Safety: `slot` is the pool-provided slot id of this job.
            let s = unsafe { scratch.get(slot) };
            let a = sampler.sample_block(block_len(n, nblocks, b), s, &BlockRng::new(seed, b));
            total.fetch_add(a, Ordering::Relaxed);
        });
        total.into_inner()
    };
    TrialReport {
        trials: n,
        accepts,
        workers,
        elapsed: start.elapsed(),
    }
}

/// Runs up to `n` trials of `sampler` under master seed `seed`, stopping at
/// the first block boundary past `deadline` (when given). Returns a
/// [`TrialReport`] over the trials actually completed — a *partial* report
/// whose `trials` field may be any prefix `k · BLOCK_TRIALS ≤ n` of the
/// request (plus the short tail block when the run completes).
///
/// Blocks are processed strictly in order, so the completed prefix is
/// bit-identical to the same prefix of an unbounded [`run_trials`] with the
/// same `(sampler, n, seed)`: deadline expiry never changes *which* rounds
/// were sampled, only how many. This is the property the serving layer's
/// crash-recovery journal relies on (see [`crate::service`]).
///
/// See [`run_trials_observed`] for the hook-bearing variant.
pub fn run_trials_deadline<S: BatchSampler>(
    sampler: &S,
    n: u64,
    seed: u64,
    deadline: Option<Instant>,
) -> TrialReport {
    run_trials_observed(sampler, n, seed, deadline, &mut |_| None, &mut |_, _, _| {})
}

/// The hook-bearing deadline runner behind [`run_trials_deadline`].
///
/// For each block `b` (in order), the engine first consults
/// `cached(b)`; a `Some(accepts)` is taken as the block's accept count
/// without sampling (the caller vouches it came from an identical
/// `(sampler, seed, block)` run — block determinism makes such reuse exact).
/// Freshly sampled blocks are reported to `observe(b, len, accepts)` before
/// the next block starts, which is the journaling hook: a crash loses at
/// most the block in flight, and replaying observed blocks through `cached`
/// resumes the run bit-identically.
///
/// The deadline is checked at block boundaries only (a block is the unit of
/// both dispatch and determinism), and cached blocks never consume budget.
pub fn run_trials_observed<S: BatchSampler>(
    sampler: &S,
    n: u64,
    seed: u64,
    deadline: Option<Instant>,
    cached: &mut dyn FnMut(u64) -> Option<u64>,
    observe: &mut dyn FnMut(u64, u64, u64),
) -> TrialReport {
    let start = Instant::now();
    let nblocks = n.div_ceil(BLOCK_TRIALS);
    let mut scratch = sampler.scratch();
    let mut done: u64 = 0;
    let mut accepts: u64 = 0;
    for b in 0..nblocks {
        let len = block_len(n, nblocks, b);
        if let Some(a) = cached(b) {
            done += len;
            accepts += a;
            continue;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let a = sampler.sample_block(len, &mut scratch, &BlockRng::new(seed, b));
        observe(b, len, a);
        done += len;
        accepts += a;
    }
    TrialReport {
        trials: done,
        accepts,
        workers: 1,
        elapsed: start.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// Three-way outcome engine (transport-backed rounds)
// ---------------------------------------------------------------------------

/// Tallies of one block of transport-backed rounds. Unlike the boolean
/// accept count of [`BatchSampler`], fault-injected rounds terminate in one
/// of *three* states (accept / reject / abort-with-cause), and the engine
/// additionally folds a transcript digest for the reproducibility tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockOutcomes {
    /// Rounds where every verifier completed and all accepted.
    pub accepts: u64,
    /// Rounds where every verifier completed and at least one rejected.
    pub rejects: u64,
    /// Rounds that aborted on a fault (`RoundOutcome::Aborted`).
    pub aborts: u64,
    /// Envelope transmissions (including retransmissions).
    pub messages: u64,
    /// Retransmissions alone.
    pub retries: u64,
    /// XOR-fold of per-delivery transcript hashes. XOR is commutative, so
    /// the digest — like the counts — is bit-identical at any worker count.
    pub digest: u64,
}

impl BlockOutcomes {
    /// Accumulates `other` (commutative, so block merge order is free).
    pub fn merge(&mut self, other: &BlockOutcomes) {
        self.accepts += other.accepts;
        self.rejects += other.rejects;
        self.aborts += other.aborts;
        self.messages += other.messages;
        self.retries += other.retries;
        self.digest ^= other.digest;
    }
}

/// A prepared sampler producing three-way [`BlockOutcomes`] per block; the
/// same purity requirement as [`BatchSampler`] applies (a block's outcome
/// depends only on `(self, trials, rng stream)`).
pub trait OutcomeSampler: Sync {
    /// Per-worker scratch (typically a transport instance), built once per
    /// slot and reused across blocks.
    type Scratch: Send;

    /// Builds one scratch arena.
    fn scratch(&self) -> Self::Scratch;

    /// Runs `trials` rounds drawing from `rng`, tallying their outcomes.
    fn sample_block(
        &self,
        trials: u64,
        scratch: &mut Self::Scratch,
        rng: &mut StdRng,
    ) -> BlockOutcomes;
}

/// The outcome of a batched three-way trial run.
#[derive(Clone, Debug)]
pub struct OutcomeReport {
    /// Number of sampled rounds.
    pub trials: u64,
    /// Merged per-block tallies.
    pub outcomes: BlockOutcomes,
    /// Effective dispatch width (see [`TrialReport::workers`]).
    pub workers: usize,
    /// Wall-clock duration of the batch.
    pub elapsed: Duration,
}

impl OutcomeReport {
    /// Empirical accept rate `accepts / trials` (0 when empty). Aborted
    /// rounds count against acceptance — graceful degradation shows up as a
    /// completeness loss, exactly what the fault sweeps chart.
    pub fn accept_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.outcomes.accepts as f64 / self.trials as f64
        }
    }

    /// Empirical abort rate `aborts / trials` (0 when empty).
    pub fn abort_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.outcomes.aborts as f64 / self.trials as f64
        }
    }

    /// Two-sided Hoeffding deviation for the accept rate; see
    /// [`stats::hoeffding_radius`].
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        stats::hoeffding_radius(self.trials, delta)
    }

    /// Nanoseconds of wall clock per sampled round.
    pub fn ns_per_round(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.trials as f64
        }
    }

    /// Sampled rounds per second of wall clock.
    pub fn rounds_per_sec(&self) -> f64 {
        let ns = self.ns_per_round();
        if ns == 0.0 {
            0.0
        } else {
            1e9 / ns
        }
    }
}

/// Runs `n` three-way trials of `sampler` under master seed `seed` at the
/// default width. See [`run_outcome_trials_with_workers`].
pub fn run_outcome_trials<S: OutcomeSampler>(sampler: &S, n: u64, seed: u64) -> OutcomeReport {
    run_outcome_trials_with_workers(sampler, n, seed, default_workers())
}

/// Runs `n` three-way trials of `sampler` under master seed `seed`,
/// dispatched over at most `workers` pool slots. Identical block-index
/// determinism contract as [`run_trials_with_workers`]: counts *and* the
/// transcript digest are bit-identical at every worker count.
pub fn run_outcome_trials_with_workers<S: OutcomeSampler>(
    sampler: &S,
    n: u64,
    seed: u64,
    workers: usize,
) -> OutcomeReport {
    let start = Instant::now();
    let nblocks = n.div_ceil(BLOCK_TRIALS);
    let workers = workers.max(1).min((nblocks as usize).max(1));
    let outcomes = if workers == 1 || nblocks <= 1 {
        let mut scratch = sampler.scratch();
        let mut total = BlockOutcomes::default();
        for b in 0..nblocks {
            let o = sampler.sample_block(
                block_len(n, nblocks, b),
                &mut scratch,
                &mut stream_rng(seed, b),
            );
            total.merge(&o);
        }
        total
    } else {
        let total = std::sync::Mutex::new(BlockOutcomes::default());
        let scratch = qsim::pool::SlotScratch::new(workers, || sampler.scratch());
        qsim::pool::global().dispatch(workers, nblocks as usize, &|slot, chunk| {
            let b = chunk as u64;
            // Safety: `slot` is the pool-provided slot id of this job.
            let s = unsafe { scratch.get(slot) };
            let o = sampler.sample_block(block_len(n, nblocks, b), s, &mut stream_rng(seed, b));
            total
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .merge(&o);
        });
        total
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    };
    OutcomeReport {
        trials: n,
        outcomes,
        workers,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A Bernoulli(p) sampler whose scratch counts the blocks it served —
    /// enough to pin the engine's plumbing without any protocol machinery.
    struct Coin {
        p: f64,
    }

    impl BatchSampler for Coin {
        type Scratch = u64;
        fn scratch(&self) -> u64 {
            0
        }
        fn sample_block(&self, trials: u64, scratch: &mut u64, stream: &BlockRng) -> u64 {
            *scratch += 1;
            let mut rng = stream.block_rng();
            (0..trials).filter(|_| rng.random::<f64>() < self.p).count() as u64
        }
    }

    /// A lane-batched Bernoulli(p) sampler drawing per-trial counter
    /// streams — pins the grouping-invariance contract without any protocol
    /// machinery.
    struct LaneCoin {
        p: f64,
    }

    impl LaneBatched for LaneCoin {
        fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64 {
            assert!((1..=MAX_LANES).contains(&lanes));
            let mut draw = [0.0f64; MAX_LANES];
            let mut acc = [0.0f64; MAX_LANES];
            let mut accepts = 0u64;
            let mut t = 0u64;
            while t < trials {
                let l = (lanes as u64).min(trials - t) as usize;
                for (i, d) in draw[..l].iter_mut().enumerate() {
                    *d = stream.trial_rng(t + i as u64).random::<f64>();
                }
                acc[..l].fill(self.p);
                accepts += qsim::simd::count_accepts(&draw[..l], &acc[..l]);
                t += l as u64;
            }
            accepts
        }
    }

    #[test]
    fn accept_counts_are_identical_across_worker_counts() {
        let coin = Coin { p: 0.37 };
        let n = 3 * BLOCK_TRIALS + 1234;
        let base = run_trials_with_workers(&coin, n, 99, 1);
        for workers in [2usize, 4, 8] {
            let r = run_trials_with_workers(&coin, n, 99, workers);
            assert_eq!(
                r.accepts, base.accepts,
                "accept count must not depend on worker count ({workers})"
            );
            assert_eq!(r.trials, n);
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let coin = Coin { p: 0.5 };
        let a = run_trials(&coin, 2 * BLOCK_TRIALS, 1);
        let b = run_trials(&coin, 2 * BLOCK_TRIALS, 2);
        assert_ne!(a.accepts, b.accepts, "distinct seeds should diverge");
    }

    #[test]
    fn rate_tracks_the_true_probability() {
        let coin = Coin { p: 0.25 };
        let r = run_trials(&coin, 100_000, 7);
        let eps = r.hoeffding_radius(1e-9);
        assert!(
            (r.acceptance_rate() - 0.25).abs() < eps,
            "rate {} vs 0.25 (margin {eps})",
            r.acceptance_rate()
        );
        let (lo, hi) = r.wilson_interval(5.0);
        assert!(lo <= 0.25 && 0.25 <= hi, "wilson ({lo}, {hi}) misses 0.25");
    }

    #[test]
    fn partial_last_block_and_empty_runs_are_handled() {
        let coin = Coin { p: 1.0 };
        let r = run_trials(&coin, BLOCK_TRIALS + 17, 3);
        assert_eq!(r.accepts, BLOCK_TRIALS + 17);
        let zero = run_trials(&coin, 0, 3);
        assert_eq!(zero.trials, 0);
        assert_eq!(zero.accepts, 0);
        assert_eq!(zero.acceptance_rate(), 0.0);
        let small = run_trials(&coin, 5, 3);
        assert_eq!(small.accepts, 5);
    }

    /// A three-way sampler splitting trials accept/reject/abort by two
    /// thresholds, with a toy digest — pins the outcome engine's plumbing.
    struct ThreeWay {
        accept: f64,
        abort: f64,
    }

    impl OutcomeSampler for ThreeWay {
        type Scratch = ();
        fn scratch(&self) {}
        fn sample_block(&self, trials: u64, _s: &mut (), rng: &mut StdRng) -> BlockOutcomes {
            let mut out = BlockOutcomes::default();
            for _ in 0..trials {
                let x: f64 = rng.random();
                if x < self.abort {
                    out.aborts += 1;
                } else if x < self.abort + self.accept {
                    out.accepts += 1;
                } else {
                    out.rejects += 1;
                }
                out.messages += 2;
                out.digest ^= x.to_bits().rotate_left(out.accepts as u32);
            }
            out
        }
    }

    #[test]
    fn outcome_engine_is_worker_invariant_including_digest() {
        let s = ThreeWay {
            accept: 0.5,
            abort: 0.2,
        };
        let n = 3 * BLOCK_TRIALS + 77;
        let base = run_outcome_trials_with_workers(&s, n, 13, 1);
        assert_eq!(
            base.outcomes.accepts + base.outcomes.rejects + base.outcomes.aborts,
            n,
            "every trial must terminate in exactly one outcome"
        );
        for workers in [2usize, 4, 8] {
            let r = run_outcome_trials_with_workers(&s, n, 13, workers);
            assert_eq!(r.outcomes, base.outcomes, "workers = {workers}");
        }
        let other = run_outcome_trials_with_workers(&s, n, 14, 1);
        assert_ne!(other.outcomes.digest, base.outcomes.digest);
    }

    #[test]
    fn block_len_is_full_on_exact_multiples_and_truncates_the_tail() {
        // Exact multiple: every block — including the last — is full.
        let n = 3 * BLOCK_TRIALS;
        let nblocks = n.div_ceil(BLOCK_TRIALS);
        assert_eq!(nblocks, 3);
        for b in 0..nblocks {
            assert_eq!(block_len(n, nblocks, b), BLOCK_TRIALS, "block {b}");
        }
        // Remainder: only the final block shortens.
        let n = 3 * BLOCK_TRIALS + 17;
        let nblocks = n.div_ceil(BLOCK_TRIALS);
        assert_eq!(nblocks, 4);
        assert_eq!(block_len(n, nblocks, 0), BLOCK_TRIALS);
        assert_eq!(block_len(n, nblocks, 2), BLOCK_TRIALS);
        assert_eq!(block_len(n, nblocks, 3), 17);
        // Sub-block run: one short block.
        assert_eq!(block_len(5, 1, 0), 5);
        // Engine-level pin of the exact-multiple boundary: totals add up.
        let r = run_trials(&Coin { p: 1.0 }, 2 * BLOCK_TRIALS, 3);
        assert_eq!(r.accepts, 2 * BLOCK_TRIALS);
    }

    #[test]
    fn lane_batched_accepts_are_invariant_across_lane_widths_and_workers() {
        let coin = LaneCoin { p: 0.37 };
        let n = 3 * BLOCK_TRIALS + 1234;
        let base = run_trials_with_workers(&with_lane_width(&coin, 1), n, 99, 1);
        for lanes in [2usize, 4, 8, 16, 63, MAX_LANES] {
            for workers in [1usize, 2, 4] {
                let r = run_trials_with_workers(&with_lane_width(&coin, lanes), n, 99, workers);
                assert_eq!(
                    r.accepts, base.accepts,
                    "lane width {lanes} × workers {workers} must not change accepts"
                );
            }
        }
        // The counter streams really are per-trial: a different seed moves
        // the count, so the invariance above is not vacuous.
        let other = run_trials_with_workers(&with_lane_width(&coin, 4), n, 100, 1);
        assert_ne!(other.accepts, base.accepts);
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn lane_width_zero_is_rejected() {
        let coin = LaneCoin { p: 0.5 };
        let _ = with_lane_width(&coin, 0);
    }

    #[test]
    fn noise_stream_is_a_distinct_deterministic_family() {
        use rand::RngCore;
        let b = BlockRng::new(42, 3);
        // Same (seed, block, trial) coordinate, different stream family.
        assert_ne!(b.trial_rng(7).next_u64(), b.noise_rng(7).next_u64());
        // Pure function of the coordinate: reopening reproduces the draws.
        assert_eq!(
            b.noise_rng(7).next_u64(),
            BlockRng::new(42, 3).noise_rng(7).next_u64()
        );
        // Distinct trials and blocks give distinct noise streams.
        assert_ne!(b.noise_rng(7).next_u64(), b.noise_rng(8).next_u64());
        assert_ne!(
            b.noise_rng(7).next_u64(),
            BlockRng::new(42, 4).noise_rng(7).next_u64()
        );
    }

    #[test]
    fn deadline_none_matches_unbounded_engine_bit_identically() {
        let coin = Coin { p: 0.37 };
        let n = 3 * BLOCK_TRIALS + 511;
        let full = run_trials_with_workers(&coin, n, 21, 1);
        let budgeted = run_trials_deadline(&coin, n, 21, None);
        assert_eq!(budgeted.trials, full.trials);
        assert_eq!(budgeted.accepts, full.accepts);
    }

    #[test]
    fn expired_deadline_yields_an_empty_partial_report() {
        let coin = Coin { p: 0.5 };
        let past = Instant::now() - Duration::from_secs(1);
        let r = run_trials_deadline(&coin, 10 * BLOCK_TRIALS, 7, Some(past));
        assert_eq!(r.trials, 0);
        assert_eq!(r.accepts, 0);
        // A zero-trial report still carries a (vacuous) Wilson interval.
        assert_eq!(r.wilson_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn partial_prefixes_are_bit_identical_to_the_unbounded_run() {
        // Record per-block accepts of the unbounded run, then check that a
        // resumed run driven through the cache hook reproduces the total
        // without resampling the journaled prefix.
        let coin = Coin { p: 0.37 };
        let n = 5 * BLOCK_TRIALS + 100;
        let mut journal: Vec<(u64, u64, u64)> = Vec::new();
        let full = run_trials_observed(&coin, n, 33, None, &mut |_| None, &mut |b, len, a| {
            journal.push((b, len, a))
        });
        assert_eq!(journal.len(), 6);
        // Every observed prefix sums to a valid partial report.
        let prefix: u64 = journal[..3].iter().map(|&(_, _, a)| a).sum();
        // Resume: blocks 0..3 come from the "journal", the rest sample live.
        let mut resumed_fresh = 0u64;
        let resumed = run_trials_observed(
            &coin,
            n,
            33,
            None,
            &mut |b| (b < 3).then(|| journal[b as usize].2),
            &mut |_, _, _| resumed_fresh += 1,
        );
        assert_eq!(resumed_fresh, 3, "only the unjournaled blocks resample");
        assert_eq!(resumed.trials, full.trials);
        assert_eq!(
            resumed.accepts, full.accepts,
            "resume must be bit-identical"
        );
        assert_eq!(
            prefix + journal[3..].iter().map(|&(_, _, a)| a).sum::<u64>(),
            full.accepts
        );
    }

    #[test]
    fn stats_module_matches_report_methods() {
        let r = run_trials(&Coin { p: 0.5 }, 10_000, 5);
        assert_eq!(r.hoeffding_radius(1e-9), stats::hoeffding_margin(r.trials));
        assert_eq!(
            r.wilson_interval(1.96),
            stats::wilson_interval(r.accepts, r.trials, 1.96)
        );
        assert_eq!(stats::wilson_interval(0, 0, 1.96), (0.0, 1.0));
        assert_eq!(stats::hoeffding_radius(0, 1e-9), 1.0);
    }

    #[test]
    fn wilson_interval_stays_in_bounds_at_the_boundary() {
        let always = run_trials(&Coin { p: 1.0 }, 1000, 11);
        let (lo, hi) = always.wilson_interval(1.96);
        assert!(hi <= 1.0 && lo > 0.9, "interval ({lo}, {hi})");
        let never = run_trials(&Coin { p: 0.0 }, 1000, 11);
        let (lo, hi) = never.wilson_interval(1.96);
        assert!(lo >= 0.0 && hi < 0.1, "interval ({lo}, {hi})");
    }
}
