//! The ranking verification protocol (Section 5.2, Algorithm 8, Theorem 29).
//!
//! `RV^{i,j}` asks whether terminal `i`'s input is the `j`-th largest among
//! the `t` terminal inputs. The prover announces a spanning tree rooted at
//! terminal `i`, sends one *direction bit* per node of every root-to-leaf path
//! (claiming `x_i ≥ x_k` or `x_i < x_k`), and runs the GT protocol of
//! Section 5.1 along each path according to the claimed direction; the root
//! finally counts the `≥` directions.

use crate::chain::{ChainCheat, SwapTestChain};
use crate::eq_path::scale_costs;
use crate::gt::GtPathProtocol;
use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use commproto::problems::Comparison;
use netsim::{CostTracker, ProtocolCosts};

/// The ranking verification protocol for terminal `root` claiming rank `j`
/// (1 = largest), on a star-of-paths network where every other terminal sits
/// at distance `leg_len` from the root terminal.
#[derive(Clone, Debug)]
pub struct RankingProtocol {
    n: usize,
    t: usize,
    j: usize,
    leg_len: usize,
    scheme: FingerprintScheme,
    repetitions: usize,
}

/// The prover's claimed direction for one root-to-leaf path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Claim `x_root ≥ x_leaf`.
    GreaterEqual,
    /// Claim `x_root < x_leaf`.
    Less,
}

impl RankingProtocol {
    /// Builds the protocol for `t` terminals with `n`-bit inputs where every
    /// other terminal is at distance `leg_len` from the root terminal, which
    /// claims rank `j` (1-based).
    pub fn new(n: usize, t: usize, j: usize, leg_len: usize, seed: u64) -> Self {
        assert!(t >= 2, "ranking needs at least two terminals");
        assert!((1..=t).contains(&j), "rank must lie in 1..=t");
        RankingProtocol {
            n,
            t,
            j,
            leg_len: leg_len.max(1),
            scheme: FingerprintScheme::new(n, seed),
            repetitions: SwapTestChain::paper_repetitions(leg_len.max(1)),
        }
    }

    /// Builds the protocol with an explicit fingerprint scheme and repetition
    /// count (for exact small simulations).
    pub fn with_scheme(
        n: usize,
        t: usize,
        j: usize,
        leg_len: usize,
        scheme: FingerprintScheme,
        repetitions: usize,
    ) -> Self {
        let mut p = RankingProtocol::new(n, t, j, leg_len, 0);
        p.scheme = scheme;
        p.repetitions = repetitions;
        p
    }

    /// The per-leg GT protocol for the claimed direction.
    fn leg_protocol(&self, direction: Direction) -> GtPathProtocol {
        let comparison = match direction {
            Direction::GreaterEqual => Comparison::GreaterEqual,
            Direction::Less => Comparison::Less,
        };
        GtPathProtocol::with_scheme(self.n, self.leg_len, comparison, self.scheme.clone(), 1)
    }

    /// The honest directions for the given inputs (index 0 is the root
    /// terminal, the rest are the leaves in order).
    pub fn honest_directions(&self, inputs: &[BitString]) -> Vec<Direction> {
        assert_eq!(inputs.len(), self.t, "one input per terminal required");
        inputs[1..]
            .iter()
            .map(|xk| {
                if inputs[0].cmp_as_integer(xk) != std::cmp::Ordering::Less {
                    Direction::GreaterEqual
                } else {
                    Direction::Less
                }
            })
            .collect()
    }

    /// Whether the root's final count check passes for the claimed directions:
    /// the number of `≥` directions must equal `t − j`.
    pub fn root_count_check(&self, directions: &[Direction]) -> bool {
        let ge = directions
            .iter()
            .filter(|d| matches!(d, Direction::GreaterEqual))
            .count();
        ge == self.t - self.j
    }

    /// Single-repetition acceptance probability when the prover announces
    /// `directions` (one per leaf) and plays `cheat` on every leg's chain.
    ///
    /// Inconsistent direction registers along a path are rejected with
    /// certainty, so only path-consistent claims are modelled.
    pub fn single_round_acceptance(
        &self,
        inputs: &[BitString],
        directions: &[Direction],
        cheat: ChainCheat,
    ) -> f64 {
        assert_eq!(inputs.len(), self.t, "one input per terminal required");
        assert_eq!(
            directions.len(),
            self.t - 1,
            "one direction per leaf required"
        );
        if !self.root_count_check(directions) {
            return 0.0;
        }
        let mut prob = 1.0;
        for (k, direction) in directions.iter().enumerate() {
            let leg = self.leg_protocol(*direction);
            let p = match leg.honest_certificate(&inputs[0], &inputs[k + 1]) {
                Some(cert) if *direction == self.true_direction(&inputs[0], &inputs[k + 1]) => {
                    // Truthful direction: the prover can run the leg honestly.
                    leg.single_round_acceptance(
                        &inputs[0],
                        &inputs[k + 1],
                        cert,
                        ChainCheat::AllLeft,
                    )
                }
                _ => {
                    // Lying about this leg: the best it can do is cheat the GT chain.
                    leg.best_cheating_acceptance(&inputs[0], &inputs[k + 1], cheat)
                }
            };
            prob *= p;
            if prob < 1e-15 {
                break;
            }
        }
        prob
    }

    fn true_direction(&self, root: &BitString, leaf: &BitString) -> Direction {
        if root.cmp_as_integer(leaf) != std::cmp::Ordering::Less {
            Direction::GreaterEqual
        } else {
            Direction::Less
        }
    }

    /// Completeness witness: honest directions and honest leg proofs.
    pub fn completeness(&self, inputs: &[BitString]) -> f64 {
        let dirs = self.honest_directions(inputs);
        if !self.root_count_check(&dirs) {
            return 0.0;
        }
        self.single_round_acceptance(inputs, &dirs, ChainCheat::AllLeft)
    }

    /// Best acceptance over all direction assignments that pass the root count
    /// check, with the given chain cheat on lied-about legs — the prover's
    /// best single-repetition strategy on a no-instance.
    pub fn best_cheating_acceptance(&self, inputs: &[BitString], cheat: ChainCheat) -> f64 {
        let legs = self.t - 1;
        let mut best: f64 = 0.0;
        for mask in 0..(1usize << legs) {
            let dirs: Vec<Direction> = (0..legs)
                .map(|k| {
                    if (mask >> k) & 1 == 1 {
                        Direction::GreaterEqual
                    } else {
                        Direction::Less
                    }
                })
                .collect();
            if !self.root_count_check(&dirs) {
                continue;
            }
            best = best.max(self.single_round_acceptance(inputs, &dirs, cheat));
        }
        best
    }

    /// Acceptance of the repeated protocol under the best cheating strategy.
    pub fn repeated_cheating_acceptance(&self, inputs: &[BitString], cheat: ChainCheat) -> f64 {
        SwapTestChain::repeated_soundness(
            self.best_cheating_acceptance(inputs, cheat),
            self.repetitions,
        )
    }

    /// Cost summary (Theorem 29): `t − 1` parallel GT legs of length `leg_len`,
    /// giving local proof and message size `O(t·r²·log n)` after repetition
    /// (the root participates in every leg).
    pub fn costs(&self) -> ProtocolCosts {
        let q = self.scheme.qubits() as u64;
        let index_qubits = (self.n.next_power_of_two().trailing_zeros() as u64).max(1);
        let mut tracker = CostTracker::new();
        // Node ids: 0 = root; leg k occupies nodes k*leg_len+1 ..= (k+1)*leg_len.
        for k in 0..(self.t - 1) {
            let base = 1 + k * self.leg_len;
            // Direction bit for every node on the path.
            tracker.record_proof(0, 1 + index_qubits);
            for step in 0..self.leg_len {
                let node = base + step;
                tracker.record_proof(node, 2 * q + index_qubits + 1);
                let prev = if step == 0 { 0 } else { node - 1 };
                tracker.record_message(prev, node, q + index_qubits);
            }
        }
        tracker.set_rounds(1);
        scale_costs(&tracker.summary(), self.repetitions as u64)
    }

    /// The paper's local cost bound `O(t·r²·log n)` (Theorem 29; constant 1).
    pub fn paper_local_cost(n: usize, r: usize, t: usize) -> f64 {
        (t * r * r) as f64 * (n as f64).log2().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::problems::{MultiPartyFunction, RankingVerification};

    fn small(n: usize, t: usize, j: usize) -> RankingProtocol {
        RankingProtocol::with_scheme(n, t, j, 2, FingerprintScheme::small(n, 9), 4)
    }

    fn inputs(vals: &[u64], n: usize) -> Vec<BitString> {
        vals.iter().map(|&v| BitString::from_u64(v, n)).collect()
    }

    #[test]
    fn completeness_on_true_rank() {
        // Root holds 9; others hold 5 and 3 -> root is the largest (rank 1).
        let proto = small(4, 3, 1);
        let ins = inputs(&[9, 5, 3], 4);
        assert!((proto.completeness(&ins) - 1.0).abs() < 1e-10);
        // Consistency with the problem definition.
        let rv = RankingVerification {
            n: 4,
            t: 3,
            i: 0,
            j: 1,
        };
        assert!(rv.eval(&ins));
    }

    #[test]
    fn completeness_on_middle_rank() {
        // Root holds 5; others hold 9 and 3 -> root is 2nd largest.
        let proto = small(4, 3, 2);
        let ins = inputs(&[5, 9, 3], 4);
        assert!((proto.completeness(&ins) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wrong_rank_claim_is_rejected() {
        // Root holds 5 (2nd largest) but claims rank 1.
        let proto = small(4, 3, 1);
        let ins = inputs(&[5, 9, 3], 4);
        assert!(
            proto.completeness(&ins) < 1e-12,
            "honest directions fail the count"
        );
        let best = proto.best_cheating_acceptance(&ins, ChainCheat::Interpolate);
        assert!(best < 1.0 - 1e-4, "best cheating acceptance {best}");
        let repeated = proto.repeated_cheating_acceptance(&ins, ChainCheat::Interpolate);
        assert!(repeated < best + 1e-12);
    }

    #[test]
    fn root_count_check_matches_rank_convention() {
        let proto = small(4, 4, 2);
        // Rank 2 of 4 means exactly 2 of the other 3 are <= root.
        assert!(proto.root_count_check(&[
            Direction::GreaterEqual,
            Direction::GreaterEqual,
            Direction::Less
        ]));
        assert!(!proto.root_count_check(&[
            Direction::GreaterEqual,
            Direction::GreaterEqual,
            Direction::GreaterEqual
        ]));
    }

    #[test]
    fn costs_scale_linearly_in_terminal_count() {
        let c3 = RankingProtocol::new(16, 3, 1, 3, 1).costs();
        let c6 = RankingProtocol::new(16, 6, 1, 3, 1).costs();
        // The root's local proof grows with t (it sits on every leg).
        assert!(c6.local_proof_qubits >= c3.local_proof_qubits);
        assert!(c6.total_proof_qubits > c3.total_proof_qubits);
        assert!(
            RankingProtocol::paper_local_cost(16, 3, 6)
                > RankingProtocol::paper_local_cost(16, 3, 3)
        );
    }
}
