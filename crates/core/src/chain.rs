//! The SWAP-test relay chain — the engine behind every path protocol in the
//! paper (Algorithm 3 and its descendants).
//!
//! The structure shared by the protocols of Sections 3.2, 5.1 and 7 is:
//!
//! * the left extremity `v₀` prepares a state `|a>` (a fingerprint, a prefix
//!   fingerprint, or the output of Alice's unitary on a QMA proof);
//! * every intermediate node `v_j` receives two registers from the prover,
//!   **symmetrises** them (swaps with probability 1/2, the paper's
//!   simplification of FGNP21), keeps one and forwards the other;
//! * every intermediate node SWAP-tests the register received from its left
//!   neighbour against the kept register;
//! * the right extremity `v_r` measures the final forwarded register with an
//!   accept effect `M` (Bob's measurement from a one-way protocol).
//!
//! [`SwapTestChain`] computes, exactly:
//! * the acceptance probability for any **separable** per-node proof, by
//!   enumerating the `2^{r−1}` symmetrisation patterns (conditioned on a
//!   pattern all tests act on disjoint registers, so the joint acceptance
//!   factorises);
//! * the full **acceptance operator** on the joint proof space for small
//!   instances, whose largest eigenvalue is the exact soundness error against
//!   arbitrary *entangled* proofs — the quantity the paper can only bound
//!   analytically.

use crate::trials::{
    self, default_lane_width, BatchSampler, BlockRng, LaneBatched, TrialReport, MAX_LANES,
};
use netsim::{CostTracker, ProtocolCosts};
use qsim::linalg::max_eigenvalue;
use qsim::plan::{KernelPlan, PlanScratch};
use qsim::swap_test::{swap_test_acceptance_pure, swap_test_on};
use qsim::{kernels, CMatrix, Complex, DensityMatrix, PureState};
use rand::Rng;

/// A proof for the chain: one pair of register states per intermediate node
/// (`R_{j,0}`, `R_{j,1}` for `j = 1..r−1`), each a pure state of the chain's
/// register dimension.
pub type SeparableChainProof = Vec<(PureState, PureState)>;

/// The SWAP-test relay chain on a path of length `r`.
#[derive(Clone, Debug)]
pub struct SwapTestChain {
    r: usize,
    dim: usize,
    left_state: PureState,
    right_effect: CMatrix,
}

impl SwapTestChain {
    /// Creates a chain of length `r` with the given boundary state and effect.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`, if the effect is not square of the state's
    /// dimension, or if the effect is not Hermitian.
    pub fn new(r: usize, left_state: PureState, right_effect: CMatrix) -> Self {
        assert!(r >= 1, "the path must have length at least 1");
        let dim = left_state.dim();
        assert!(
            right_effect.rows() == dim && right_effect.cols() == dim,
            "right effect must act on the message register"
        );
        assert!(
            right_effect.is_hermitian(1e-8),
            "right effect must be Hermitian"
        );
        SwapTestChain {
            r,
            dim,
            left_state: left_state.normalized(),
            right_effect,
        }
    }

    /// Path length `r`.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Dimension of each message/proof register.
    pub fn register_dim(&self) -> usize {
        self.dim
    }

    /// Number of intermediate nodes (`r − 1`).
    pub fn num_intermediate(&self) -> usize {
        self.r - 1
    }

    /// The state prepared by the left extremity.
    pub fn left_state(&self) -> &PureState {
        &self.left_state
    }

    /// The honest proof when the prover wants every register to carry `state`:
    /// both registers of every intermediate node are set to `state`.
    pub fn uniform_proof(&self, state: &PureState) -> SeparableChainProof {
        assert_eq!(state.dim(), self.dim, "proof register dimension mismatch");
        (0..self.num_intermediate())
            .map(|_| (state.clone(), state.clone()))
            .collect()
    }

    /// The honest proof for a yes-instance: every register carries the left
    /// state itself (the prover forwards the fingerprint unchanged).
    pub fn honest_proof(&self) -> SeparableChainProof {
        self.uniform_proof(&self.left_state)
    }

    /// Exact probability that **all** nodes accept, for a separable per-node
    /// pure proof, averaging over the symmetrisation randomness.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one register pair per intermediate
    /// node, or if any register has the wrong dimension.
    pub fn acceptance_separable(&self, proof: &SeparableChainProof) -> f64 {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        for (a, b) in proof {
            assert_eq!(a.dim(), self.dim, "proof register dimension mismatch");
            assert_eq!(b.dim(), self.dim, "proof register dimension mismatch");
        }
        let k = self.num_intermediate();
        if k == 0 {
            // v_r measures the left state directly.
            return self.boundary_acceptance(&self.left_state);
        }
        let patterns = 1usize << k;
        let mut total = 0.0;
        for pattern in 0..patterns {
            let mut prob = 1.0;
            // `sent` walks down the chain: starts as the left state.
            let mut sent: &PureState = &self.left_state;
            for (j, (r0, r1)) in proof.iter().enumerate() {
                let swapped = (pattern >> j) & 1 == 1;
                let (kept, forwarded) = if swapped { (r1, r0) } else { (r0, r1) };
                prob *= swap_test_acceptance_pure(sent, kept);
                sent = forwarded;
            }
            prob *= self.boundary_acceptance(sent);
            total += prob;
        }
        (total / patterns as f64).clamp(0.0, 1.0)
    }

    /// Acceptance probability with the honest proof (completeness witness).
    pub fn completeness(&self) -> f64 {
        self.acceptance_separable(&self.honest_proof())
    }

    /// The acceptance operator `A` on the joint proof Hilbert space
    /// (`2(r−1)` registers of dimension `dim` each): the acceptance
    /// probability of any (possibly entangled) proof `ρ` is `tr(Aρ)`.
    ///
    /// # Panics
    ///
    /// Panics if the joint dimension exceeds 4096 (the operator would not fit
    /// in memory) or if the chain has no intermediate node.
    pub fn acceptance_operator(&self) -> CMatrix {
        let k = self.num_intermediate();
        assert!(
            k >= 1,
            "the acceptance operator needs at least one proof register"
        );
        let dims = vec![self.dim; 2 * k];
        let total: usize = dims.iter().product();
        assert!(
            total <= 1024,
            "joint proof dimension {total} too large for the spectral method"
        );
        // Effective effect of the SWAP test against the fixed left state |a>:
        // (⟨a| ⊗ I) Π_sym (|a> ⊗ I) = (I + |a><a|) / 2 on the kept register.
        let a_proj = CMatrix::projector(self.left_state.amplitudes());
        let left_effect = (&CMatrix::identity(self.dim) + &a_proj).scale(Complex::real(0.5));

        // Every kernel plan the 2^k pattern loop touches, compiled once and
        // embedded (the loop body re-derived layouts and operator structure
        // per pattern through PR 4): boundary-effect operator plans for both
        // coin values of the first/last node, and the four
        // (forwarded, kept) symmetric-class plans per interior node.
        let left_plans: Vec<KernelPlan> = (0..2)
            .map(|b| KernelPlan::for_operator(&dims, &[b], &left_effect))
            .collect();
        let right_plans: Vec<KernelPlan> = (0..2)
            .map(|b| KernelPlan::for_operator(&dims, &[2 * k - 2 + b], &self.right_effect))
            .collect();
        let sym_plans: Vec<[KernelPlan; 4]> = (1..k)
            .map(|j| {
                // Index `prev + 2·cur`: forwarded(j−1) = 2(j−1) + (1−prev),
                // kept(j) = 2j + cur.
                [0usize, 1, 2, 3].map(|idx| {
                    let (prev, cur) = (idx & 1, idx >> 1);
                    KernelPlan::for_symmetric(&dims, &[2 * (j - 1) + (1 - prev), 2 * j + cur])
                })
            })
            .collect();
        let mut scratch = PlanScratch::default();

        let mut accumulated = CMatrix::zeros(total, total);
        let patterns = 1usize << k;
        for pattern in 0..patterns {
            // Register index of R_{j,0} is 2j, of R_{j,1} is 2j+1 (j = 0..k-1).
            let bit = |j: usize| (pattern >> j) & 1;
            // Build the pattern's effect by strided right multiplication. The
            // SWAP-test factors are symmetric-subspace projectors, applied
            // matrix-free as column class averages (`O(rows·D)` each, no
            // d²×d² projector); the boundary effects are genuinely dense
            // one-register operators and go through the dense stride kernel.
            let mut effect = CMatrix::identity(total);
            kernels::right_multiply_matrix_with(&mut effect, &left_plans[bit(0)], &mut scratch);
            for j in 1..k {
                let plan = &sym_plans[j - 1][bit(j - 1) + 2 * bit(j)];
                kernels::project_classes_cols_with(&mut effect, plan, false, &mut scratch);
            }
            kernels::right_multiply_matrix_with(
                &mut effect,
                &right_plans[1 - bit(k - 1)],
                &mut scratch,
            );
            accumulated = &accumulated + &effect;
        }
        accumulated.scale(Complex::real(1.0 / patterns as f64))
    }

    /// Exact maximum acceptance probability over **all** proofs, including
    /// proofs entangled across nodes: the largest eigenvalue of the
    /// acceptance operator. For a no-instance this is the exact soundness
    /// error of the (un-repeated) protocol.
    ///
    /// # Panics
    ///
    /// See [`SwapTestChain::acceptance_operator`].
    pub fn optimal_acceptance(&self) -> f64 {
        if self.num_intermediate() == 0 {
            return self.boundary_acceptance(&self.left_state);
        }
        // The acceptance operator is a product/average of projectors and is not
        // Hermitian in general (the per-pattern factors commute, but the
        // average of products need not be); symmetrise before taking the top
        // eigenvalue — tr(Aρ) is real for states, so only the Hermitian part
        // contributes.
        let a = self.acceptance_operator();
        let herm = (&a + &a.adjoint()).scale(Complex::real(0.5));
        max_eigenvalue(&herm).clamp(0.0, 1.0)
    }

    /// The measurement effect applied by the right extremity.
    pub fn right_effect(&self) -> &CMatrix {
        &self.right_effect
    }

    /// Samples one full round of the chain protocol for a separable per-node
    /// pure proof: symmetrisation coins, one SWAP test per intermediate node,
    /// and Bob's final measurement. Returns `true` when every node accepts.
    ///
    /// Pure-state fast path: conditioned on the symmetrisation pattern every
    /// test acts on disjoint product registers, so each outcome is an
    /// independent Bernoulli draw from the overlap closed form — the joint
    /// density matrix is never formed and a round costs `O(r·d)`. This is
    /// what makes end-to-end rounds at `r ≥ 8` benchable; the joint-state
    /// dense-projector simulation is `O(d^{3(2r−1)})` and already
    /// unreachable at `r = 8`.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one register pair per intermediate
    /// node or if any register has the wrong dimension.
    pub fn simulate_round<R: Rng + ?Sized>(
        &self,
        proof: &SeparableChainProof,
        rng: &mut R,
    ) -> bool {
        self.validate_proof(proof);
        let mut sent: &PureState = &self.left_state;
        for (r0, r1) in proof {
            let swapped = rng.random::<f64>() < 0.5;
            let (kept, forwarded) = if swapped { (r1, r0) } else { (r0, r1) };
            let p = swap_test_acceptance_pure(sent, kept);
            if rng.random::<f64>() >= p {
                return false;
            }
            sent = forwarded;
        }
        // Allocation-free boundary measurement (the round's one former
        // per-round allocation, `effect.apply(v)`).
        let p = self.boundary_acceptance(sent);
        rng.random::<f64>() < p
    }

    /// Validates a separable proof's shape once, before a sampling walk —
    /// hoisted out of the per-node loop so the hot path carries no checks.
    fn validate_proof(&self, proof: &SeparableChainProof) {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        for (r0, r1) in proof {
            assert_eq!(r0.dim(), self.dim, "proof register dimension mismatch");
            assert_eq!(r1.dim(), self.dim, "proof register dimension mismatch");
        }
    }

    /// Acceptance probability of the right extremity's measurement on the
    /// final forwarded state, computed as an allocation-free quadratic form.
    #[inline]
    fn boundary_acceptance(&self, sent: &PureState) -> f64 {
        self.right_effect
            .quadratic_form(sent.amplitudes())
            .re
            .clamp(0.0, 1.0)
    }

    /// Samples one full round for per-node *mixed* proofs (one two-register
    /// density matrix per intermediate node), through the matrix-free
    /// measurement layer: the walk keeps only the frontier — the forwarded
    /// state tensored with the current node's register pair, a 3-register
    /// density matrix — applies the symmetrisation channel
    /// `ρ → ½ρ + ½ SρS†` as a (monomial fast-path) Kraus channel, runs the
    /// sampled matrix-free [`swap_test_on`], and traces down to the next
    /// forwarded register. `O(r·d⁶)` total; no dense projector, no joint
    /// state over the whole chain.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one two-register density matrix of
    /// the chain's register dimension per intermediate node.
    /// This is the **rebuild-per-call consumer path**: every kernel it
    /// touches goes through the compile-then-execute shims, so each round
    /// re-derives layouts, operator classifications and class tables. Batch
    /// loops should use [`SwapTestChain::sample_rounds_mixed`] /
    /// [`SwapTestChain::mixed_sampler`], whose round plan compiles every
    /// kernel plan the frontier walk touches exactly once (the
    /// `eq_path_trials_mixed_*` rows of `BENCH_protocols.json` track the
    /// gap).
    pub fn simulate_round_mixed<R: Rng + ?Sized>(
        &self,
        proof: &[DensityMatrix],
        rng: &mut R,
    ) -> bool {
        self.validate_mixed_proof(proof);
        let d = self.dim;
        let d3 = d * d * d;
        let left = DensityMatrix::from_pure(&self.left_state);
        let swap = qsim::naive::cached_swap(d);
        let mut frontier = DensityMatrix::from_matrix(&[d, d, d], CMatrix::zeros(d3, d3));
        let mut tmp = CMatrix::zeros(d3, d3);
        let mut sent = DensityMatrix::from_matrix(&[d], CMatrix::zeros(d, d));
        let mut first = true;
        for pair in proof {
            {
                // Frontier: (sent, kept, forwarded) — everything already
                // tested has been traced out.
                let cur: &DensityMatrix = if first { &left } else { &sent };
                cur.tensor_into(pair, &mut frontier);
            }
            first = false;
            frontier.symmetrize_pair_with(1, 2, &swap, &mut tmp);
            if !swap_test_on(&mut frontier, 0, 1, rng) {
                return false;
            }
            frontier.partial_trace_keep_into(&[2], &mut sent);
        }
        let cur: &DensityMatrix = if first { &left } else { &sent };
        let p = cur.expectation(&self.right_effect).re.clamp(0.0, 1.0);
        rng.random::<f64>() < p
    }

    /// Validates a mixed proof's shape once, before a sampling walk.
    fn validate_mixed_proof(&self, proof: &[DensityMatrix]) {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        for pair in proof {
            assert_eq!(
                pair.dims(),
                &[self.dim, self.dim],
                "proof register dimension mismatch"
            );
        }
    }

    /// Empirical acceptance frequency over `trials` sampled rounds — a Monte
    /// Carlo check against [`SwapTestChain::acceptance_separable`].
    ///
    /// Batch loops over a fixed proof should prefer
    /// [`SwapTestChain::sample_rounds`], which prepares the round tables
    /// once and returns interval statistics alongside the rate.
    pub fn estimate_acceptance<R: Rng + ?Sized>(
        &self,
        proof: &SeparableChainProof,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let accepts = (0..trials)
            .filter(|_| self.simulate_round(proof, rng))
            .count();
        accepts as f64 / trials as f64
    }

    /// Compiles a separable proof into a [`ChainRoundPlan`]: the
    /// per-instance preparation of the batched trial engine, done once
    /// instead of per round. See the plan type for the table semantics.
    ///
    /// # Panics
    ///
    /// As [`SwapTestChain::simulate_round`].
    pub fn round_plan(&self, proof: &SeparableChainProof) -> ChainRoundPlan {
        self.validate_proof(proof);
        let k = self.num_intermediate();
        let mut tables = vec![0.0f64; 4 * (k + 1)];
        // Node j = 0 tests the fixed left state against the kept register;
        // independent of the (nonexistent) previous coin.
        if k > 0 {
            let (r0, r1) = &proof[0];
            for prev in 0..2 {
                tables[prev] = swap_test_acceptance_pure(&self.left_state, r0);
                tables[2 + prev] = swap_test_acceptance_pure(&self.left_state, r1);
            }
        }
        // Node j ≥ 1 tests the register forwarded by node j−1 (selected by
        // the previous coin) against its own kept register (its own coin).
        for j in 1..k {
            let (p0, p1) = &proof[j - 1];
            let (r0, r1) = &proof[j];
            for (idx, (fwd, kept)) in [(p1, r0), (p0, r0), (p1, r1), (p0, r1)].iter().enumerate() {
                tables[4 * j + idx] = swap_test_acceptance_pure(fwd, kept);
            }
        }
        // The boundary measurement sees the register forwarded by the last
        // node (previous coin); duplicated across the unused own-coin bit.
        if k > 0 {
            let (p0, p1) = &proof[k - 1];
            for cur in 0..2 {
                tables[4 * k + 2 * cur] = self.boundary_acceptance(p1);
                tables[4 * k + 2 * cur + 1] = self.boundary_acceptance(p0);
            }
        } else {
            tables[..4].fill(self.boundary_acceptance(&self.left_state));
        }
        ChainRoundPlan::from_tables(tables, k)
    }

    /// Compiles a separable proof into a per-node message-passing program
    /// for the transport executors of [`crate::net`]: the chain's round
    /// tables walked one network node at a time over a
    /// [`netsim::Transport`].
    ///
    /// # Panics
    ///
    /// As [`SwapTestChain::round_plan`].
    pub fn net_program(&self, proof: &SeparableChainProof) -> crate::net::ChainNetProgram {
        crate::net::ChainNetProgram::new(self.round_plan(proof))
    }

    /// Batched Monte-Carlo rounds on a fixed separable proof: prepares the
    /// round tables once and runs `n` trials through the block engine of
    /// [`crate::trials`] — accept counts are bit-identical at any worker
    /// count for a fixed `(proof, n, seed)`.
    pub fn sample_rounds(&self, proof: &SeparableChainProof, n: u64, seed: u64) -> TrialReport {
        trials::run_trials(&self.round_plan(proof), n, seed)
    }

    /// As [`SwapTestChain::sample_rounds`] with an explicit worker-slot
    /// count (used by the determinism tests and the bench worker sweeps).
    pub fn sample_rounds_with_workers(
        &self,
        proof: &SeparableChainProof,
        n: u64,
        seed: u64,
        workers: usize,
    ) -> TrialReport {
        trials::run_trials_with_workers(&self.round_plan(proof), n, seed, workers)
    }

    /// Prepares the batched sampler for per-node *mixed* proofs: the
    /// density-frontier walk of [`SwapTestChain::simulate_round_mixed`] with
    /// every node's linear algebra **compiled to register-sized real
    /// operators**.
    ///
    /// For a fixed proof pair `σ_j`, everything the per-round walk does with
    /// the `d³ × d³` frontier `sent ⊗ σ_j` is linear in the `d × d` `sent`
    /// register: the SWAP-test acceptance probability is a linear functional
    /// `p = ⟨F_j, sent⟩`, and the accepted-and-traced-down update is a
    /// superoperator `sent' = (1/p)·S_j·sent`. Because `sent` is Hermitian
    /// and the walk maps Hermitian to Hermitian, both compile to **real**
    /// operators over the Hermitian operator basis (`d²` real coordinates
    /// instead of `2d²` plane entries — half the state, a quarter of the
    /// mat-vec flops). They are compiled here, once per node, by pushing
    /// the basis elements through the frontier kernels — after which a
    /// round never materialises a frontier at all: it walks `d²`-real
    /// vectors through `d² × d²` compiled superoperators (2 KB per node at
    /// `d = 4`, L1-resident), executed by [`qsim::simd::dot4`] and
    /// [`qsim::simd::matvec_cols`] identically on the scalar and AVX2
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one two-register density matrix of
    /// the chain's register dimension per intermediate node.
    pub fn mixed_sampler<'a>(&'a self, proof: &[DensityMatrix]) -> MixedChainSampler<'a> {
        self.validate_mixed_proof(proof);
        let d = self.dim;
        let d2 = d * d;
        let fdims = [d, d, d];
        // The node's symmetrisation channel ρ → ½ρ + ½S₁₂ρS₁₂† acts only on
        // the pair's own registers, so it commutes with tensoring the sent
        // register in front: channel(sent ⊗ pair) = sent ⊗ channel(pair).
        // The channel is deterministic, so it is applied to each proof pair
        // exactly once here.
        let sym_plan = KernelPlan::for_conjugation(&[d, d], &[0, 1], &qsim::gates::swap(d));
        let mut tmp = CMatrix::zeros(d2, d2);
        let mut scratch = PlanScratch::default();
        // The frontier plan exists only during this compilation (compiled
        // once, bypassing the plan cache): the S_2 class plan of the SWAP
        // test on (sent, kept). Steady-state rounds perform zero plan
        // compilations — asserted by `bench_protocols` via
        // `qsim::plan::compile_count`.
        let test_plan = KernelPlan::for_symmetric(&fdims, &[0, 1]);
        let mut frontier = DensityMatrix::from_matrix(&fdims, CMatrix::zeros(d2 * d, d2 * d));
        let mut traced = DensityMatrix::from_matrix(&[d], CMatrix::zeros(d, d));
        let nodes: Vec<MixedNodeOps> = proof
            .iter()
            .map(|pair| {
                let mut p = pair.clone();
                p.symmetrize_pair_planned(&sym_plan, &mut tmp, &mut scratch);
                // Compile the node by evaluating the frontier kernels on
                // the Hermitian basis elements B_c of the sent register:
                // column c of the superoperator holds the basis
                // coefficients of the unnormalised traced-down image of
                // B_c ⊗ pair, and F[c] is its class-projection trace.
                let mut ops = MixedNodeOps {
                    f: vec![0.0; d2],
                    s: vec![0.0; d2 * d2],
                    t: vec![0.0; d2],
                };
                for c in 0..d2 {
                    let basis = DensityMatrix::from_matrix(&[d], hermitian_basis_element(d, c));
                    basis.tensor_into(&p, &mut frontier);
                    ops.f[c] =
                        kernels::class_projection_trace_with(frontier.matrix(), &test_plan).re;
                    frontier.apply_class_projector_traced(&test_plan, 1.0, &mut traced);
                    hermitian_coeffs(traced.matrix(), d, &mut ops.s[c * d2..(c + 1) * d2]);
                }
                // Degenerate branch constant: tr_{01}(sent ⊗ pair) keeping
                // the forwarded register factorises as
                // tr(sent)·tr_kept(pair).
                hermitian_coeffs(p.partial_trace_keep(&[1]).matrix(), d, &mut ops.t);
                ops
            })
            .collect();
        // The walk's initial state and the final measurement, in the same
        // coordinates: tr(M·ρ) = ⟨M, ρ⟩ is a real dot of basis coefficient
        // vectors when both operators are Hermitian.
        let mut left_h = vec![0.0; d2];
        hermitian_coeffs(
            DensityMatrix::from_pure(&self.left_state).matrix(),
            d,
            &mut left_h,
        );
        let mut eff_h = vec![0.0; d2];
        hermitian_coeffs(&self.right_effect, d, &mut eff_h);
        MixedChainSampler {
            chain: self,
            nodes,
            left_h,
            eff_h,
        }
    }

    /// Batched Monte-Carlo rounds on a fixed mixed proof; see
    /// [`SwapTestChain::mixed_sampler`].
    pub fn sample_rounds_mixed(&self, proof: &[DensityMatrix], n: u64, seed: u64) -> TrialReport {
        trials::run_trials(&self.mixed_sampler(proof), n, seed)
    }

    /// Cost summary of one repetition of the chain protocol, given the size in
    /// qubits of one message register.
    pub fn costs(&self, register_qubits: u64) -> ProtocolCosts {
        let mut t = CostTracker::new();
        for j in 1..self.r {
            t.record_proof(j, 2 * register_qubits);
        }
        for j in 0..self.r {
            t.record_message(j, j + 1, register_qubits);
        }
        t.set_rounds(1);
        t.summary()
    }

    /// The paper's soundness bound for one repetition on a no-instance
    /// (Section 3.2): all nodes accept with probability at most `1 − 4/(81·r²)`.
    pub fn paper_soundness_bound(r: usize) -> f64 {
        1.0 - 4.0 / (81.0 * (r as f64) * (r as f64))
    }

    /// Number of parallel repetitions the paper uses to push the soundness
    /// error below 1/3: `⌈2 · 81 r² / 4⌉`.
    pub fn paper_repetitions(r: usize) -> usize {
        (2.0 * 81.0 * (r as f64) * (r as f64) / 4.0).ceil() as usize
    }

    /// Soundness error after `k` independent parallel repetitions, given the
    /// soundness error `single` of one repetition.
    pub fn repeated_soundness(single: f64, k: usize) -> f64 {
        single.powi(k as i32)
    }
}

/// A chain instance compiled for batched round sampling.
///
/// Conditioned on the symmetrisation coins `c₀..c_{k−1}`, every SWAP test of
/// the chain acts on disjoint product registers, and the test at node `j`
/// involves only the registers selected by the coins `(c_{j−1}, c_j)` — a
/// Markov structure. The plan therefore precomputes, once per instance, a
/// 4-entry probability table per node (indexed by the adjacent coin pair;
/// the boundary measurement is a fifth pseudo-node depending on `c_{k−1}`
/// alone). A sampled round is then: draw the coin word (one `u64`),
/// accumulate the pattern-conditional acceptance `Π_j t_j(c)` by table
/// lookups, and draw one accept Bernoulli against the product — identical in
/// distribution to the per-node Bernoulli walk of
/// [`SwapTestChain::simulate_round`] (a product of independent accepts
/// conditioned on the same coins), but with **zero** per-round state
/// preparation, allocation or overlap arithmetic.
#[derive(Clone, Debug)]
pub struct ChainRoundPlan {
    /// `4(k+1)` entries: node `j`'s acceptance at coin pair
    /// `idx = c_{j−1} + 2·c_j` (with `c_{−1} = 0`), nodes `0..k` the SWAP
    /// tests and node `k` the boundary measurement.
    tables: Vec<f64>,
    /// Number of intermediate nodes.
    k: usize,
    /// Chunk-fused node tables for the lane walk (PR 7): chunk `c` covers
    /// nodes `[qsim::simd::CHUNK_NODES·c, …)` and stores the pre-multiplied
    /// product of its nodes' acceptances for every value of the
    /// `m_c + 1`-bit selector window. Empty when `k > 62` (no single coin
    /// word — the lane path falls back to the per-trial walk).
    fused: Vec<f64>,
    /// Per-chunk selector masks, `2^(m_c + 1) − 1`.
    chunk_masks: Vec<u64>,
}

impl ChainRoundPlan {
    /// Builds a plan from its per-node tables, pre-fusing the chunked lane
    /// tables when one coin word covers every node. Fusing multiplies each
    /// chunk's node entries at compile time (ascending node order), so the
    /// runtime walk does one table read per chunk instead of one per node.
    pub(crate) fn from_tables(tables: Vec<f64>, k: usize) -> ChainRoundPlan {
        use qsim::simd::{CHUNK_NODES, CHUNK_STRIDE};
        let (mut fused, mut chunk_masks) = (Vec::new(), Vec::new());
        if k <= 62 {
            let nodes = k + 1;
            let nchunks = nodes.div_ceil(CHUNK_NODES);
            fused = vec![0.0f64; nchunks * CHUNK_STRIDE];
            chunk_masks = vec![0u64; nchunks];
            for c in 0..nchunks {
                let m = CHUNK_NODES.min(nodes - c * CHUNK_NODES);
                chunk_masks[c] = (1u64 << (m + 1)) - 1;
                for sel in 0..=chunk_masks[c] {
                    let mut p = 1.0f64;
                    for i in 0..m {
                        let j = c * CHUNK_NODES + i;
                        p *= tables[4 * j + ((sel >> i) & 3) as usize];
                    }
                    fused[c * CHUNK_STRIDE + sel as usize] = p;
                }
            }
        }
        ChainRoundPlan {
            tables,
            k,
            fused,
            chunk_masks,
        }
    }

    /// Number of intermediate nodes the plan covers.
    pub fn num_intermediate(&self) -> usize {
        self.k
    }

    /// The raw `4(k+1)` per-node tables — the serialisable identity of a
    /// compiled plan. [`crate::cluster::ProgramSpec`] ships these bit-exact
    /// (`f64::to_bits` hex) so a node process rebuilds the identical plan.
    pub(crate) fn tables(&self) -> &[f64] {
        &self.tables
    }

    /// Node `j`'s acceptance table entry at coin-pair index
    /// `idx = c_{j−1} + 2·c_j` (`j = k` is the boundary pseudo-node, indexed
    /// by `c_{k−1}` alone) — read by the per-node transport executors of
    /// [`crate::net`], which walk the same tables one node at a time.
    #[inline]
    pub(crate) fn table(&self, j: usize, idx: usize) -> f64 {
        self.tables[4 * j + idx]
    }

    /// Draws one round's symmetrisation coins from `rng` and returns the
    /// coin-conditional acceptance probability `Π_j t_j(c)` — the chain's
    /// contribution to a round accept draw. Exposed so multi-segment
    /// protocols (relay) can combine several chains into a single Bernoulli.
    #[inline]
    pub fn round_weight<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.k <= 62 {
            // All coins in one word, pre-shifted so bit j of `aug` is
            // c_{j−1} and bit j+1 is c_j: node j's table index is
            // `(aug >> j) & 3`.
            let aug = rng.random::<u64>() << 1;
            let mut w = 1.0;
            for j in 0..=self.k {
                w *= self.tables[4 * j + ((aug >> j) & 3) as usize];
            }
            w
        } else {
            let mut prev = 0usize;
            let mut w = 1.0;
            for j in 0..self.k {
                let cur = usize::from(rng.random::<bool>());
                w *= self.tables[4 * j + prev + 2 * cur];
                prev = cur;
            }
            w * self.tables[4 * self.k + prev]
        }
    }

    /// Samples one round: coins, conditional product, one accept draw.
    #[inline]
    pub fn round<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let w = self.round_weight(rng);
        rng.random::<f64>() < w
    }

    /// Whether one pre-shifted coin word covers every node (`k ≤ 62`) — the
    /// precondition of [`ChainRoundPlan::lane_walk`].
    #[inline]
    pub(crate) fn single_coin_word(&self) -> bool {
        self.k <= 62
    }

    /// Lane walk over the chunk-fused tables: `acc[i] = Π_j t_j(aug[i])` for
    /// a lane batch of pre-shifted coin words — the vectorisable core shared
    /// with the relay plan, which multiplies one walk per segment into a
    /// round. The fused product groups nodes in chunks (same grouping on the
    /// scalar and AVX2 paths, so accept draws stay bit-identical across
    /// them), which rounds differently in the last ulp than the per-node
    /// walk of [`ChainRoundPlan::round_weight`] — the engine's accept counts
    /// are pinned across lane widths, workers and SIMD paths, not against
    /// the serial sampler.
    #[inline]
    pub(crate) fn lane_walk(&self, aug: &[u64], acc: &mut [f64]) {
        qsim::simd::fused_lane_walk(&self.fused, &self.chunk_masks, aug, acc);
    }
}

impl LaneBatched for ChainRoundPlan {
    fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64 {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane width {lanes} outside 1..={MAX_LANES}"
        );
        if self.k > 62 {
            // Coins exceed one word: per-trial scalar walk. Each trial still
            // owns its counter stream, so the fallback is lane-width- and
            // worker-invariant by the same argument as the lane path.
            return (0..trials)
                .filter(|&t| self.round(&mut stream.trial_rng(t)))
                .count() as u64;
        }
        // SoA-across-trials lane walk: each lane holds one trial's coin word
        // (pre-shifted; see `round_weight`), accept draw and acceptance
        // accumulator. Trial t's draws come from its own counter stream —
        // coin word first, accept draw second — so the planes are identical
        // however trials are grouped, and `qsim::simd` executes the table
        // walk four lanes per instruction when the AVX2 path is selected.
        let mut aug = [0u64; MAX_LANES];
        let mut draw = [0.0f64; MAX_LANES];
        let mut acc = [0.0f64; MAX_LANES];
        let mut accepts = 0u64;
        let mut t = 0u64;
        while t < trials {
            let l = (lanes as u64).min(trials - t) as usize;
            stream.fill_lane_streams(t, &mut aug[..l], &mut draw[..l]);
            for a in &mut aug[..l] {
                *a <<= 1;
            }
            self.lane_walk(&aug[..l], &mut acc[..l]);
            accepts += qsim::simd::count_accepts(&draw[..l], &acc[..l]);
            t += l as u64;
        }
        accepts
    }
}

impl BatchSampler for ChainRoundPlan {
    type Scratch = ();

    fn scratch(&self) {}

    fn sample_block(&self, trials: u64, _scratch: &mut (), stream: &BlockRng) -> u64 {
        self.sample_lane_block(trials, stream, default_lane_width())
    }
}

/// Element `b` of the orthonormal Hermitian operator basis of `d × d`
/// matrices under the Frobenius inner product: the `d` diagonal units
/// `E_ii` first, then for each pair `i < k` (row-major pair order) the
/// symmetric `(E_ik + E_ki)/√2` followed by the antisymmetric
/// `i(E_ik − E_ki)/√2`. Every Hermitian matrix has *real* coefficients in
/// this basis, which is what lets the mixed sampler walk real vectors.
fn hermitian_basis_element(d: usize, b: usize) -> CMatrix {
    let mut m = CMatrix::zeros(d, d);
    if b < d {
        m.set(b, b, Complex::new(1.0, 0.0));
        return m;
    }
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mut idx = d;
    for i in 0..d {
        for k in i + 1..d {
            if idx == b {
                m.set(i, k, Complex::new(s, 0.0));
                m.set(k, i, Complex::new(s, 0.0));
                return m;
            }
            if idx + 1 == b {
                m.set(i, k, Complex::new(0.0, s));
                m.set(k, i, Complex::new(0.0, -s));
                return m;
            }
            idx += 2;
        }
    }
    unreachable!("Hermitian basis index {b} out of range for dimension {d}");
}

/// Real coefficients of `m` in the [`hermitian_basis_element`] basis:
/// `out[b] = Re ⟨B_b, m⟩`. For Hermitian `m` this is an exact
/// decomposition; taking the real part projects away any numerical
/// anti-Hermitian residue.
fn hermitian_coeffs(m: &CMatrix, d: usize, out: &mut [f64]) {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let sp = m.split();
    for (i, o) in out.iter_mut().enumerate().take(d) {
        *o = sp.re[i * d + i];
    }
    let mut idx = d;
    for i in 0..d {
        for k in i + 1..d {
            out[idx] = (sp.re[i * d + k] + sp.re[k * d + i]) * s;
            out[idx + 1] = (sp.im[i * d + k] - sp.im[k * d + i]) * s;
            idx += 2;
        }
    }
}

/// Batched sampler for per-node mixed proofs; built by
/// [`SwapTestChain::mixed_sampler`]. Carries one compiled
/// [`MixedNodeOps`] per node — the frontier walk's per-node linear algebra
/// collapsed onto the Hermitian-basis coordinates of the `d × d` sent
/// register, with the pre-symmetrised pair (the deterministic ½ρ+½SρS†
/// channel commutes with the frontier assembly) baked into the operators —
/// so a round executes real `d²` dots and `d² × d²` real mat-vecs: zero
/// metadata derivation, zero allocation, zero lock traffic, and no
/// `d³ × d³` frontier materialisation. All per-round buffers live in
/// [`MixedChainScratch`].
pub struct MixedChainSampler<'a> {
    chain: &'a SwapTestChain,
    nodes: Vec<MixedNodeOps>,
    /// Basis coefficients of `|left⟩⟨left|` — the walk's initial state.
    left_h: Vec<f64>,
    /// Basis coefficients of the right effect: `tr(M·ρ) = ⟨eff_h, v⟩`.
    eff_h: Vec<f64>,
}

/// One node's compiled frontier step (see [`SwapTestChain::mixed_sampler`]):
/// the SWAP-test acceptance functional `f` over the sent register's basis
/// coefficients, the unnormalised accepted-and-traced-down superoperator
/// `s` in column-major order (the layout [`qsim::simd::matvec_cols`]
/// consumes), and the degenerate-branch constant `tr_kept(pair)` — all
/// real, in the Hermitian operator basis.
struct MixedNodeOps {
    f: Vec<f64>,
    s: Vec<f64>,
    t: Vec<f64>,
}

/// Per-worker scratch of [`MixedChainSampler`]: the sent register's walk
/// state and one mat-vec output buffer, as real Hermitian-basis
/// coefficient vectors — `2·d²` doubles total, allocated once per worker
/// slot and reused across every trial it runs (the compiled superoperator
/// walk needs no frontier buffer at all).
pub struct MixedChainScratch {
    v: Vec<f64>,
    o: Vec<f64>,
}

impl MixedChainSampler<'_> {
    /// Samples one round through the compiled-plan frontier walk;
    /// distribution-identical (same draw sequence) to
    /// [`SwapTestChain::simulate_round_mixed`], with all of that path's
    /// per-call kernel metadata hoisted into the embedded plans. Two further
    /// round-plan hoists relative to the per-call walk: the symmetrisation
    /// channel is baked into the stored pairs (see
    /// [`SwapTestChain::mixed_sampler`]), and the post-measurement effect of
    /// a *rejecting* node is skipped — the round aborts and the scratch
    /// state is never read again, so the update is dead work (the rejection
    /// *probability* is of course still honoured by the accept draw).
    pub fn round<R: Rng + ?Sized>(&self, s: &mut MixedChainScratch, rng: &mut R) -> bool {
        let d = self.chain.dim;
        s.v.copy_from_slice(&self.left_h);
        for node in &self.nodes {
            // The SWAP test on (sent, kept) over the compiled functional:
            // acceptance trace, one Bernoulli, accept effect — exactly
            // `swap_test_on`'s draws and branches.
            let p_accept = qsim::simd::dot4(&node.f, &s.v).clamp(0.0, 1.0);
            if rng.random::<f64>() >= p_accept {
                return false;
            }
            if p_accept > 1e-12 {
                // Accept effect + trace-down in one compiled mat-vec:
                // sent ← (1/p)·S·sent. The 1/p rescale rides the copy back
                // into the walk state.
                qsim::simd::matvec_cols(&node.s, &s.v, &mut s.o);
                let inv = 1.0 / p_accept;
                for (v, &o) in s.v.iter_mut().zip(&s.o) {
                    *v = o * inv;
                }
            } else {
                // Degenerate accept at (numerically) zero probability: keep
                // the unnormalised-frontier semantics of `swap_test_on` —
                // tr_{01}(sent ⊗ pair) = tr(sent)·tr_kept(pair). The first
                // `d` basis coefficients are the diagonal, so the trace is
                // their plain sum.
                let tr: f64 = s.v[..d].iter().sum();
                for (v, &t) in s.v.iter_mut().zip(&node.t) {
                    *v = tr * t;
                }
            }
        }
        let p = qsim::simd::dot4(&self.eff_h, &s.v).clamp(0.0, 1.0);
        rng.random::<f64>() < p
    }
}

impl BatchSampler for MixedChainSampler<'_> {
    type Scratch = MixedChainScratch;

    fn scratch(&self) -> MixedChainScratch {
        let d2 = self.chain.dim * self.chain.dim;
        MixedChainScratch {
            v: vec![0.0; d2],
            o: vec![0.0; d2],
        }
    }

    fn sample_block(&self, trials: u64, scratch: &mut MixedChainScratch, stream: &BlockRng) -> u64 {
        // Sequential per-block stream: the frontier walk is inherently
        // trial-at-a-time (a variable number of draws per round), and the
        // legacy stream keeps mixed accept counts bit-stable across the
        // engine's lane-batching restructure.
        let mut rng = stream.block_rng();
        (0..trials)
            .filter(|_| self.round(scratch, &mut rng))
            .count() as u64
    }
}

/// Named cheating strategies for chains whose left state and right effect come
/// from two distinct fingerprints `|h_x> ≠ |h_y>` (EQ/GT-style no-instances).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainCheat {
    /// Send the left fingerprint `|h_x>` everywhere: the right end detects it.
    AllLeft,
    /// Send the right fingerprint `|h_y>` everywhere: the first SWAP test
    /// detects it.
    AllRight,
    /// Interpolate gradually from `|h_x>` to `|h_y>` along the chain — the
    /// strategy that saturates the `1 − Θ(1/r²)` single-shot soundness error.
    Interpolate,
}

/// Builds the proof corresponding to a named cheating strategy, given the two
/// boundary states.
pub fn cheating_proof(
    chain: &SwapTestChain,
    right_state: &PureState,
    strategy: ChainCheat,
) -> SeparableChainProof {
    let k = chain.num_intermediate();
    let left = chain.left_state().clone();
    match strategy {
        ChainCheat::AllLeft => chain.uniform_proof(&left),
        ChainCheat::AllRight => chain.uniform_proof(right_state),
        ChainCheat::Interpolate => {
            let lv = left.amplitudes();
            let rv = right_state.amplitudes();
            (0..k)
                .map(|j| {
                    // Node j (1-based j+1 of r) interpolates at fraction (j+1)/r.
                    let frac = (j + 1) as f64 / chain.path_length() as f64;
                    let mut v = lv.scale(Complex::real(1.0 - frac));
                    v.add_scaled(rv, Complex::real(frac));
                    let state = if v.norm() > 1e-9 {
                        PureState::from_amplitudes(&[chain.register_dim()], v.normalized())
                    } else {
                        left.clone()
                    };
                    (state.clone(), state)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{CVector, RandomStateGenerator};

    fn orthogonal_boundary(dim: usize) -> (PureState, CMatrix, PureState) {
        // Left state |0>, right effect |1><1| (accepts only the orthogonal state).
        let left = PureState::single(dim, 0);
        let right_state = PureState::single(dim, 1);
        let effect = CMatrix::projector(right_state.amplitudes());
        (left, effect, right_state)
    }

    fn matching_boundary(dim: usize) -> (PureState, CMatrix) {
        let left = PureState::single(dim, 0);
        let effect = CMatrix::projector(left.amplitudes());
        (left, effect)
    }

    #[test]
    fn perfect_completeness_on_matching_boundaries() {
        for r in 1..=5 {
            let (left, effect) = matching_boundary(2);
            let chain = SwapTestChain::new(r, left, effect);
            assert!(
                (chain.completeness() - 1.0).abs() < 1e-10,
                "r={r}: completeness {}",
                chain.completeness()
            );
        }
    }

    #[test]
    fn mismatched_boundaries_are_rejected_with_positive_probability() {
        for r in 2..=4 {
            let (left, effect, right_state) = orthogonal_boundary(2);
            let chain = SwapTestChain::new(r, left, effect);
            for strat in [
                ChainCheat::AllLeft,
                ChainCheat::AllRight,
                ChainCheat::Interpolate,
            ] {
                let proof = cheating_proof(&chain, &right_state, strat);
                let p = chain.acceptance_separable(&proof);
                assert!(p < 1.0 - 1e-6, "r={r} {strat:?}: acceptance {p}");
                // The paper's bound: acceptance <= 1 - 4/(81 r^2).
                assert!(
                    p <= SwapTestChain::paper_soundness_bound(r) + 1e-9,
                    "r={r} {strat:?}: acceptance {p} violates the paper bound"
                );
            }
        }
    }

    #[test]
    fn interpolation_beats_naive_cheating() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(4, left, effect);
        let naive =
            chain.acceptance_separable(&cheating_proof(&chain, &right_state, ChainCheat::AllLeft));
        let smart = chain.acceptance_separable(&cheating_proof(
            &chain,
            &right_state,
            ChainCheat::Interpolate,
        ));
        assert!(
            smart > naive,
            "interpolation {smart} should beat naive {naive}"
        );
    }

    #[test]
    fn r_equals_one_has_no_proof_and_direct_measurement() {
        let (left, effect, _) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        assert_eq!(chain.num_intermediate(), 0);
        assert!(chain.acceptance_separable(&Vec::new()).abs() < 1e-12);
        assert!(chain.optimal_acceptance().abs() < 1e-12);
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        assert!((chain.acceptance_separable(&Vec::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spectral_soundness_bounds_every_separable_strategy() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let optimal = chain.optimal_acceptance();
        for strat in [
            ChainCheat::AllLeft,
            ChainCheat::AllRight,
            ChainCheat::Interpolate,
        ] {
            let p = chain.acceptance_separable(&cheating_proof(&chain, &right_state, strat));
            assert!(
                p <= optimal + 1e-8,
                "{strat:?}: separable {p} exceeds optimal {optimal}"
            );
        }
        // And respects the paper's bound.
        assert!(optimal <= SwapTestChain::paper_soundness_bound(3) + 1e-9);
        assert!(optimal < 1.0 - 1e-6);
    }

    #[test]
    fn spectral_soundness_bounds_random_separable_proofs() {
        let (left, effect, _) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let optimal = chain.optimal_acceptance();
        let mut gen = RandomStateGenerator::new(5);
        for _ in 0..20 {
            let proof: SeparableChainProof = (0..chain.num_intermediate())
                .map(|_| (gen.random_pure(&[2]), gen.random_pure(&[2])))
                .collect();
            let p = chain.acceptance_separable(&proof);
            assert!(
                p <= optimal + 1e-8,
                "random separable proof {p} exceeds optimal {optimal}"
            );
        }
    }

    #[test]
    fn completeness_with_operator_matches_separable_formula() {
        // The honest product proof evaluated through the acceptance operator
        // must give the same number as the pattern-enumeration formula.
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(3, left.clone(), effect);
        let a = chain.acceptance_operator();
        let honest_joint = PureState::tensor_all(&[left.clone(), left.clone(), left.clone(), left]);
        let v = honest_joint.amplitudes();
        let p_op = v.inner(&a.apply(v)).re;
        let p_formula = chain.completeness();
        assert!((p_op - p_formula).abs() < 1e-9, "{p_op} vs {p_formula}");
    }

    #[test]
    fn sampled_rounds_match_exact_acceptance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let proof = cheating_proof(&chain, &right_state, ChainCheat::Interpolate);
        let exact = chain.acceptance_separable(&proof);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 3000;
        let est = chain.estimate_acceptance(&proof, trials, &mut rng);
        assert!(
            (est - exact).abs() < 0.05,
            "estimated {est} vs exact {exact}"
        );
        // The mixed-proof frontier sampler agrees on the same (pure) proof.
        let mixed: Vec<qsim::DensityMatrix> = proof
            .iter()
            .map(|(a, b)| qsim::DensityMatrix::from_pure(&a.tensor(b)))
            .collect();
        let accepts = (0..trials)
            .filter(|_| chain.simulate_round_mixed(&mixed, &mut rng))
            .count();
        let est_mixed = accepts as f64 / trials as f64;
        assert!(
            (est_mixed - exact).abs() < 0.05,
            "mixed-sampler estimate {est_mixed} vs exact {exact}"
        );
    }

    #[test]
    fn honest_sampled_round_always_accepts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(4, left, effect);
        let proof = chain.honest_proof();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            assert!(chain.simulate_round(&proof, &mut rng));
        }
    }

    #[test]
    fn round_plan_statistics_match_exact_acceptance() {
        let (chain, right_state) = {
            let (left, effect, right_state) = orthogonal_boundary(2);
            (SwapTestChain::new(3, left, effect), right_state)
        };
        for strat in [
            ChainCheat::AllLeft,
            ChainCheat::AllRight,
            ChainCheat::Interpolate,
        ] {
            let proof = cheating_proof(&chain, &right_state, strat);
            let exact = chain.acceptance_separable(&proof);
            let report = chain.sample_rounds(&proof, 40_000, 7);
            let eps = report.hoeffding_radius(1e-9);
            assert!(
                (report.acceptance_rate() - exact).abs() < eps,
                "{strat:?}: batched rate {} vs exact {exact} (margin {eps})",
                report.acceptance_rate()
            );
            let (lo, hi) = report.wilson_interval(5.0);
            assert!(lo <= exact && exact <= hi, "{strat:?}: wilson ({lo},{hi})");
        }
    }

    #[test]
    fn round_plan_honest_proof_accepts_every_trial() {
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(5, left, effect);
        let report = chain.sample_rounds(&chain.honest_proof(), 10_000, 3);
        assert_eq!(report.accepts, report.trials, "perfect completeness");
    }

    #[test]
    fn round_plan_handles_the_degenerate_r1_chain() {
        let (left, effect, _) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        let report = chain.sample_rounds(&Vec::new(), 1000, 5);
        assert_eq!(report.accepts, 0, "orthogonal boundary never accepts");
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        let report = chain.sample_rounds(&Vec::new(), 1000, 5);
        assert_eq!(report.accepts, 1000, "matching boundary always accepts");
    }

    #[test]
    fn round_plan_accepts_are_identical_across_worker_counts() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(4, left, effect);
        let proof = cheating_proof(&chain, &right_state, ChainCheat::Interpolate);
        let base = chain.sample_rounds_with_workers(&proof, 30_000, 11, 1);
        for workers in [2usize, 4, 8] {
            let r = chain.sample_rounds_with_workers(&proof, 30_000, 11, workers);
            assert_eq!(r.accepts, base.accepts, "worker count {workers}");
        }
        // Different seeds explore different outcome sequences.
        let other = chain.sample_rounds_with_workers(&proof, 30_000, 12, 1);
        assert_ne!(other.accepts, base.accepts);
    }

    #[test]
    fn batched_mixed_sampler_matches_the_pure_plan_statistics() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let proof = cheating_proof(&chain, &right_state, ChainCheat::Interpolate);
        let exact = chain.acceptance_separable(&proof);
        let mixed: Vec<DensityMatrix> = proof
            .iter()
            .map(|(a, b)| DensityMatrix::from_pure(&a.tensor(b)))
            .collect();
        let report = chain.sample_rounds_mixed(&mixed, 6000, 13);
        let eps = report.hoeffding_radius(1e-9);
        assert!(
            (report.acceptance_rate() - exact).abs() < eps,
            "mixed batched rate {} vs exact {exact}",
            report.acceptance_rate()
        );
    }

    #[test]
    fn mixed_sampler_accepts_are_identical_across_worker_counts() {
        // The one sampler with *mutable* per-worker scratch: pooled runs
        // must reproduce the serial accept count exactly, which fails if
        // scratch state leaks between blocks or depends on the executing
        // slot. Needs ≥ 2 RNG blocks so the pooled run actually engages a
        // second worker; a 1-node chain keeps the frontier walks cheap.
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(2, left, effect);
        let proof = cheating_proof(&chain, &right_state, ChainCheat::Interpolate);
        let mixed: Vec<DensityMatrix> = proof
            .iter()
            .map(|(a, b)| DensityMatrix::from_pure(&a.tensor(b)))
            .collect();
        let sampler = chain.mixed_sampler(&mixed);
        let n = 2 * trials::BLOCK_TRIALS;
        let serial = trials::run_trials_with_workers(&sampler, n, 13, 1);
        let pooled = trials::run_trials_with_workers(&sampler, n, 13, 4);
        assert_eq!(pooled.workers, 2, "two blocks engage two slots");
        assert_eq!(
            (serial.trials, serial.accepts),
            (pooled.trials, pooled.accepts),
            "mixed-sampler accepts must not depend on worker count"
        );
    }

    #[test]
    fn costs_scale_linearly_in_path_length_and_register_size() {
        let (left, effect) = matching_boundary(2);
        let c3 = SwapTestChain::new(3, left.clone(), effect.clone()).costs(10);
        let c6 = SwapTestChain::new(6, left, effect).costs(10);
        assert_eq!(c3.local_proof_qubits, 20);
        assert_eq!(c3.local_message_qubits, 10);
        assert_eq!(c3.total_proof_qubits, 40);
        assert_eq!(c6.total_proof_qubits, 100);
        assert!(c6.total_message_qubits > c3.total_message_qubits);
        assert_eq!(c3.rounds, 1);
    }

    #[test]
    fn paper_repetition_count_drives_soundness_below_one_third() {
        for r in [2usize, 4, 8, 16] {
            let single = SwapTestChain::paper_soundness_bound(r);
            let k = SwapTestChain::paper_repetitions(r);
            let repeated = SwapTestChain::repeated_soundness(single, k);
            assert!(repeated < 1.0 / 3.0, "r={r}: repeated soundness {repeated}");
        }
    }

    #[test]
    fn entangled_optimum_never_below_best_separable_on_nonorthogonal_boundaries() {
        // Boundary states with overlap 1/2 (a harder no-instance than orthogonal ones).
        let left = PureState::single(2, 0);
        let right =
            PureState::from_amplitudes(&[2], CVector::from_reals(&[0.5f64.sqrt(), 0.5f64.sqrt()]));
        let effect = CMatrix::projector(right.amplitudes());
        let chain = SwapTestChain::new(2, left, effect);
        let sep =
            chain.acceptance_separable(&cheating_proof(&chain, &right, ChainCheat::Interpolate));
        let opt = chain.optimal_acceptance();
        assert!(opt >= sep - 1e-9);
        assert!(opt < 1.0);
    }
}
