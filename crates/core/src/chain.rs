//! The SWAP-test relay chain — the engine behind every path protocol in the
//! paper (Algorithm 3 and its descendants).
//!
//! The structure shared by the protocols of Sections 3.2, 5.1 and 7 is:
//!
//! * the left extremity `v₀` prepares a state `|a>` (a fingerprint, a prefix
//!   fingerprint, or the output of Alice's unitary on a QMA proof);
//! * every intermediate node `v_j` receives two registers from the prover,
//!   **symmetrises** them (swaps with probability 1/2, the paper's
//!   simplification of FGNP21), keeps one and forwards the other;
//! * every intermediate node SWAP-tests the register received from its left
//!   neighbour against the kept register;
//! * the right extremity `v_r` measures the final forwarded register with an
//!   accept effect `M` (Bob's measurement from a one-way protocol).
//!
//! [`SwapTestChain`] computes, exactly:
//! * the acceptance probability for any **separable** per-node proof, by
//!   enumerating the `2^{r−1}` symmetrisation patterns (conditioned on a
//!   pattern all tests act on disjoint registers, so the joint acceptance
//!   factorises);
//! * the full **acceptance operator** on the joint proof space for small
//!   instances, whose largest eigenvalue is the exact soundness error against
//!   arbitrary *entangled* proofs — the quantity the paper can only bound
//!   analytically.

use netsim::{CostTracker, ProtocolCosts};
use qsim::linalg::max_eigenvalue;
use qsim::permutation::right_project_symmetric;
use qsim::swap_test::{swap_test_acceptance_pure, swap_test_on};
use qsim::{gates, kernels, CMatrix, Complex, DensityMatrix, PureState};
use rand::Rng;

/// A proof for the chain: one pair of register states per intermediate node
/// (`R_{j,0}`, `R_{j,1}` for `j = 1..r−1`), each a pure state of the chain's
/// register dimension.
pub type SeparableChainProof = Vec<(PureState, PureState)>;

/// The SWAP-test relay chain on a path of length `r`.
#[derive(Clone, Debug)]
pub struct SwapTestChain {
    r: usize,
    dim: usize,
    left_state: PureState,
    right_effect: CMatrix,
}

impl SwapTestChain {
    /// Creates a chain of length `r` with the given boundary state and effect.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`, if the effect is not square of the state's
    /// dimension, or if the effect is not Hermitian.
    pub fn new(r: usize, left_state: PureState, right_effect: CMatrix) -> Self {
        assert!(r >= 1, "the path must have length at least 1");
        let dim = left_state.dim();
        assert!(
            right_effect.rows() == dim && right_effect.cols() == dim,
            "right effect must act on the message register"
        );
        assert!(
            right_effect.is_hermitian(1e-8),
            "right effect must be Hermitian"
        );
        SwapTestChain {
            r,
            dim,
            left_state: left_state.normalized(),
            right_effect,
        }
    }

    /// Path length `r`.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Dimension of each message/proof register.
    pub fn register_dim(&self) -> usize {
        self.dim
    }

    /// Number of intermediate nodes (`r − 1`).
    pub fn num_intermediate(&self) -> usize {
        self.r - 1
    }

    /// The state prepared by the left extremity.
    pub fn left_state(&self) -> &PureState {
        &self.left_state
    }

    /// The honest proof when the prover wants every register to carry `state`:
    /// both registers of every intermediate node are set to `state`.
    pub fn uniform_proof(&self, state: &PureState) -> SeparableChainProof {
        assert_eq!(state.dim(), self.dim, "proof register dimension mismatch");
        (0..self.num_intermediate())
            .map(|_| (state.clone(), state.clone()))
            .collect()
    }

    /// The honest proof for a yes-instance: every register carries the left
    /// state itself (the prover forwards the fingerprint unchanged).
    pub fn honest_proof(&self) -> SeparableChainProof {
        self.uniform_proof(&self.left_state)
    }

    /// Exact probability that **all** nodes accept, for a separable per-node
    /// pure proof, averaging over the symmetrisation randomness.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one register pair per intermediate
    /// node, or if any register has the wrong dimension.
    pub fn acceptance_separable(&self, proof: &SeparableChainProof) -> f64 {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        for (a, b) in proof {
            assert_eq!(a.dim(), self.dim, "proof register dimension mismatch");
            assert_eq!(b.dim(), self.dim, "proof register dimension mismatch");
        }
        let k = self.num_intermediate();
        if k == 0 {
            // v_r measures the left state directly.
            let v = self.left_state.amplitudes();
            return v.inner(&self.right_effect.apply(v)).re.clamp(0.0, 1.0);
        }
        let patterns = 1usize << k;
        let mut total = 0.0;
        for pattern in 0..patterns {
            let mut prob = 1.0;
            // `sent` walks down the chain: starts as the left state.
            let mut sent: &PureState = &self.left_state;
            for (j, (r0, r1)) in proof.iter().enumerate() {
                let swapped = (pattern >> j) & 1 == 1;
                let (kept, forwarded) = if swapped { (r1, r0) } else { (r0, r1) };
                prob *= swap_test_acceptance_pure(sent, kept);
                sent = forwarded;
            }
            let v = sent.amplitudes();
            prob *= v.inner(&self.right_effect.apply(v)).re.clamp(0.0, 1.0);
            total += prob;
        }
        (total / patterns as f64).clamp(0.0, 1.0)
    }

    /// Acceptance probability with the honest proof (completeness witness).
    pub fn completeness(&self) -> f64 {
        self.acceptance_separable(&self.honest_proof())
    }

    /// The acceptance operator `A` on the joint proof Hilbert space
    /// (`2(r−1)` registers of dimension `dim` each): the acceptance
    /// probability of any (possibly entangled) proof `ρ` is `tr(Aρ)`.
    ///
    /// # Panics
    ///
    /// Panics if the joint dimension exceeds 4096 (the operator would not fit
    /// in memory) or if the chain has no intermediate node.
    pub fn acceptance_operator(&self) -> CMatrix {
        let k = self.num_intermediate();
        assert!(
            k >= 1,
            "the acceptance operator needs at least one proof register"
        );
        let dims = vec![self.dim; 2 * k];
        let total: usize = dims.iter().product();
        assert!(
            total <= 1024,
            "joint proof dimension {total} too large for the spectral method"
        );
        // Effective effect of the SWAP test against the fixed left state |a>:
        // (⟨a| ⊗ I) Π_sym (|a> ⊗ I) = (I + |a><a|) / 2 on the kept register.
        let a_proj = CMatrix::projector(self.left_state.amplitudes());
        let left_effect = (&CMatrix::identity(self.dim) + &a_proj).scale(Complex::real(0.5));

        let mut accumulated = CMatrix::zeros(total, total);
        let patterns = 1usize << k;
        for pattern in 0..patterns {
            // Register index of R_{j,0} is 2j, of R_{j,1} is 2j+1 (j = 0..k-1).
            let kept = |j: usize| 2 * j + usize::from((pattern >> j) & 1 == 1);
            let forwarded = |j: usize| 2 * j + usize::from((pattern >> j) & 1 == 0);
            // Build the pattern's effect by strided right multiplication. The
            // SWAP-test factors are symmetric-subspace projectors, applied
            // matrix-free as column class averages (`O(rows·D)` each, no
            // d²×d² projector); the boundary effects are genuinely dense
            // one-register operators and go through the dense stride kernel.
            let mut effect = CMatrix::identity(total);
            kernels::right_multiply_matrix(&mut effect, &dims, &[kept(0)], &left_effect);
            for j in 1..k {
                right_project_symmetric(&mut effect, &dims, &[forwarded(j - 1), kept(j)]);
            }
            kernels::right_multiply_matrix(
                &mut effect,
                &dims,
                &[forwarded(k - 1)],
                &self.right_effect,
            );
            accumulated = &accumulated + &effect;
        }
        accumulated.scale(Complex::real(1.0 / patterns as f64))
    }

    /// Exact maximum acceptance probability over **all** proofs, including
    /// proofs entangled across nodes: the largest eigenvalue of the
    /// acceptance operator. For a no-instance this is the exact soundness
    /// error of the (un-repeated) protocol.
    ///
    /// # Panics
    ///
    /// See [`SwapTestChain::acceptance_operator`].
    pub fn optimal_acceptance(&self) -> f64 {
        if self.num_intermediate() == 0 {
            let v = self.left_state.amplitudes();
            return v.inner(&self.right_effect.apply(v)).re.clamp(0.0, 1.0);
        }
        // The acceptance operator is a product/average of projectors and is not
        // Hermitian in general (the per-pattern factors commute, but the
        // average of products need not be); symmetrise before taking the top
        // eigenvalue — tr(Aρ) is real for states, so only the Hermitian part
        // contributes.
        let a = self.acceptance_operator();
        let herm = (&a + &a.adjoint()).scale(Complex::real(0.5));
        max_eigenvalue(&herm).clamp(0.0, 1.0)
    }

    /// The measurement effect applied by the right extremity.
    pub fn right_effect(&self) -> &CMatrix {
        &self.right_effect
    }

    /// Samples one full round of the chain protocol for a separable per-node
    /// pure proof: symmetrisation coins, one SWAP test per intermediate node,
    /// and Bob's final measurement. Returns `true` when every node accepts.
    ///
    /// Pure-state fast path: conditioned on the symmetrisation pattern every
    /// test acts on disjoint product registers, so each outcome is an
    /// independent Bernoulli draw from the overlap closed form — the joint
    /// density matrix is never formed and a round costs `O(r·d)`. This is
    /// what makes end-to-end rounds at `r ≥ 8` benchable; the joint-state
    /// dense-projector simulation is `O(d^{3(2r−1)})` and already
    /// unreachable at `r = 8`.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one register pair per intermediate
    /// node or if any register has the wrong dimension.
    pub fn simulate_round<R: Rng + ?Sized>(
        &self,
        proof: &SeparableChainProof,
        rng: &mut R,
    ) -> bool {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        let mut sent: &PureState = &self.left_state;
        for (r0, r1) in proof {
            assert_eq!(r0.dim(), self.dim, "proof register dimension mismatch");
            assert_eq!(r1.dim(), self.dim, "proof register dimension mismatch");
            let swapped = rng.random::<f64>() < 0.5;
            let (kept, forwarded) = if swapped { (r1, r0) } else { (r0, r1) };
            let p = swap_test_acceptance_pure(sent, kept);
            if rng.random::<f64>() >= p {
                return false;
            }
            sent = forwarded;
        }
        let v = sent.amplitudes();
        let p = v.inner(&self.right_effect.apply(v)).re.clamp(0.0, 1.0);
        rng.random::<f64>() < p
    }

    /// Samples one full round for per-node *mixed* proofs (one two-register
    /// density matrix per intermediate node), through the matrix-free
    /// measurement layer: the walk keeps only the frontier — the forwarded
    /// state tensored with the current node's register pair, a 3-register
    /// density matrix — applies the symmetrisation channel
    /// `ρ → ½ρ + ½ SρS†` as a (monomial fast-path) Kraus channel, runs the
    /// sampled matrix-free [`swap_test_on`], and traces down to the next
    /// forwarded register. `O(r·d⁶)` total; no dense projector, no joint
    /// state over the whole chain.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not have one two-register density matrix of
    /// the chain's register dimension per intermediate node.
    pub fn simulate_round_mixed<R: Rng + ?Sized>(
        &self,
        proof: &[DensityMatrix],
        rng: &mut R,
    ) -> bool {
        assert_eq!(
            proof.len(),
            self.num_intermediate(),
            "need one register pair per intermediate node"
        );
        let half = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        let kraus = [
            CMatrix::identity(self.dim * self.dim).scale(half),
            gates::swap(self.dim).scale(half),
        ];
        let mut sent = DensityMatrix::from_pure(&self.left_state);
        for pair in proof {
            assert_eq!(
                pair.dims(),
                &[self.dim, self.dim],
                "proof register dimension mismatch"
            );
            // Frontier: (sent, kept, forwarded) — everything already tested
            // has been traced out.
            let mut frontier = sent.tensor(pair);
            frontier.apply_kraus(&[1, 2], &kraus);
            if !swap_test_on(&mut frontier, 0, 1, rng) {
                return false;
            }
            sent = frontier.partial_trace_keep(&[2]);
        }
        let p = sent.expectation(&self.right_effect).re.clamp(0.0, 1.0);
        rng.random::<f64>() < p
    }

    /// Empirical acceptance frequency over `trials` sampled rounds — a Monte
    /// Carlo check against [`SwapTestChain::acceptance_separable`].
    pub fn estimate_acceptance<R: Rng + ?Sized>(
        &self,
        proof: &SeparableChainProof,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let accepts = (0..trials)
            .filter(|_| self.simulate_round(proof, rng))
            .count();
        accepts as f64 / trials as f64
    }

    /// Cost summary of one repetition of the chain protocol, given the size in
    /// qubits of one message register.
    pub fn costs(&self, register_qubits: u64) -> ProtocolCosts {
        let mut t = CostTracker::new();
        for j in 1..self.r {
            t.record_proof(j, 2 * register_qubits);
        }
        for j in 0..self.r {
            t.record_message(j, j + 1, register_qubits);
        }
        t.set_rounds(1);
        t.summary()
    }

    /// The paper's soundness bound for one repetition on a no-instance
    /// (Section 3.2): all nodes accept with probability at most `1 − 4/(81·r²)`.
    pub fn paper_soundness_bound(r: usize) -> f64 {
        1.0 - 4.0 / (81.0 * (r as f64) * (r as f64))
    }

    /// Number of parallel repetitions the paper uses to push the soundness
    /// error below 1/3: `⌈2 · 81 r² / 4⌉`.
    pub fn paper_repetitions(r: usize) -> usize {
        (2.0 * 81.0 * (r as f64) * (r as f64) / 4.0).ceil() as usize
    }

    /// Soundness error after `k` independent parallel repetitions, given the
    /// soundness error `single` of one repetition.
    pub fn repeated_soundness(single: f64, k: usize) -> f64 {
        single.powi(k as i32)
    }
}

/// Named cheating strategies for chains whose left state and right effect come
/// from two distinct fingerprints `|h_x> ≠ |h_y>` (EQ/GT-style no-instances).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainCheat {
    /// Send the left fingerprint `|h_x>` everywhere: the right end detects it.
    AllLeft,
    /// Send the right fingerprint `|h_y>` everywhere: the first SWAP test
    /// detects it.
    AllRight,
    /// Interpolate gradually from `|h_x>` to `|h_y>` along the chain — the
    /// strategy that saturates the `1 − Θ(1/r²)` single-shot soundness error.
    Interpolate,
}

/// Builds the proof corresponding to a named cheating strategy, given the two
/// boundary states.
pub fn cheating_proof(
    chain: &SwapTestChain,
    right_state: &PureState,
    strategy: ChainCheat,
) -> SeparableChainProof {
    let k = chain.num_intermediate();
    let left = chain.left_state().clone();
    match strategy {
        ChainCheat::AllLeft => chain.uniform_proof(&left),
        ChainCheat::AllRight => chain.uniform_proof(right_state),
        ChainCheat::Interpolate => {
            let lv = left.amplitudes();
            let rv = right_state.amplitudes();
            (0..k)
                .map(|j| {
                    // Node j (1-based j+1 of r) interpolates at fraction (j+1)/r.
                    let frac = (j + 1) as f64 / chain.path_length() as f64;
                    let mut v = lv.scale(Complex::real(1.0 - frac));
                    v.add_scaled(rv, Complex::real(frac));
                    let state = if v.norm() > 1e-9 {
                        PureState::from_amplitudes(&[chain.register_dim()], v.normalized())
                    } else {
                        left.clone()
                    };
                    (state.clone(), state)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::{CVector, RandomStateGenerator};

    fn orthogonal_boundary(dim: usize) -> (PureState, CMatrix, PureState) {
        // Left state |0>, right effect |1><1| (accepts only the orthogonal state).
        let left = PureState::single(dim, 0);
        let right_state = PureState::single(dim, 1);
        let effect = CMatrix::projector(right_state.amplitudes());
        (left, effect, right_state)
    }

    fn matching_boundary(dim: usize) -> (PureState, CMatrix) {
        let left = PureState::single(dim, 0);
        let effect = CMatrix::projector(left.amplitudes());
        (left, effect)
    }

    #[test]
    fn perfect_completeness_on_matching_boundaries() {
        for r in 1..=5 {
            let (left, effect) = matching_boundary(2);
            let chain = SwapTestChain::new(r, left, effect);
            assert!(
                (chain.completeness() - 1.0).abs() < 1e-10,
                "r={r}: completeness {}",
                chain.completeness()
            );
        }
    }

    #[test]
    fn mismatched_boundaries_are_rejected_with_positive_probability() {
        for r in 2..=4 {
            let (left, effect, right_state) = orthogonal_boundary(2);
            let chain = SwapTestChain::new(r, left, effect);
            for strat in [
                ChainCheat::AllLeft,
                ChainCheat::AllRight,
                ChainCheat::Interpolate,
            ] {
                let proof = cheating_proof(&chain, &right_state, strat);
                let p = chain.acceptance_separable(&proof);
                assert!(p < 1.0 - 1e-6, "r={r} {strat:?}: acceptance {p}");
                // The paper's bound: acceptance <= 1 - 4/(81 r^2).
                assert!(
                    p <= SwapTestChain::paper_soundness_bound(r) + 1e-9,
                    "r={r} {strat:?}: acceptance {p} violates the paper bound"
                );
            }
        }
    }

    #[test]
    fn interpolation_beats_naive_cheating() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(4, left, effect);
        let naive =
            chain.acceptance_separable(&cheating_proof(&chain, &right_state, ChainCheat::AllLeft));
        let smart = chain.acceptance_separable(&cheating_proof(
            &chain,
            &right_state,
            ChainCheat::Interpolate,
        ));
        assert!(
            smart > naive,
            "interpolation {smart} should beat naive {naive}"
        );
    }

    #[test]
    fn r_equals_one_has_no_proof_and_direct_measurement() {
        let (left, effect, _) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        assert_eq!(chain.num_intermediate(), 0);
        assert!(chain.acceptance_separable(&Vec::new()).abs() < 1e-12);
        assert!(chain.optimal_acceptance().abs() < 1e-12);
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(1, left, effect);
        assert!((chain.acceptance_separable(&Vec::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spectral_soundness_bounds_every_separable_strategy() {
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let optimal = chain.optimal_acceptance();
        for strat in [
            ChainCheat::AllLeft,
            ChainCheat::AllRight,
            ChainCheat::Interpolate,
        ] {
            let p = chain.acceptance_separable(&cheating_proof(&chain, &right_state, strat));
            assert!(
                p <= optimal + 1e-8,
                "{strat:?}: separable {p} exceeds optimal {optimal}"
            );
        }
        // And respects the paper's bound.
        assert!(optimal <= SwapTestChain::paper_soundness_bound(3) + 1e-9);
        assert!(optimal < 1.0 - 1e-6);
    }

    #[test]
    fn spectral_soundness_bounds_random_separable_proofs() {
        let (left, effect, _) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let optimal = chain.optimal_acceptance();
        let mut gen = RandomStateGenerator::new(5);
        for _ in 0..20 {
            let proof: SeparableChainProof = (0..chain.num_intermediate())
                .map(|_| (gen.random_pure(&[2]), gen.random_pure(&[2])))
                .collect();
            let p = chain.acceptance_separable(&proof);
            assert!(
                p <= optimal + 1e-8,
                "random separable proof {p} exceeds optimal {optimal}"
            );
        }
    }

    #[test]
    fn completeness_with_operator_matches_separable_formula() {
        // The honest product proof evaluated through the acceptance operator
        // must give the same number as the pattern-enumeration formula.
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(3, left.clone(), effect);
        let a = chain.acceptance_operator();
        let honest_joint = PureState::tensor_all(&[left.clone(), left.clone(), left.clone(), left]);
        let v = honest_joint.amplitudes();
        let p_op = v.inner(&a.apply(v)).re;
        let p_formula = chain.completeness();
        assert!((p_op - p_formula).abs() < 1e-9, "{p_op} vs {p_formula}");
    }

    #[test]
    fn sampled_rounds_match_exact_acceptance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (left, effect, right_state) = orthogonal_boundary(2);
        let chain = SwapTestChain::new(3, left, effect);
        let proof = cheating_proof(&chain, &right_state, ChainCheat::Interpolate);
        let exact = chain.acceptance_separable(&proof);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 3000;
        let est = chain.estimate_acceptance(&proof, trials, &mut rng);
        assert!(
            (est - exact).abs() < 0.05,
            "estimated {est} vs exact {exact}"
        );
        // The mixed-proof frontier sampler agrees on the same (pure) proof.
        let mixed: Vec<qsim::DensityMatrix> = proof
            .iter()
            .map(|(a, b)| qsim::DensityMatrix::from_pure(&a.tensor(b)))
            .collect();
        let accepts = (0..trials)
            .filter(|_| chain.simulate_round_mixed(&mixed, &mut rng))
            .count();
        let est_mixed = accepts as f64 / trials as f64;
        assert!(
            (est_mixed - exact).abs() < 0.05,
            "mixed-sampler estimate {est_mixed} vs exact {exact}"
        );
    }

    #[test]
    fn honest_sampled_round_always_accepts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (left, effect) = matching_boundary(2);
        let chain = SwapTestChain::new(4, left, effect);
        let proof = chain.honest_proof();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            assert!(chain.simulate_round(&proof, &mut rng));
        }
    }

    #[test]
    fn costs_scale_linearly_in_path_length_and_register_size() {
        let (left, effect) = matching_boundary(2);
        let c3 = SwapTestChain::new(3, left.clone(), effect.clone()).costs(10);
        let c6 = SwapTestChain::new(6, left, effect).costs(10);
        assert_eq!(c3.local_proof_qubits, 20);
        assert_eq!(c3.local_message_qubits, 10);
        assert_eq!(c3.total_proof_qubits, 40);
        assert_eq!(c6.total_proof_qubits, 100);
        assert!(c6.total_message_qubits > c3.total_message_qubits);
        assert_eq!(c3.rounds, 1);
    }

    #[test]
    fn paper_repetition_count_drives_soundness_below_one_third() {
        for r in [2usize, 4, 8, 16] {
            let single = SwapTestChain::paper_soundness_bound(r);
            let k = SwapTestChain::paper_repetitions(r);
            let repeated = SwapTestChain::repeated_soundness(single, k);
            assert!(repeated < 1.0 / 3.0, "r={r}: repeated soundness {repeated}");
        }
    }

    #[test]
    fn entangled_optimum_never_below_best_separable_on_nonorthogonal_boundaries() {
        // Boundary states with overlap 1/2 (a harder no-instance than orthogonal ones).
        let left = PureState::single(2, 0);
        let right =
            PureState::from_amplitudes(&[2], CVector::from_reals(&[0.5f64.sqrt(), 0.5f64.sqrt()]));
        let effect = CMatrix::projector(right.amplitudes());
        let chain = SwapTestChain::new(2, left, effect);
        let sep =
            chain.acceptance_separable(&cheating_proof(&chain, &right, ChainCheat::Interpolate));
        let opt = chain.optimal_acceptance();
        assert!(opt >= sep - 1e-9);
        assert!(opt < 1.0);
    }
}
