//! Lower bounds for dQMA protocols (Section 8 of the paper) and the
//! dQMA → QMA* reduction (Algorithm 11) they rest on.
//!
//! Three families of bounds are reproduced:
//!
//! * the counting argument over fooling inputs (Claim 49, Proposition 50,
//!   Theorem 51): any dQMAsep,sep protocol for a function with a `2^n`-size
//!   1-fooling set needs `Ω(r·log n)` total proof qubits;
//! * the entangled-proof bounds (Lemma 53, Corollary 55, Theorems 52/56):
//!   `Ω(r)` always, and `Ω((log n)^{1/4−ε})` for EQ/GT via the dQMAsep
//!   simulation of Theorem 46;
//! * the reduction to QMA communication lower bounds (Theorem 63,
//!   Corollaries 64–66) through the cut-the-path QMA* protocol of
//!   Algorithm 11.
//!
//! Formulas use constant 1; the benchmark tables report them next to the
//! measured upper-bound costs so the gaps discussed in the paper's Section 1.5
//! are visible.

use commproto::sdisc::{dqma_total_lower_bound, HardProblem};
use netsim::ProtocolCosts;
use qsim::{DensityMatrix, PureState};

use crate::chain::SwapTestChain;

/// Claim 49 / Lemma 48: keeping `2^n` quantum states pairwise distinguishable
/// requires `Ω(log n)` qubits per state. Returns that per-window bound
/// (constant 1) given the fooling-set size `k = 2^n`.
pub fn per_window_qubit_bound(log2_fooling_size: usize) -> f64 {
    (log2_fooling_size.max(2) as f64).log2()
}

/// Theorem 51: total proof lower bound `Ω(r·log n)` for dQMAsep,sep protocols
/// for EQ/GT-like functions (1-fooling set of size `2^n`).
pub fn dqmasepsep_total_bound(n: usize, r: usize) -> f64 {
    r as f64 * per_window_qubit_bound(n)
}

/// Corollary 55: total proof lower bound `Ω(r)` for any non-constant function,
/// even with entangled proofs.
pub fn entangled_r_bound(r: usize) -> f64 {
    r as f64
}

/// Theorem 52: `Ω((log n)^{1/2−ε} / r^{1+ε'})` for EQ/GT with entangled
/// proofs, obtained by simulating the protocol with a dQMAsep one.
pub fn entangled_ratio_bound(n: usize, r: usize, eps: f64) -> f64 {
    (n.max(2) as f64).log2().powf(0.5 - eps) / (r as f64).powf(1.0 + eps)
}

/// Theorem 56: the combined bound `Ω((log n)^{1/4−ε})` for EQ/GT with
/// entangled proofs, independent of `r`.
pub fn entangled_combined_bound(n: usize, eps: f64) -> f64 {
    (n.max(2) as f64).log2().powf(0.25 - eps)
}

/// Corollaries 64–66: the total proof + communication bound for DISJ / IP /
/// the AND pattern matrix, via the reduction to QMA communication lower
/// bounds.
pub fn hard_problem_bound(problem: HardProblem, n: usize) -> f64 {
    dqma_total_lower_bound(problem, n)
}

/// The dQMA → QMA* reduction of Algorithm 11: cutting the path between
/// `v_i` and `v_{i+1}` turns a dQMA protocol with per-node proof sizes
/// `proof_qubits` and per-edge message sizes `message_qubits` into a QMA*
/// communication protocol whose cost is the total proof size plus the
/// messages crossing the cut. Returns the cost of the cheapest cut, which is
/// the quantity lower-bounded by Theorem 63.
pub fn qma_star_cost_from_dqma(costs: &ProtocolCosts) -> u64 {
    // Total proof plus the cheapest cut; with uniform per-edge messages the
    // cheapest cut carries the local message size.
    costs.total_proof_qubits + costs.local_message_qubits
}

/// The Lemma 53 attack, executable on the chain protocols: if some
/// intermediate node receives **no** proof, the prover can give the nodes to
/// its left the reduced proof of one yes-instance and the nodes to its right
/// the reduced proof of another, and every node accepts a 0-input with
/// probability at least `1 − 2p`. This function builds that product proof for
/// a chain in which node `gap` (1-based intermediate index) is proofless and
/// returns the acceptance probability it achieves on the crossed input.
///
/// `yes_left`/`yes_right` are the boundary states of the two yes-instances
/// (`|h_x>` for `(x, x)` and `|h_{y'}>` for `(y', y')`).
pub fn gap_attack_acceptance(
    r: usize,
    gap: usize,
    yes_left: &PureState,
    yes_right: &PureState,
    right_effect_of_right_instance: &qsim::CMatrix,
) -> f64 {
    assert!(r >= 2, "the attack needs at least one intermediate node");
    assert!((1..r).contains(&gap), "gap must be an intermediate node");
    // Left of the gap: everything carries the left yes-instance fingerprint.
    // Right of the gap (including the proofless node's forwarded "nothing"):
    // everything carries the right yes-instance fingerprint. With no proof at
    // the gap node there is no SWAP test linking the two halves, so both halves
    // accept exactly as they would inside their own yes-instance.
    let chain = SwapTestChain::new(r, yes_left.clone(), right_effect_of_right_instance.clone());
    let proof: Vec<(PureState, PureState)> = (1..r)
        .map(|j| {
            if j < gap {
                (yes_left.clone(), yes_left.clone())
            } else {
                (yes_right.clone(), yes_right.clone())
            }
        })
        .collect();
    // The gap node's SWAP test is what could catch the switch; Lemma 53 models
    // it as absent (no proof ⇒ the node has nothing to test), which we emulate
    // by crediting that single test as accepting.
    let with_test = chain.acceptance_separable(&proof);
    let switch_test = qsim::swap_test::swap_test_acceptance_pure(yes_left, yes_right);
    (with_test / switch_test.max(1e-12)).clamp(0.0, 1.0)
}

/// Fact 3-style sanity bound used throughout Section 8: no algorithm can
/// distinguish two proofs better than their trace distance. Exposed here so
/// the integration tests can check the counting argument's premise on actual
/// fingerprint states.
pub fn distinguishing_bound(rho: &DensityMatrix, sigma: &DensityMatrix) -> f64 {
    qsim::trace_distance(rho, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::bitstring::BitString;
    use commproto::fingerprint::FingerprintScheme;

    #[test]
    fn formula_shapes() {
        assert!(dqmasepsep_total_bound(1 << 16, 8) > dqmasepsep_total_bound(1 << 16, 4));
        assert!(dqmasepsep_total_bound(1 << 16, 4) > dqmasepsep_total_bound(1 << 4, 4));
        assert_eq!(entangled_r_bound(7), 7.0);
        assert!(entangled_combined_bound(1 << 20, 0.01) > entangled_combined_bound(1 << 6, 0.01));
        assert!(entangled_ratio_bound(1 << 20, 2, 0.01) > entangled_ratio_bound(1 << 20, 8, 0.01));
        assert!(
            hard_problem_bound(HardProblem::InnerProduct, 64)
                > hard_problem_bound(HardProblem::Disjointness, 64)
        );
    }

    #[test]
    fn combined_bound_is_independent_of_r_and_below_upper_bounds() {
        // The Theorem 56 bound must sit below the Theorem 19 upper bound —
        // the "gap" the paper's open problem 3 refers to.
        let n = 1 << 12;
        for r in [2usize, 8, 32] {
            let lower = entangled_combined_bound(n, 0.01);
            let upper = crate::eq_path::EqPathProtocol::paper_local_cost(n, r) * (r as f64 + 1.0);
            assert!(lower < upper, "r={r}: lower {lower} vs upper {upper}");
        }
    }

    #[test]
    fn qma_star_reduction_cost_is_total_proof_plus_one_cut() {
        let costs = ProtocolCosts {
            local_proof_qubits: 10,
            total_proof_qubits: 50,
            local_message_qubits: 5,
            total_message_qubits: 20,
            rounds: 1,
            ..Default::default()
        };
        assert_eq!(qma_star_cost_from_dqma(&costs), 55);
    }

    #[test]
    fn gap_attack_fools_the_chain() {
        // Two yes-instances x=x and y'=y'; the crossed input (x, y') is a
        // 0-input for EQ, yet with a proofless middle node the product proof is
        // accepted with probability 1.
        let scheme = FingerprintScheme::small(3, 5);
        let x = BitString::from_u64(5, 3);
        let yp = BitString::from_u64(2, 3);
        let hx = scheme.fingerprint(&x);
        let hy = scheme.fingerprint(&yp);
        let effect = scheme.accept_effect(&yp);
        let p = gap_attack_acceptance(3, 2, &hx, &hy, &effect);
        assert!(p > 1.0 - 1e-9, "gap attack acceptance {p}");
        // With the gap node's SWAP test present the same proof is caught.
        let chain = SwapTestChain::new(3, hx.clone(), effect);
        let proof = vec![(hx.clone(), hx.clone()), (hy.clone(), hy.clone())];
        assert!(chain.acceptance_separable(&proof) < 1.0 - 1e-6);
    }

    #[test]
    fn distinguishing_bound_on_fingerprints_reflects_their_overlap() {
        let scheme = FingerprintScheme::small(3, 9);
        let a = scheme.fingerprint(&BitString::from_u64(1, 3));
        let b = scheme.fingerprint(&BitString::from_u64(6, 3));
        let d = distinguishing_bound(&DensityMatrix::from_pure(&a), &DensityMatrix::from_pure(&b));
        let overlap = a.inner(&b).abs();
        assert!((d - (1.0 - overlap * overlap).sqrt()).abs() < 1e-8);
    }
}
