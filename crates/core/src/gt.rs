//! The dQMA protocol for the greater-than problem on a path (Section 5.1,
//! Algorithm 7, Theorem 26 and Corollary 28).
//!
//! `GT(x, y) = 1` iff there is an index `i` with `x[i] = y[i]` (equal
//! prefixes), `x_i = 1` and `y_i = 0`. The prover sends that index classically
//! to every node and fingerprints of the prefix `x[i]`; the nodes check index
//! consistency, the extremities check their own bit at position `i`, and the
//! interior runs the EQ chain on the prefix fingerprints.

use crate::chain::{cheating_proof, ChainCheat, SwapTestChain};
use crate::eq_path::scale_costs;
use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use commproto::problems::Comparison;
use netsim::{CostTracker, ProtocolCosts};

/// The GT protocol on a path of length `r`.
#[derive(Clone, Debug)]
pub struct GtPathProtocol {
    n: usize,
    r: usize,
    scheme: FingerprintScheme,
    repetitions: usize,
    comparison: Comparison,
}

/// The certificate an honest prover distributes for a comparison claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GtCertificate {
    /// The witness index `i`: equal prefixes, `x_i = 1`, `y_i = 0`
    /// (or the roles swapped for `<`-type comparisons).
    Index(usize),
    /// The inputs are claimed to be equal (only valid for `≥` / `≤`).
    Equal,
}

impl GtPathProtocol {
    /// Builds the strict greater-than protocol for `n`-bit integers on a path
    /// of length `r`, with the paper's repetition count.
    pub fn new(n: usize, r: usize, seed: u64) -> Self {
        GtPathProtocol {
            n,
            r,
            scheme: FingerprintScheme::new(n, seed),
            repetitions: SwapTestChain::paper_repetitions(r),
            comparison: Comparison::Greater,
        }
    }

    /// Builds a protocol for any comparison variant with an explicit scheme
    /// and repetition count.
    pub fn with_scheme(
        n: usize,
        r: usize,
        comparison: Comparison,
        scheme: FingerprintScheme,
        repetitions: usize,
    ) -> Self {
        GtPathProtocol {
            n,
            r,
            scheme,
            repetitions,
            comparison,
        }
    }

    /// Input length in bits.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Path length.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Which comparison the protocol decides.
    pub fn comparison(&self) -> Comparison {
        self.comparison
    }

    /// Pads a prefix to length `n` so that a single fingerprint scheme covers
    /// all prefix lengths (prefix equality is preserved since both sides pad
    /// the same positions).
    fn padded_prefix(&self, s: &BitString, i: usize) -> BitString {
        let mut bits = s.prefix(i).as_bits().to_vec();
        bits.resize(self.n, false);
        BitString::new(&bits)
    }

    /// Whether, for the strict comparison currently configured, the pair
    /// `(x, y)` is a yes-instance once `<`-type comparisons swap the roles.
    fn oriented(&self, x: &BitString, y: &BitString) -> (BitString, BitString, bool) {
        match self.comparison {
            Comparison::Greater | Comparison::GreaterEqual => (x.clone(), y.clone(), false),
            Comparison::Less | Comparison::LessEqual => (y.clone(), x.clone(), true),
        }
    }

    /// The honest certificate for a yes-instance, or `None` if `(x, y)` is a
    /// no-instance for the configured comparison.
    pub fn honest_certificate(&self, x: &BitString, y: &BitString) -> Option<GtCertificate> {
        let (a, b, _) = self.oriented(x, y);
        if a == b {
            return match self.comparison {
                Comparison::GreaterEqual | Comparison::LessEqual => Some(GtCertificate::Equal),
                _ => None,
            };
        }
        (0..self.n)
            .find(|&i| a.prefix(i) == b.prefix(i) && a.bit(i) && !b.bit(i))
            .map(GtCertificate::Index)
    }

    /// The EQ chain run on the prefix fingerprints for witness index `i`.
    fn chain_for_index(&self, a: &BitString, b: &BitString, i: usize) -> SwapTestChain {
        let left = self.scheme.fingerprint(&self.padded_prefix(a, i));
        let effect = self.scheme.accept_effect(&self.padded_prefix(b, i));
        SwapTestChain::new(self.r, left, effect)
    }

    /// Single-repetition acceptance probability when the prover distributes
    /// `certificate` consistently and plays `cheat` on the fingerprint chain.
    ///
    /// Inconsistent index registers are rejected with certainty by the index
    /// comparisons, so only consistent certificates need to be modelled.
    pub fn single_round_acceptance(
        &self,
        x: &BitString,
        y: &BitString,
        certificate: GtCertificate,
        cheat: ChainCheat,
    ) -> f64 {
        let (a, b, _) = self.oriented(x, y);
        match certificate {
            GtCertificate::Equal => {
                if !matches!(
                    self.comparison,
                    Comparison::GreaterEqual | Comparison::LessEqual
                ) {
                    return 0.0;
                }
                // Run the plain EQ chain on the full strings.
                let chain = SwapTestChain::new(
                    self.r,
                    self.scheme.fingerprint(&a),
                    self.scheme.accept_effect(&b),
                );
                let right = self.scheme.fingerprint(&b);
                chain.acceptance_separable(&cheating_proof(&chain, &right, cheat))
            }
            GtCertificate::Index(i) => {
                if i >= self.n {
                    return 0.0;
                }
                // v_0 rejects unless its own bit at i is 1; v_r rejects unless
                // its bit is 0 (with roles already oriented).
                if !a.bit(i) || b.bit(i) {
                    return 0.0;
                }
                let chain = self.chain_for_index(&a, &b, i);
                let right = self.scheme.fingerprint(&self.padded_prefix(&b, i));
                chain.acceptance_separable(&cheating_proof(&chain, &right, cheat))
            }
        }
    }

    /// Completeness witness: acceptance with the honest certificate and honest
    /// chain proof on a yes-instance; exactly 1 by Theorem 26.
    pub fn completeness(&self, x: &BitString, y: &BitString) -> f64 {
        match self.honest_certificate(x, y) {
            None => 0.0,
            Some(cert) => self.single_round_acceptance(x, y, cert, ChainCheat::AllLeft),
        }
    }

    /// The best single-repetition acceptance a prover can reach on `(x, y)` by
    /// choosing any consistent certificate and playing `cheat` on the chain.
    pub fn best_cheating_acceptance(&self, x: &BitString, y: &BitString, cheat: ChainCheat) -> f64 {
        let mut best: f64 = 0.0;
        for i in 0..self.n {
            best = best.max(self.single_round_acceptance(x, y, GtCertificate::Index(i), cheat));
        }
        best = best.max(self.single_round_acceptance(x, y, GtCertificate::Equal, cheat));
        best
    }

    /// Acceptance of the repeated protocol under the best cheating certificate.
    pub fn repeated_cheating_acceptance(
        &self,
        x: &BitString,
        y: &BitString,
        cheat: ChainCheat,
    ) -> f64 {
        SwapTestChain::repeated_soundness(
            self.best_cheating_acceptance(x, y, cheat),
            self.repetitions,
        )
    }

    /// Cost summary: the EQ chain costs plus a `⌈log n⌉`-qubit index register
    /// per node, all multiplied by the repetition count (Theorem 26:
    /// `O(r² log n)` local proof and message size).
    pub fn costs(&self) -> ProtocolCosts {
        let q = self.scheme.qubits() as u64;
        let index_qubits = (self.n.next_power_of_two().trailing_zeros() as u64).max(1);
        let mut t = CostTracker::new();
        for j in 1..self.r {
            t.record_proof(j, 2 * q + index_qubits);
        }
        t.record_proof(0, index_qubits);
        t.record_proof(self.r, index_qubits);
        for j in 0..self.r {
            t.record_message(j, j + 1, q + index_qubits);
        }
        t.set_rounds(1);
        scale_costs(&t.summary(), self.repetitions as u64)
    }

    /// The paper's local cost bound `O(r² log n)` (Theorem 26; constant 1).
    pub fn paper_local_cost(n: usize, r: usize) -> f64 {
        (r * r) as f64 * (n as f64).log2().max(1.0)
    }

    /// Cost summary with the paper's parameters, computed without
    /// materialising a fingerprint code (for very large `n`).
    pub fn costs_for(n: usize, r: usize) -> ProtocolCosts {
        let q = ((8 * n).next_power_of_two().trailing_zeros() as u64).max(1);
        let index_qubits = (n.next_power_of_two().trailing_zeros() as u64).max(1);
        let reps = SwapTestChain::paper_repetitions(r) as u64;
        let mut t = CostTracker::new();
        for j in 1..r {
            t.record_proof(j, 2 * q + index_qubits);
        }
        t.record_proof(0, index_qubits);
        t.record_proof(r, index_qubits);
        for j in 0..r {
            t.record_message(j, j + 1, q + index_qubits);
        }
        t.set_rounds(1);
        scale_costs(&t.summary(), reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::problems::{GreaterThan, TwoPartyFunction};

    fn small(n: usize, r: usize, comparison: Comparison) -> GtPathProtocol {
        GtPathProtocol::with_scheme(n, r, comparison, FingerprintScheme::small(n, 3), 4)
    }

    #[test]
    fn honest_certificate_exists_exactly_on_yes_instances() {
        let proto = small(4, 3, Comparison::Greater);
        let f = GreaterThan::strict(4);
        for xv in 0..16u64 {
            for yv in 0..16u64 {
                let x = BitString::from_u64(xv, 4);
                let y = BitString::from_u64(yv, 4);
                assert_eq!(
                    proto.honest_certificate(&x, &y).is_some(),
                    f.eval(&x, &y),
                    "x={xv}, y={yv}"
                );
            }
        }
    }

    #[test]
    fn perfect_completeness_on_yes_instances() {
        let proto = small(4, 3, Comparison::Greater);
        for (xv, yv) in [(9u64, 4u64), (15, 14), (8, 7)] {
            let x = BitString::from_u64(xv, 4);
            let y = BitString::from_u64(yv, 4);
            assert!(
                (proto.completeness(&x, &y) - 1.0).abs() < 1e-10,
                "x={xv} y={yv}"
            );
        }
    }

    #[test]
    fn no_instances_are_rejected_for_every_certificate() {
        let proto = small(4, 3, Comparison::Greater);
        // x <= y: no certificate should achieve acceptance 1.
        for (xv, yv) in [(4u64, 9u64), (7, 7), (0, 1)] {
            let x = BitString::from_u64(xv, 4);
            let y = BitString::from_u64(yv, 4);
            let best = proto.best_cheating_acceptance(&x, &y, ChainCheat::Interpolate);
            assert!(best < 1.0 - 1e-4, "x={xv} y={yv}: best acceptance {best}");
            let repeated = proto.repeated_cheating_acceptance(&x, &y, ChainCheat::Interpolate);
            assert!(repeated < best + 1e-12);
        }
    }

    #[test]
    fn greater_equal_accepts_equal_inputs() {
        let proto = small(4, 3, Comparison::GreaterEqual);
        let x = BitString::from_u64(11, 4);
        assert_eq!(proto.honest_certificate(&x, &x), Some(GtCertificate::Equal));
        assert!((proto.completeness(&x, &x) - 1.0).abs() < 1e-10);
        // Strict GT must not accept equality via the Equal certificate.
        let strict = small(4, 3, Comparison::Greater);
        assert!(
            strict
                .single_round_acceptance(&x, &x, GtCertificate::Equal, ChainCheat::AllLeft)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn less_than_variant_swaps_roles() {
        let proto = small(4, 3, Comparison::Less);
        let x = BitString::from_u64(3, 4);
        let y = BitString::from_u64(10, 4);
        assert!((proto.completeness(&x, &y) - 1.0).abs() < 1e-10);
        assert!(proto.honest_certificate(&y, &x).is_none());
    }

    #[test]
    fn costs_scale_as_r_squared_log_n() {
        let c1 = GtPathProtocol::new(16, 3, 1).costs();
        let c2 = GtPathProtocol::new(16, 6, 1).costs();
        let ratio = c2.local_proof_qubits as f64 / c1.local_proof_qubits as f64;
        assert!((3.0..=5.0).contains(&ratio), "r-scaling {ratio}");
        assert!(GtPathProtocol::paper_local_cost(16, 6) > GtPathProtocol::paper_local_cost(16, 3));
    }
}
