//! Kraus noise on dQMA chain rounds: proofs and in-flight messages pass
//! through the channels of [`qsim::noise`], and the noisy rounds run through
//! both batched engines — the lane-batched trial engine of [`crate::trials`]
//! and the message-passing transport layer of [`crate::net`].
//!
//! # Model
//!
//! A [`NoisePlan`] names up to two channels: a **proof** channel applied to
//! every prover register at preparation, and a **message** channel applied
//! to every in-flight hop — the left state's hop into the first
//! intermediate, and each forwarded register's hop to the next node (or the
//! right boundary). Channels act by **trajectory unravelling**: Kraus branch
//! `m` of channel `{K_m}` is selected with probability `‖K_m|ψ⟩‖²` and the
//! state renormalised, which reproduces the exact channel in expectation
//! (`ρ ↦ Σ_m K_m ρ K_m†` — pinned against the density-matrix
//! [`qsim::DensityMatrix::apply_kraus`] executors by the adversarial
//! integration suite). Conditioned on the symmetrisation coins *and* the
//! branch choices, every register still enters exactly one SWAP test or
//! boundary measurement, so a round's acceptance stays a product of per-node
//! table factors — now indexed by branch as well as coin — and the exact
//! noisy acceptance is a transfer product over the enlarged Markov state
//! `(coin, proof branch, message branch)` ([`NoisyChainSampler::exact_acceptance`]).
//!
//! # Draw schedule (the PR-7 determinism contract, satellite 6)
//!
//! Noise draws come from [`BlockRng::noise_rng`] — a counter-stream family
//! keyed *separately* from the coin/accept family — so switching noise on
//! never consumes from, and therefore never perturbs, the coin and accept
//! draw schedule of the noise-free engine. A noisy trial draws, in order:
//! its coin word and accept draw from [`BlockRng::trial_rng`] (exactly the
//! noise-free schedule), then from the noise stream one `u64` for the left
//! hop and one `u64` per intermediate node, bit-sliced into three 21-bit
//! uniforms (kept-register proof branch, forwarded-register proof branch,
//! forwarded-hop message branch; selection thresholds are therefore
//! quantised at `2⁻²¹` — far below every statistical tolerance in the
//! suite). A quiet plan ([`NoisePlan::is_quiet`]) delegates wholesale to the
//! inner noise-free [`ChainRoundPlan`], so toggling noise off reproduces the
//! PR-7 accept counts **bit-exactly** at every worker count, lane width and
//! SIMD setting.

use crate::adversary::{plan_acceptance, swap_accept};
use crate::chain::{ChainRoundPlan, SeparableChainProof, SwapTestChain};
use crate::net::{mix, run_round, NodeIo, RoundProgram};
use crate::trials::{
    default_lane_width, BatchSampler, BlockOutcomes, BlockRng, LaneBatched, OutcomeSampler,
    MAX_LANES,
};
use netsim::{
    FaultCause, FaultPlan, FaultyTransport, LocalChannelTransport, NodeId, RetryPolicy,
    RoundOutcome, Transport,
};
use qsim::random::CounterRng;
use qsim::CVector;
use rand::rngs::StdRng;
use rand::Rng;

/// Kraus branches with selection probability below this are pruned (they
/// carry no trajectory weight; e.g. `K_i|0⟩ = 0` for amplitude damping).
const BRANCH_EPS: f64 = 1e-14;

/// A single-register noise channel, by name and strength. Constructors live
/// in [`qsim::noise`]; this enum is the protocol-level handle the phase
/// diagrams sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// Depolarizing: with probability `p` replace the state by `I/d`.
    Depolarizing {
        /// Depolarizing probability in `[0, 1]`.
        p: f64,
    },
    /// Dephasing towards the computational basis with strength `lambda`.
    Dephasing {
        /// Dephasing strength in `[0, 1]`.
        lambda: f64,
    },
    /// Amplitude damping towards `|0⟩` with decay probability `gamma`.
    AmplitudeDamping {
        /// Decay probability in `[0, 1]`.
        gamma: f64,
    },
}

impl NoiseChannel {
    /// The channel's Kraus operators at register dimension `d`.
    pub fn kraus(&self, d: usize) -> Vec<qsim::CMatrix> {
        match *self {
            NoiseChannel::Depolarizing { p } => qsim::noise::depolarizing_kraus(d, p),
            NoiseChannel::Dephasing { lambda } => qsim::noise::dephasing_kraus(d, lambda),
            NoiseChannel::AmplitudeDamping { gamma } => {
                qsim::noise::amplitude_damping_kraus(d, gamma)
            }
        }
    }

    /// The scalar strength parameter (the phase-diagram axis).
    pub fn strength(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarizing { p } => p,
            NoiseChannel::Dephasing { lambda } => lambda,
            NoiseChannel::AmplitudeDamping { gamma } => gamma,
        }
    }

    /// Channel family name for chart labels.
    pub fn label(&self) -> &'static str {
        match self {
            NoiseChannel::Depolarizing { .. } => "depolarizing",
            NoiseChannel::Dephasing { .. } => "dephasing",
            NoiseChannel::AmplitudeDamping { .. } => "amplitude_damping",
        }
    }
}

/// Where noise strikes a chain round: prover registers at preparation,
/// messages in flight, or both. `None` (or a zero-strength channel) in a
/// slot means that slot is noise-free.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoisePlan {
    /// Channel applied to every proof register at preparation.
    pub proof: Option<NoiseChannel>,
    /// Channel applied to every in-flight message register.
    pub message: Option<NoiseChannel>,
}

fn is_trivial(channel: Option<NoiseChannel>) -> bool {
    channel.is_none_or(|c| c.strength() == 0.0)
}

impl NoisePlan {
    /// The noise-free plan.
    pub fn quiet() -> Self {
        NoisePlan::default()
    }

    /// Noise on proof registers only.
    pub fn proof_only(channel: NoiseChannel) -> Self {
        NoisePlan {
            proof: Some(channel),
            message: None,
        }
    }

    /// Noise on in-flight messages only.
    pub fn message_only(channel: NoiseChannel) -> Self {
        NoisePlan {
            proof: None,
            message: Some(channel),
        }
    }

    /// The same channel on proofs and messages.
    pub fn symmetric(channel: NoiseChannel) -> Self {
        NoisePlan {
            proof: Some(channel),
            message: Some(channel),
        }
    }

    /// `true` when the plan injects no noise at all — the samplers then
    /// delegate to the noise-free engines bit-exactly.
    pub fn is_quiet(&self) -> bool {
        is_trivial(self.proof) && is_trivial(self.message)
    }
}

/// Trajectory branches of one channel applied to one fixed state.
struct BranchSet {
    /// Branch probabilities (pruned, renormalised to sum 1).
    q: Vec<f64>,
    /// Cumulative selection thresholds (last entry 1).
    cum: Vec<f64>,
    /// Normalised post-branch states.
    states: Vec<CVector>,
}

fn branch_set(state: &CVector, channel: Option<NoiseChannel>, d: usize) -> BranchSet {
    if is_trivial(channel) {
        return BranchSet {
            q: vec![1.0],
            cum: vec![1.0],
            states: vec![state.clone()],
        };
    }
    let ch = channel.expect("non-trivial channel");
    let mut q = Vec::new();
    let mut states = Vec::new();
    for k in ch.kraus(d) {
        let phi = k.apply(state);
        let p = phi.norm_sqr();
        if p > BRANCH_EPS {
            q.push(p);
            states.push(phi.normalized());
        }
    }
    let total: f64 = q.iter().sum();
    debug_assert!(
        (total - 1.0).abs() < 1e-9,
        "channel is not trace preserving: branch mass {total}"
    );
    for p in &mut q {
        *p /= total;
    }
    let mut cum = Vec::with_capacity(q.len());
    let mut acc = 0.0;
    for &p in &q {
        acc += p;
        cum.push(acc);
    }
    if let Some(last) = cum.last_mut() {
        *last = 1.0;
    }
    BranchSet { q, cum, states }
}

/// First branch whose cumulative threshold exceeds `u` (clamped to the last
/// branch, so `u = 1.0` is safe).
#[inline]
fn pick(cum: &[f64], u: f64) -> usize {
    cum.iter().position(|&c| u < c).unwrap_or(cum.len() - 1)
}

/// 21-bit integer image of a cumulative threshold: a quantised noise slice
/// `w` selects branch `i` iff `w < thr21(cum[i])`. For integer `w` and real
/// `x ≥ 0`, `w < ⌈x⌉ ⇔ w < x`, so the integer compare reproduces the
/// `u < cum` float compare of [`pick`] at `u = w·2⁻²¹` **exactly** — the
/// hot walk pays no float conversions without changing a single selection.
fn thr21(cum: f64) -> u32 {
    ((cum * (1u64 << 21) as f64).ceil() as u32).min(1 << 21)
}

/// Branchless [`pick`] over non-decreasing 21-bit thresholds (padded slots
/// hold `u32::MAX`): counting the thresholds `≤ u` yields the first index
/// whose threshold exceeds `u`, and the last live threshold is `2²¹ > u`,
/// so the count never lands on a padded slot.
#[inline(always)]
fn pick21(thr: &[u32], u: u32) -> usize {
    thr.iter().map(|&t| usize::from(u >= t)).sum()
}

const MASK21: u64 = (1 << 21) - 1;
const SCALE53: f64 = 1.0 / (1u64 << 53) as f64;

#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * SCALE53
}

/// A chain instance with a separable proof compiled for **noisy** batched
/// round sampling: the per-register trajectory branches and all
/// branch-indexed acceptance tables are precomputed once, so a noisy round
/// is coin word + accept draw (the unchanged noise-free schedule) plus one
/// noise word per hop, three branchless 21-bit threshold picks and one
/// table lookup per node. `bench_adversarial` charts the resulting noise
/// tax against the noise-free per-trial walk (`noisy_rounds_r32`) and
/// holds the `≤ 2×` overhead budget at the message-passing layer
/// (`noisy_transport_r8`), where a round's cost is dominated by the
/// envelope machinery rather than the table walk.
///
/// Runs through [`crate::trials::run_trials`] (it implements
/// [`BatchSampler`] and [`LaneBatched`]) and, via
/// [`NoisyChainSampler::transport_sampler`], through the fault-injecting
/// message-passing runtime of [`crate::net`].
pub struct NoisyChainSampler {
    /// The noise-free compiled plan: quiet delegation target and the source
    /// of `base_tables`.
    inner: ChainRoundPlan,
    quiet: bool,
    k: usize,
    /// Branch-table strides.
    p_max: usize,
    m_max: usize,
    s_in: usize,
    /// Branch probabilities / selection thresholds: left hop, proof
    /// registers (index `2j + b`), message branches (index
    /// `(2j + b)·p_max + mp`; empty for padded slots).
    left_q: Vec<f64>,
    left_cum: Vec<f64>,
    proof_q: Vec<Vec<f64>>,
    proof_cum: Vec<Vec<f64>>,
    msg_q: Vec<Vec<f64>>,
    msg_cum: Vec<Vec<f64>>,
    /// Flat 21-bit selection thresholds for the trials-path hot walk
    /// (`proof_thr[(2j + b)·p_max + i]`, `msg_thr[((2j + b)·p_max + mp)·m_max
    /// + i]`), padded to `u32::MAX`; selection-identical to the `*_cum`
    /// float scans (see [`thr21`]).
    proof_thr: Vec<u32>,
    msg_thr: Vec<u32>,
    /// Node-0 table: `t0[ml·2p_max + b·p_max + mp]` = SWAP acceptance of the
    /// `ml`-branch left state against branch `mp` of register `(0, b)`.
    t0: Vec<f64>,
    /// Node `j ∈ 1..k` tables, indexed
    /// `((j−1)·s_in + s_prev)·2p_max + b·p_max + mp` where `s_prev` encodes
    /// the forwarded register's `(b, mp, mm)`.
    mid: Vec<f64>,
    /// Boundary values per forwarded-register state `s_prev`.
    bnd: Vec<f64>,
    /// `k = 0` only: boundary on the (message-noised) left state per branch.
    bnd_left: Vec<f64>,
    /// The noise-free tables `4·(k+1)`, for the quiet transport program.
    base_tables: Vec<f64>,
    /// Right-boundary effect dimension bookkeeping for transport programs.
    num_nodes: usize,
}

impl NoisyChainSampler {
    /// Compiles `chain` with `proof` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the proof does not match the chain, or if the plan is
    /// noisy and `k > 62` (the noisy walk shares the single-coin-word
    /// regime of the lane engine).
    pub fn new(chain: &SwapTestChain, proof: &SeparableChainProof, plan: &NoisePlan) -> Self {
        let inner = chain.round_plan(proof);
        let k = chain.num_intermediate();
        let d = chain.register_dim();
        let quiet = plan.is_quiet();
        let mut base_tables = vec![0.0; 4 * (k + 1)];
        for j in 0..=k {
            for idx in 0..4 {
                base_tables[4 * j + idx] = inner.table(j, idx);
            }
        }
        let mut sampler = NoisyChainSampler {
            inner,
            quiet,
            k,
            p_max: 1,
            m_max: 1,
            s_in: 2,
            left_q: Vec::new(),
            left_cum: Vec::new(),
            proof_q: Vec::new(),
            proof_cum: Vec::new(),
            msg_q: Vec::new(),
            msg_cum: Vec::new(),
            proof_thr: Vec::new(),
            msg_thr: Vec::new(),
            t0: Vec::new(),
            mid: Vec::new(),
            bnd: Vec::new(),
            bnd_left: Vec::new(),
            base_tables,
            num_nodes: k + 2,
        };
        if quiet {
            return sampler;
        }
        assert!(
            k <= 62,
            "noisy sampling covers the single-coin-word regime (k <= 62), got k = {k}"
        );
        let left_amps = chain.left_state().amplitudes();
        let left = branch_set(left_amps, plan.message, d);
        let boundary =
            |v: &CVector| -> f64 { chain.right_effect().quadratic_form(v).re.clamp(0.0, 1.0) };
        if k == 0 {
            sampler.bnd_left = left.states.iter().map(&boundary).collect();
            sampler.left_q = left.q;
            sampler.left_cum = left.cum;
            return sampler;
        }
        let proof_sets: Vec<BranchSet> = proof
            .iter()
            .flat_map(|(r0, r1)| {
                [
                    branch_set(r0.amplitudes(), plan.proof, d),
                    branch_set(r1.amplitudes(), plan.proof, d),
                ]
            })
            .collect();
        let p_max = proof_sets.iter().map(|s| s.q.len()).max().unwrap_or(1);
        let mut msg_sets: Vec<Option<BranchSet>> = (0..2 * k * p_max).map(|_| None).collect();
        for (i, set) in proof_sets.iter().enumerate() {
            for (p, st) in set.states.iter().enumerate() {
                msg_sets[i * p_max + p] = Some(branch_set(st, plan.message, d));
            }
        }
        let m_max = msg_sets
            .iter()
            .flatten()
            .map(|s| s.q.len())
            .max()
            .unwrap_or(1);
        let two_p = 2 * p_max;
        let s_in = two_p * m_max;

        let lm = left.q.len();
        let mut t0 = vec![0.0; lm * two_p];
        for (ml, lst) in left.states.iter().enumerate() {
            for b in 0..2 {
                for (p, st) in proof_sets[b].states.iter().enumerate() {
                    t0[ml * two_p + b * p_max + p] = swap_accept(lst, st);
                }
            }
        }
        let mut mid = vec![0.0; (k - 1) * s_in * two_p];
        for j in 1..k {
            for f in 0..2 {
                let fwd_idx = 2 * (j - 1) + f;
                for (pf, _) in proof_sets[fwd_idx].states.iter().enumerate() {
                    let mset = msg_sets[fwd_idx * p_max + pf]
                        .as_ref()
                        .expect("message branches exist for live proof branches");
                    for (mm, fst) in mset.states.iter().enumerate() {
                        let s = (f * p_max + pf) * m_max + mm;
                        for c in 0..2 {
                            for (pc, kst) in proof_sets[2 * j + c].states.iter().enumerate() {
                                mid[((j - 1) * s_in + s) * two_p + c * p_max + pc] =
                                    swap_accept(fst, kst);
                            }
                        }
                    }
                }
            }
        }
        let mut bnd = vec![0.0; s_in];
        for f in 0..2 {
            let fwd_idx = 2 * (k - 1) + f;
            for (pf, _) in proof_sets[fwd_idx].states.iter().enumerate() {
                let mset = msg_sets[fwd_idx * p_max + pf]
                    .as_ref()
                    .expect("message branches exist for live proof branches");
                for (mm, fst) in mset.states.iter().enumerate() {
                    bnd[(f * p_max + pf) * m_max + mm] = boundary(fst);
                }
            }
        }

        let mut proof_thr = vec![u32::MAX; 2 * k * p_max];
        for (i, set) in proof_sets.iter().enumerate() {
            for (p, &c) in set.cum.iter().enumerate() {
                proof_thr[i * p_max + p] = thr21(c);
            }
        }
        let mut msg_thr = vec![u32::MAX; 2 * k * p_max * m_max];
        for (i, set) in msg_sets.iter().enumerate() {
            if let Some(b) = set {
                for (m, &c) in b.cum.iter().enumerate() {
                    msg_thr[i * m_max + m] = thr21(c);
                }
            }
        }

        sampler.p_max = p_max;
        sampler.m_max = m_max;
        sampler.s_in = s_in;
        sampler.left_q = left.q;
        sampler.left_cum = left.cum;
        sampler.proof_thr = proof_thr;
        sampler.msg_thr = msg_thr;
        sampler.proof_q = proof_sets.iter().map(|s| s.q.clone()).collect();
        sampler.proof_cum = proof_sets.into_iter().map(|s| s.cum).collect();
        sampler.msg_q = msg_sets
            .iter()
            .map(|s| s.as_ref().map(|b| b.q.clone()).unwrap_or_default())
            .collect();
        sampler.msg_cum = msg_sets
            .into_iter()
            .map(|s| s.map(|b| b.cum).unwrap_or_default())
            .collect();
        sampler.t0 = t0;
        sampler.mid = mid;
        sampler.bnd = bnd;
        sampler
    }

    /// `true` when the plan injects no noise (the sampler then delegates to
    /// the noise-free lane engine bit-exactly).
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// Number of intermediate nodes.
    pub fn num_intermediate(&self) -> usize {
        self.k
    }

    /// Exact acceptance probability under the noise plan: the transfer
    /// product over the enlarged `(coin, proof branch, message branch)`
    /// Markov state — the curve the phase diagrams chart and the sampled
    /// rates are pinned against.
    pub fn exact_acceptance(&self) -> f64 {
        if self.quiet {
            return plan_acceptance(&self.inner);
        }
        if self.k == 0 {
            return self
                .left_q
                .iter()
                .zip(&self.bnd_left)
                .map(|(q, b)| q * b)
                .sum::<f64>()
                .clamp(0.0, 1.0);
        }
        let two_p = 2 * self.p_max;
        let mut cur = vec![0.0; self.s_in];
        for c0 in 0..2 {
            let mut t0avg = 0.0;
            for (ml, &ql) in self.left_q.iter().enumerate() {
                for (p, &qp) in self.proof_q[c0].iter().enumerate() {
                    t0avg += ql * qp * self.t0[ml * two_p + c0 * self.p_max + p];
                }
            }
            let f = 1 - c0;
            for (p, &qp) in self.proof_q[f].iter().enumerate() {
                for (m, &qm) in self.msg_q[f * self.p_max + p].iter().enumerate() {
                    cur[(f * self.p_max + p) * self.m_max + m] += 0.5 * t0avg * qp * qm;
                }
            }
        }
        for j in 1..self.k {
            let mut next = vec![0.0; self.s_in];
            for (s, &ws) in cur.iter().enumerate() {
                if ws == 0.0 {
                    continue;
                }
                for c in 0..2 {
                    let mut kept = 0.0;
                    for (p, &qp) in self.proof_q[2 * j + c].iter().enumerate() {
                        kept +=
                            qp * self.mid[((j - 1) * self.s_in + s) * two_p + c * self.p_max + p];
                    }
                    let w = 0.5 * ws * kept;
                    let f = 1 - c;
                    for (p, &qp) in self.proof_q[2 * j + f].iter().enumerate() {
                        for (m, &qm) in self.msg_q[(2 * j + f) * self.p_max + p].iter().enumerate()
                        {
                            next[(f * self.p_max + p) * self.m_max + m] += w * qp * qm;
                        }
                    }
                }
            }
            cur = next;
        }
        cur.iter()
            .zip(&self.bnd)
            .map(|(w, b)| w * b)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// One noisy trajectory's coin-and-branch-conditional acceptance weight.
    /// `coins` is the raw coin word (`c_j` = bit `j`); branch draws come
    /// from the trial's noise stream in the fixed schedule documented on
    /// the module.
    fn noisy_weight(&self, coins: u64, nr: &mut CounterRng) -> f64 {
        let ml = pick(&self.left_cum, unit_f64(nr.random::<u64>()));
        if self.k == 0 {
            return self.bnd_left[ml];
        }
        let p_max = self.p_max;
        let m_max = self.m_max;
        let two_p = 2 * p_max;
        let pt: &[u32] = &self.proof_thr;
        let mt: &[u32] = &self.msg_thr;
        let mut w = 1.0;
        let mut s_prev = 0usize;
        for j in 0..self.k {
            let word = nr.random::<u64>();
            let u_p0 = (word & MASK21) as u32;
            let u_p1 = ((word >> 21) & MASK21) as u32;
            let u_m = ((word >> 42) & MASK21) as u32;
            let c = ((coins >> j) & 1) as usize;
            let f = 1 - c;
            let (kept_u, fwd_u) = if c == 0 { (u_p0, u_p1) } else { (u_p1, u_p0) };
            let mp_kept = pick21(&pt[(2 * j + c) * p_max..][..p_max], kept_u);
            let mp_fwd = pick21(&pt[(2 * j + f) * p_max..][..p_max], fwd_u);
            let mm = pick21(&mt[((2 * j + f) * p_max + mp_fwd) * m_max..][..m_max], u_m);
            let kept_idx = c * p_max + mp_kept;
            w *= if j == 0 {
                self.t0[ml * two_p + kept_idx]
            } else {
                self.mid[((j - 1) * self.s_in + s_prev) * two_p + kept_idx]
            };
            s_prev = (f * p_max + mp_fwd) * m_max + mm;
        }
        w * self.bnd[s_prev]
    }

    /// One noisy trial: the unchanged coin/accept schedule from the trial
    /// stream, branches from the noise stream.
    fn noisy_trial(&self, stream: &BlockRng, t: u64) -> bool {
        let mut tr = stream.trial_rng(t);
        let coins = tr.random::<u64>();
        let draw = tr.random::<f64>();
        let mut nr = stream.noise_rng(t);
        draw < self.noisy_weight(coins, &mut nr)
    }

    /// Wraps the sampler for the message-passing runtime: each trial's
    /// trajectory branches become a per-trial round-table program executed
    /// node by node over a [`FaultyTransport`], so Kraus noise and injected
    /// transport faults compose in one run.
    pub fn transport_sampler(
        &self,
        faults: FaultPlan,
        policy: RetryPolicy,
    ) -> NoisyTransportSampler<'_> {
        NoisyTransportSampler {
            sampler: self,
            faults,
            policy,
        }
    }

    /// Round tables of one transport trial, written into the caller's
    /// scratch: trajectory branches are drawn for **both** registers of
    /// every node (the executing nodes flip their coins only later, inside
    /// the round — drawing the unused register's branches does not bias the
    /// used ones), then assembled into the `4·(k+1)` coin-pair table layout
    /// of [`ChainRoundPlan`]. Scratch-buffered so a transport trial costs
    /// zero heap allocations, like the noise-free [`crate::net`] samplers.
    fn transport_trial_tables(&self, rng: &mut StdRng, scratch: &mut TransportTables) {
        let tables = &mut scratch.tables;
        let (mp, mm) = (&mut scratch.mp, &mut scratch.mm);
        if self.quiet {
            tables.copy_from_slice(&self.base_tables);
            return;
        }
        let k = self.k;
        let ml = pick(&self.left_cum, rng.random::<f64>());
        if k == 0 {
            tables.fill(self.bnd_left[ml]);
            return;
        }
        let two_p = 2 * self.p_max;
        for j in 0..k {
            for b in 0..2 {
                let p = pick(&self.proof_cum[2 * j + b], rng.random::<f64>());
                mp[j][b] = p;
                mm[j][b] = pick(
                    &self.msg_cum[(2 * j + b) * self.p_max + p],
                    rng.random::<f64>(),
                );
            }
        }
        for prev in 0..2 {
            for cur in 0..2 {
                tables[prev + 2 * cur] = self.t0[ml * two_p + cur * self.p_max + mp[0][cur]];
            }
        }
        for j in 1..k {
            for prev in 0..2 {
                let f = 1 - prev;
                let s = (f * self.p_max + mp[j - 1][f]) * self.m_max + mm[j - 1][f];
                for cur in 0..2 {
                    tables[4 * j + prev + 2 * cur] =
                        self.mid[((j - 1) * self.s_in + s) * two_p + cur * self.p_max + mp[j][cur]];
                }
            }
        }
        for prev in 0..2 {
            let f = 1 - prev;
            let s = (f * self.p_max + mp[k - 1][f]) * self.m_max + mm[k - 1][f];
            tables[4 * k + prev] = self.bnd[s];
            tables[4 * k + prev + 2] = self.bnd[s];
        }
    }
}

/// Reusable per-worker buffers of one transport trial's trajectory draw:
/// the `4·(k+1)` round tables plus the per-node branch indices.
struct TransportTables {
    tables: Vec<f64>,
    mp: Vec<[usize; 2]>,
    mm: Vec<[usize; 2]>,
}

impl TransportTables {
    fn new(k: usize) -> Self {
        TransportTables {
            tables: vec![0.0; 4 * (k + 1)],
            mp: vec![[0usize; 2]; k],
            mm: vec![[0usize; 2]; k],
        }
    }
}

impl LaneBatched for NoisyChainSampler {
    fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64 {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane width {lanes} outside 1..={MAX_LANES}"
        );
        if self.quiet {
            // Bit-exact noise-off: the PR-7 lane engine, untouched.
            return self.inner.sample_lane_block(trials, stream, lanes);
        }
        // Per-trial walk. Every draw is a pure function of the trial index
        // (counter streams), so the count is invariant in `lanes`, worker
        // grouping and the SIMD setting by construction.
        (0..trials).filter(|&t| self.noisy_trial(stream, t)).count() as u64
    }
}

impl BatchSampler for NoisyChainSampler {
    type Scratch = ();

    fn scratch(&self) {}

    fn sample_block(&self, trials: u64, _scratch: &mut (), stream: &BlockRng) -> u64 {
        self.sample_lane_block(trials, stream, default_lane_width())
    }
}

/// One transport trial's chain program: the per-trajectory round tables in
/// the coin-pair layout of [`ChainRoundPlan`], walked node by node exactly
/// like [`crate::net::ChainNetProgram`]. Borrows the worker's scratch
/// buffers — building one is free.
struct NoisyChainProgram<'a> {
    tables: &'a [f64],
    k: usize,
    schedule: &'a [NodeId],
}

impl NoisyChainProgram<'_> {
    #[inline]
    fn table(&self, j: usize, idx: usize) -> f64 {
        self.tables[4 * j + idx]
    }
}

impl RoundProgram for NoisyChainProgram<'_> {
    fn num_nodes(&self) -> usize {
        self.k + 2
    }

    fn schedule(&self) -> &[NodeId] {
        self.schedule
    }

    fn run_node<T: Transport + ?Sized>(
        &self,
        node: NodeId,
        io: &mut NodeIo<'_, T>,
    ) -> Result<bool, FaultCause> {
        if node == 0 {
            io.send(1, 0)?;
            Ok(true)
        } else if node <= self.k {
            let prev = (io.recv()?.payload & 1) as usize;
            let (cur, accept) = io.coin_accept(|cur| self.table(node - 1, prev + 2 * cur));
            io.send(node + 1, cur as u64)?;
            Ok(accept)
        } else {
            let prev = (io.recv()?.payload & 1) as usize;
            Ok(io.bernoulli(self.table(self.k, prev)))
        }
    }

    fn fault_free_draws(&self, node: NodeId) -> u64 {
        // Same script as `ChainNetProgram`: one word everywhere but node 0.
        u64::from(node != 0)
    }
}

/// [`OutcomeSampler`] running noisy chain rounds over the fault-injecting
/// transport: per trial, a fault salt is drawn first (the exact schedule of
/// [`crate::net::TransportSampler`] — a quiet plan therefore reproduces its
/// outcomes and transcript digest bit-exactly), then the trajectory's
/// branch draws, then the round executes over the worker's
/// [`FaultyTransport`].
pub struct NoisyTransportSampler<'a> {
    sampler: &'a NoisyChainSampler,
    faults: FaultPlan,
    policy: RetryPolicy,
}

/// Per-worker state of [`NoisyTransportSampler`]: the fault-injecting
/// transport plus the trial's trajectory-table buffers and node schedule,
/// all reused across the block.
pub struct NoisyTransportScratch {
    transport: FaultyTransport<LocalChannelTransport>,
    tables: TransportTables,
    schedule: Vec<NodeId>,
}

impl OutcomeSampler for NoisyTransportSampler<'_> {
    type Scratch = NoisyTransportScratch;

    fn scratch(&self) -> Self::Scratch {
        NoisyTransportScratch {
            transport: FaultyTransport::new(
                LocalChannelTransport::poll(self.sampler.num_nodes),
                self.faults.clone(),
            ),
            tables: TransportTables::new(self.sampler.k),
            schedule: (0..self.sampler.k + 2).collect(),
        }
    }

    fn sample_block(
        &self,
        trials: u64,
        scratch: &mut Self::Scratch,
        rng: &mut StdRng,
    ) -> BlockOutcomes {
        let mut out = BlockOutcomes::default();
        for _ in 0..trials {
            let salt = rng.random::<u64>();
            self.sampler
                .transport_trial_tables(rng, &mut scratch.tables);
            let program = NoisyChainProgram {
                tables: &scratch.tables.tables,
                k: self.sampler.k,
                schedule: &scratch.schedule,
            };
            let (outcome, stats) = run_round(&program, &scratch.transport, &self.policy, salt, rng);
            match outcome {
                RoundOutcome::Accept => out.accepts += 1,
                RoundOutcome::Reject => out.rejects += 1,
                RoundOutcome::Aborted(_) => out.aborts += 1,
            }
            out.messages += stats.sent;
            out.retries += stats.retries;
            out.digest ^= mix(stats.digest.wrapping_add(salt));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::sample_transport_rounds;
    use crate::trials::{run_trials, run_trials_with_workers, stats};
    use qsim::{CMatrix, PureState};

    fn honest_chain(r: usize, dim: usize) -> (SwapTestChain, SeparableChainProof) {
        let state = PureState::single(dim, 0);
        let effect = CMatrix::projector(state.amplitudes());
        let chain = SwapTestChain::new(r, state, effect);
        let proof = chain.honest_proof();
        (chain, proof)
    }

    #[test]
    fn quiet_plan_detection() {
        assert!(NoisePlan::quiet().is_quiet());
        assert!(NoisePlan::proof_only(NoiseChannel::Depolarizing { p: 0.0 }).is_quiet());
        assert!(!NoisePlan::symmetric(NoiseChannel::Dephasing { lambda: 0.2 }).is_quiet());
    }

    #[test]
    fn quiet_sampler_reproduces_noise_free_counts_bit_exactly() {
        let (chain, proof) = honest_chain(6, 2);
        let noisy = NoisyChainSampler::new(&chain, &proof, &NoisePlan::quiet());
        assert!(noisy.is_quiet());
        let base = chain.sample_rounds(&proof, 30_000, 11);
        let quiet = run_trials(&noisy, 30_000, 11);
        assert_eq!(base.accepts, quiet.accepts);
    }

    #[test]
    fn basis_preserving_channels_keep_honest_completeness_exact() {
        // Dephasing projectors and the amplitude-damping fixed point both
        // leave computational-basis registers invariant: every trajectory
        // branch is the register itself, so completeness stays exactly 1.
        for channel in [
            NoiseChannel::Dephasing { lambda: 0.4 },
            NoiseChannel::AmplitudeDamping { gamma: 0.3 },
        ] {
            let (chain, proof) = honest_chain(4, 2);
            let noisy = NoisyChainSampler::new(&chain, &proof, &NoisePlan::symmetric(channel));
            assert!(
                (noisy.exact_acceptance() - 1.0).abs() < 1e-12,
                "{}: {}",
                channel.label(),
                noisy.exact_acceptance()
            );
            let report = run_trials(&noisy, 5_000, 3);
            assert_eq!(report.accepts, 5_000, "{}", channel.label());
        }
    }

    #[test]
    fn trajectory_sampling_matches_exact_transfer_product() {
        let (chain, proof) = honest_chain(4, 2);
        let plan = NoisePlan::symmetric(NoiseChannel::Depolarizing { p: 0.2 });
        let noisy = NoisyChainSampler::new(&chain, &proof, &plan);
        let exact = noisy.exact_acceptance();
        assert!(exact < 1.0 - 1e-3, "depolarizing must cost completeness");
        let n = 60_000u64;
        let report = run_trials(&noisy, n, 5);
        let margin = stats::hoeffding_margin(n);
        assert!(
            (report.acceptance_rate() - exact).abs() < margin,
            "measured {} vs exact {exact} (margin {margin})",
            report.acceptance_rate()
        );
    }

    #[test]
    fn completeness_degrades_monotonically_with_depolarizing_strength() {
        let (chain, proof) = honest_chain(8, 2);
        let acc = |p: f64| {
            NoisyChainSampler::new(
                &chain,
                &proof,
                &NoisePlan::symmetric(NoiseChannel::Depolarizing { p }),
            )
            .exact_acceptance()
        };
        let a0 = acc(0.0);
        let a1 = acc(0.1);
        let a3 = acc(0.3);
        assert!((a0 - 1.0).abs() < 1e-12);
        assert!(a1 < a0 && a3 < a1, "{a0} {a1} {a3}");
    }

    #[test]
    fn noisy_counts_are_worker_and_lane_invariant() {
        let (chain, proof) = honest_chain(5, 2);
        let plan = NoisePlan::symmetric(NoiseChannel::Depolarizing { p: 0.15 });
        let noisy = NoisyChainSampler::new(&chain, &proof, &plan);
        let base = run_trials_with_workers(&noisy, 25_000, 9, 1);
        for workers in [2usize, 4] {
            let r = run_trials_with_workers(&noisy, 25_000, 9, workers);
            assert_eq!(base.accepts, r.accepts, "workers = {workers}");
        }
        let stream = BlockRng::new(9, 0);
        let one = noisy.sample_lane_block(8192, &stream, 1);
        let wide = noisy.sample_lane_block(8192, &stream, 32);
        assert_eq!(one, wide);
    }

    #[test]
    fn quiet_transport_matches_the_noise_free_transport_sampler() {
        let (chain, proof) = honest_chain(4, 2);
        let noisy = NoisyChainSampler::new(&chain, &proof, &NoisePlan::quiet());
        let faults = FaultPlan::default();
        let policy = RetryPolicy::default();
        let program = chain.net_program(&proof);
        let base = sample_transport_rounds(&program, &faults, &policy, 4_000, 21, 2);
        let sampler = noisy.transport_sampler(faults, policy);
        let quiet = crate::trials::run_outcome_trials_with_workers(&sampler, 4_000, 21, 2);
        assert_eq!(base.outcomes, quiet.outcomes);
    }

    #[test]
    fn noisy_transport_loses_completeness() {
        let (chain, proof) = honest_chain(4, 2);
        let plan = NoisePlan::symmetric(NoiseChannel::Depolarizing { p: 0.25 });
        let noisy = NoisyChainSampler::new(&chain, &proof, &plan);
        let exact = noisy.exact_acceptance();
        let sampler = noisy.transport_sampler(FaultPlan::default(), RetryPolicy::default());
        let n = 20_000u64;
        let report = crate::trials::run_outcome_trials_with_workers(&sampler, n, 13, 2);
        assert!(report.accept_rate() < 1.0);
        // Fault-free transport rounds match the in-process trajectory law.
        assert!(
            (report.accept_rate() - exact).abs() < stats::hoeffding_margin(n),
            "transport {} vs exact {exact}",
            report.accept_rate()
        );
    }

    #[test]
    fn single_hop_chain_with_noise() {
        // r = 1 has no intermediate nodes: only the left state's hop into
        // the boundary measurement carries noise.
        let state = PureState::single(2, 0);
        let effect = CMatrix::projector(state.amplitudes());
        let chain = SwapTestChain::new(1, state, effect);
        let proof = chain.honest_proof();
        let plan = NoisePlan::message_only(NoiseChannel::Depolarizing { p: 0.3 });
        let noisy = NoisyChainSampler::new(&chain, &proof, &plan);
        // Depolarizing at d = 2: the |0⟩⟨0| boundary sees the state flipped
        // to |1⟩ with probability p/2, so acceptance is 1 − p/2.
        let exact = noisy.exact_acceptance();
        assert!((exact - (1.0 - 0.15)).abs() < 1e-12, "{exact}");
        let n = 40_000u64;
        let report = run_trials(&noisy, n, 2);
        assert!((report.acceptance_rate() - exact).abs() < stats::hoeffding_margin(n));
    }
}
