//! The improved dQMA protocol for EQ on general graphs with the permutation
//! test (Section 3.3 of the paper, Algorithm 5, Theorem 19).
//!
//! The prover announces the spanning tree of Section 3.3 (verified classically
//! via Lemma 18, see `netsim::tree`); terminals prepare fingerprints of their
//! inputs and send them towards the root; every internal node receives two
//! proof registers, symmetrises them, forwards one to its parent, and runs the
//! **permutation test** on its kept register together with everything received
//! from its children. Replacing FGNP21's pick-one-child SWAP test by the
//! permutation test is what removes the factor `t` from the local proof size:
//! `O(r² log n)` instead of `O(t·r² log n)`.

use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use netsim::tree::TerminalTree;
use netsim::{CostTracker, Graph, ProtocolCosts};
use qsim::permutation::{permutation_test_acceptance_gram, permutation_test_on};
use qsim::PureState;

use crate::chain::SwapTestChain;
use crate::eq_path::scale_costs;
use crate::trials::{
    self, default_lane_width, BatchSampler, BlockRng, LaneBatched, TrialReport, MAX_LANES,
};
use rand::Rng;

/// The EQ protocol on a general network, running on the announced terminal
/// tree.
#[derive(Clone, Debug)]
pub struct EqTreeProtocol {
    tree: TerminalTree,
    scheme: FingerprintScheme,
    repetitions: usize,
}

impl EqTreeProtocol {
    /// Builds the protocol for the given network and terminals, with the
    /// paper's repetition count for radius `r`.
    pub fn new(graph: &Graph, terminals: &[usize], n: usize, seed: u64) -> Self {
        let r = graph.radius().max(1);
        EqTreeProtocol {
            tree: TerminalTree::build(graph, terminals),
            scheme: FingerprintScheme::new(n, seed),
            repetitions: SwapTestChain::paper_repetitions(r),
        }
    }

    /// Builds the protocol with an explicit scheme and repetition count
    /// (small schemes keep exact simulation cheap).
    pub fn with_scheme(
        graph: &Graph,
        terminals: &[usize],
        scheme: FingerprintScheme,
        repetitions: usize,
    ) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        EqTreeProtocol {
            tree: TerminalTree::build(graph, terminals),
            scheme,
            repetitions,
        }
    }

    /// Builds the protocol on an already-announced [`TerminalTree`] — the
    /// churn runtime's re-randomisation path, where the supervisor draws a
    /// fresh seeded §3.3 tree ([`TerminalTree::build_seeded`]) mid-workload
    /// and re-broadcasts the program without re-deriving scheme or
    /// repetitions.
    pub fn with_tree(tree: TerminalTree, scheme: FingerprintScheme, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        EqTreeProtocol {
            tree,
            scheme,
            repetitions,
        }
    }

    /// The announced terminal tree the protocol runs on.
    pub fn tree(&self) -> &TerminalTree {
        &self.tree
    }

    /// The fingerprint scheme in use.
    pub fn scheme(&self) -> &FingerprintScheme {
        &self.scheme
    }

    /// Number of parallel repetitions.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.tree.num_terminals()
    }

    /// The logical tree nodes that receive proof registers (every node that is
    /// not a terminal leaf), in increasing logical index order.
    pub fn proof_nodes(&self) -> Vec<usize> {
        let leaves = self.tree.terminal_leaves();
        (0..self.tree.num_nodes())
            .filter(|idx| !leaves.contains(idx))
            .collect()
    }

    /// The proof where every register of every proof node carries the
    /// fingerprint of `s` — the honest proof on yes-instances (all inputs
    /// equal `s`), and the natural uniform cheating strategy otherwise.
    pub fn uniform_proof(&self, s: &BitString) -> Vec<(PureState, PureState)> {
        let h = self.scheme.fingerprint(s);
        self.proof_nodes()
            .iter()
            .map(|_| (h.clone(), h.clone()))
            .collect()
    }

    /// Exact probability that all nodes accept one repetition, for terminal
    /// inputs `inputs` (one per terminal, in terminal order) and a separable
    /// proof (one register pair per proof node, in [`Self::proof_nodes`]
    /// order), averaging over the symmetrisation randomness.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs or proof pairs is wrong, or if there are
    /// more than 16 proof nodes (the symmetrisation enumeration would blow up).
    pub fn acceptance_separable(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
    ) -> f64 {
        let leaves: Vec<usize> = self.tree.terminal_leaves().to_vec();
        assert_eq!(
            inputs.len(),
            leaves.len(),
            "one input per terminal required"
        );
        let proof_nodes = self.proof_nodes();
        assert_eq!(
            proof.len(),
            proof_nodes.len(),
            "one register pair per proof node required"
        );
        assert!(
            proof_nodes.len() <= 16,
            "too many proof nodes for exact enumeration"
        );

        let leaf_states = self.leaf_fingerprints(inputs);
        let patterns = 1usize << proof_nodes.len();
        let mut total = 0.0;
        let order = self.tree.post_order();
        for pattern in 0..patterns {
            let swapped: Vec<bool> = (0..proof_nodes.len())
                .map(|pi| (pattern >> pi) & 1 == 1)
                .collect();
            let mut prob = 1.0;
            for &v in &order {
                if self.tree.children(v).is_empty() {
                    continue;
                }
                let states = self.node_test_states(v, &leaf_states, proof, &proof_nodes, &swapped);
                prob *= permutation_test_acceptance_gram(&states);
                if prob < 1e-15 {
                    break;
                }
            }
            total += prob;
        }
        (total / patterns as f64).clamp(0.0, 1.0)
    }

    /// The fingerprints the terminal leaves send up — prepared once per round
    /// (as the terminals do), not once per internal node.
    fn leaf_fingerprints(&self, inputs: &[BitString]) -> Vec<PureState> {
        inputs.iter().map(|x| self.scheme.fingerprint(x)).collect()
    }

    /// The states entering node `v`'s permutation test: its kept register plus
    /// whatever each child sends up (a terminal fingerprint for leaves, the
    /// forwarded proof register otherwise), given which register each proof
    /// node keeps under the symmetrisation outcome `swapped`.
    fn node_test_states(
        &self,
        v: usize,
        leaf_states: &[PureState],
        proof: &[(PureState, PureState)],
        proof_nodes: &[usize],
        swapped: &[bool],
    ) -> Vec<PureState> {
        let leaves = self.tree.terminal_leaves();
        let leaf_state = |idx: usize| -> Option<&PureState> {
            leaves
                .iter()
                .position(|&l| l == idx)
                .map(|i| &leaf_states[i])
        };
        let proof_index = |idx: usize| {
            proof_nodes
                .iter()
                .position(|&p| p == idx)
                .expect("proof node")
        };
        let kept = |idx: usize| -> &PureState {
            let pi = proof_index(idx);
            if swapped[pi] {
                &proof[pi].1
            } else {
                &proof[pi].0
            }
        };
        let forwarded = |idx: usize| -> &PureState {
            let pi = proof_index(idx);
            if swapped[pi] {
                &proof[pi].0
            } else {
                &proof[pi].1
            }
        };
        let mut states: Vec<PureState> = vec![kept(v).clone()];
        for &c in self.tree.children(v) {
            if let Some(s) = leaf_state(c) {
                states.push(s.clone());
            } else {
                states.push(forwarded(c).clone());
            }
        }
        states
    }

    /// Samples one full round: symmetrisation coins at every proof node, then
    /// one permutation test per internal node, walked bottom-up over the
    /// tree's post-order. Returns `true` when every node accepts.
    ///
    /// Pure-state fast path: conditioned on the coins the tests act on
    /// disjoint product registers (each register participates in exactly one
    /// test), so each outcome is an independent Bernoulli draw from the
    /// Gram-matrix closed form — no joint density matrix is ever formed.
    pub fn simulate_round<R: rand::Rng + ?Sized>(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
        rng: &mut R,
    ) -> bool {
        let proof_nodes = self.proof_nodes();
        assert_eq!(
            inputs.len(),
            self.tree.terminal_leaves().len(),
            "one input per terminal required"
        );
        assert_eq!(
            proof.len(),
            proof_nodes.len(),
            "one register pair per proof node required"
        );
        let leaf_states = self.leaf_fingerprints(inputs);
        let swapped: Vec<bool> = (0..proof_nodes.len())
            .map(|_| rng.random::<f64>() < 0.5)
            .collect();
        for &v in &self.tree.post_order() {
            if self.tree.children(v).is_empty() {
                continue;
            }
            let states = self.node_test_states(v, &leaf_states, proof, &proof_nodes, &swapped);
            let p = permutation_test_acceptance_gram(&states);
            if rng.random::<f64>() >= p {
                return false;
            }
        }
        true
    }

    /// Samples one full round through the density-matrix measurement layer:
    /// per internal node the incoming registers are assembled into a
    /// `(k+1)`-register joint density matrix and the sampled matrix-free
    /// [`permutation_test_on`] is run on all of them at once — the paper's
    /// Algorithm 5 node operation, with `O(k!·D)` acceptance and `O(D²)`
    /// symmetrisation effects instead of a dense `d^{k+1} × d^{k+1}`
    /// projector.
    pub fn simulate_round_via_density<R: rand::Rng + ?Sized>(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
        rng: &mut R,
    ) -> bool {
        let proof_nodes = self.proof_nodes();
        assert_eq!(
            inputs.len(),
            self.tree.terminal_leaves().len(),
            "one input per terminal required"
        );
        assert_eq!(
            proof.len(),
            proof_nodes.len(),
            "one register pair per proof node required"
        );
        let leaf_states = self.leaf_fingerprints(inputs);
        let swapped: Vec<bool> = (0..proof_nodes.len())
            .map(|_| rng.random::<f64>() < 0.5)
            .collect();
        let d = self.scheme.dim();
        for &v in &self.tree.post_order() {
            if self.tree.children(v).is_empty() {
                continue;
            }
            let states = self.node_test_states(v, &leaf_states, proof, &proof_nodes, &swapped);
            let joint = PureState::tensor_all(&states).regroup(&vec![d; states.len()]);
            let mut rho = qsim::DensityMatrix::from_pure(&joint);
            let targets: Vec<usize> = (0..states.len()).collect();
            if !permutation_test_on(&mut rho, &targets, rng) {
                return false;
            }
        }
        true
    }

    /// Compiles a fixed `(inputs, proof)` instance into a [`TreeRoundPlan`]
    /// for batched round sampling.
    ///
    /// Conditioned on the symmetrisation coins, node `v`'s permutation test
    /// involves only `v`'s own coin and the coins of its non-leaf children —
    /// so the plan stores, per internal node, the relevant coin bit
    /// positions and a `2^m` table of Gram-form acceptances over them
    /// (`m ≤ 1 + fan-out`, tiny for the paper's trees). A sampled round is
    /// one coin word, one table lookup per internal node and one accept
    /// draw — no state cloning, no Gram matrices, no allocation.
    ///
    /// # Panics
    ///
    /// Panics on input/proof shape mismatches or more than 64 proof nodes
    /// (the coin word).
    pub fn round_plan(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
    ) -> TreeRoundPlan {
        let proof_nodes = self.proof_nodes();
        assert_eq!(
            inputs.len(),
            self.tree.terminal_leaves().len(),
            "one input per terminal required"
        );
        assert_eq!(
            proof.len(),
            proof_nodes.len(),
            "one register pair per proof node required"
        );
        assert!(
            proof_nodes.len() <= 64,
            "too many proof nodes for the coin word"
        );
        let leaf_states = self.leaf_fingerprints(inputs);
        let leaves = self.tree.terminal_leaves();
        let proof_index = |idx: usize| {
            proof_nodes
                .iter()
                .position(|&p| p == idx)
                .expect("proof node")
        };
        let mut nodes = Vec::new();
        for &v in &self.tree.post_order() {
            if self.tree.children(v).is_empty() {
                continue;
            }
            // The coins that influence node v's test: its own (which
            // register it kept) and each non-leaf child's (which register
            // that child forwarded).
            let mut bits: Vec<u32> = vec![proof_index(v) as u32];
            for &c in self.tree.children(v) {
                if !leaves.contains(&c) {
                    bits.push(proof_index(c) as u32);
                }
            }
            let mut probs = vec![0.0f64; 1 << bits.len()];
            let mut swapped = vec![false; proof_nodes.len()];
            for (mask, slot) in probs.iter_mut().enumerate() {
                for (i, &b) in bits.iter().enumerate() {
                    swapped[b as usize] = (mask >> i) & 1 == 1;
                }
                let states = self.node_test_states(v, &leaf_states, proof, &proof_nodes, &swapped);
                *slot = permutation_test_acceptance_gram(&states);
            }
            nodes.push(TreeNodePlan { bits, probs });
        }
        TreeRoundPlan { nodes }
    }

    /// Batched Monte-Carlo rounds on a fixed `(inputs, proof)` instance:
    /// prepares the per-node acceptance tables once (see
    /// [`EqTreeProtocol::round_plan`]) and runs `n` trials through the block
    /// engine of [`crate::trials`] — accept counts bit-identical at any
    /// worker count.
    pub fn sample_rounds(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
        n: u64,
        seed: u64,
    ) -> TrialReport {
        trials::run_trials(&self.round_plan(inputs, proof), n, seed)
    }

    /// As [`EqTreeProtocol::sample_rounds`] with an explicit worker-slot
    /// count.
    pub fn sample_rounds_with_workers(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
        n: u64,
        seed: u64,
        workers: usize,
    ) -> TrialReport {
        trials::run_trials_with_workers(&self.round_plan(inputs, proof), n, seed, workers)
    }

    /// Compiles a fixed `(inputs, proof)` instance into a per-node
    /// message-passing program for the transport executors of
    /// [`crate::net`]: leaves send their fingerprint token towards the root,
    /// internal nodes gather their children's messages (attributed by
    /// source, so reordering is harmless), run the permutation test from the
    /// same acceptance tables as [`EqTreeProtocol::round_plan`], and forward
    /// their own coin. The executor schedule is the tree's post order.
    ///
    /// # Panics
    ///
    /// As [`EqTreeProtocol::round_plan`].
    pub fn net_program(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
    ) -> crate::net::TreeNetProgram {
        use crate::net::TreeRole;
        let plan = self.round_plan(inputs, proof);
        let leaves = self.tree.terminal_leaves();
        let order = self.tree.post_order();
        let mut roles = vec![TreeRole::Unused; self.tree.num_nodes()];
        let mut plan_nodes = plan.nodes.into_iter();
        for &v in &order {
            let children = self.tree.children(v);
            if children.is_empty() {
                roles[v] = TreeRole::Leaf {
                    parent: self.tree.parent(v).expect("a leaf has a parent"),
                };
                continue;
            }
            let node_plan = plan_nodes.next().expect("one plan entry per internal node");
            // The plan's table index layout: bit 0 is v's own coin, bit
            // 1 + p the p-th non-leaf child's coin in children order.
            let mut shift = 0u32;
            let kids: Vec<(usize, Option<u32>)> = children
                .iter()
                .map(|&c| {
                    if leaves.contains(&c) {
                        (c, None)
                    } else {
                        shift += 1;
                        (c, Some(shift))
                    }
                })
                .collect();
            roles[v] = TreeRole::Internal {
                parent: self.tree.parent(v),
                children: kids,
                probs: node_plan.probs,
            };
        }
        crate::net::TreeNetProgram::new(roles, order, self.scheme.qubits() as u64)
    }

    /// Completeness witness: acceptance of the honest proof when every terminal
    /// holds the same string.
    pub fn completeness(&self, common_input: &BitString) -> f64 {
        let t = self.num_terminals();
        let inputs = vec![common_input.clone(); t];
        self.acceptance_separable(&inputs, &self.uniform_proof(common_input))
    }

    /// Acceptance of the full repeated protocol when the prover plays the same
    /// separable strategy independently in each repetition.
    pub fn repeated_acceptance(
        &self,
        inputs: &[BitString],
        proof: &[(PureState, PureState)],
    ) -> f64 {
        SwapTestChain::repeated_soundness(
            self.acceptance_separable(inputs, proof),
            self.repetitions,
        )
    }

    /// Cost summary of the full repeated protocol (Theorem 19): local proof and
    /// message `O(r² log n)` qubits, independent of the number of terminals.
    pub fn costs(&self) -> ProtocolCosts {
        let q = self.scheme.qubits() as u64;
        let mut t = CostTracker::new();
        for &v in &self.proof_nodes() {
            t.record_proof(v, 2 * q);
        }
        for v in 0..self.tree.num_nodes() {
            if let Some(p) = self.tree.parent(v) {
                t.record_message(v, p, q);
            }
        }
        t.set_rounds(1);
        scale_costs(&t.summary(), self.repetitions as u64)
    }

    /// The FGNP21 local proof size bound `O(t·r²·log n)` for Table 1
    /// comparisons (constant 1).
    pub fn fgnp_local_cost(n: usize, r: usize, t: usize) -> f64 {
        (t * r * r) as f64 * (n as f64).log2().max(1.0)
    }

    /// This paper's local proof size bound `O(r²·log n)` (Theorem 19).
    pub fn paper_local_cost(n: usize, r: usize) -> f64 {
        (r * r) as f64 * (n as f64).log2().max(1.0)
    }
}

/// A tree instance compiled for batched round sampling; built by
/// [`EqTreeProtocol::round_plan`].
#[derive(Clone, Debug)]
pub struct TreeRoundPlan {
    /// One entry per internal node, in post order.
    nodes: Vec<TreeNodePlan>,
}

#[derive(Clone, Debug)]
struct TreeNodePlan {
    /// Coin-word bit positions that influence this node's test.
    bits: Vec<u32>,
    /// Gram-form acceptance per combination of those coins
    /// (`probs[Σ_i c_{bits[i]} · 2^i]`).
    probs: Vec<f64>,
}

impl TreeRoundPlan {
    /// Draws one round's coins and returns the coin-conditional acceptance
    /// `Π_v p_v(c)` over the internal nodes.
    #[inline]
    pub fn round_weight<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let coins = rng.random::<u64>();
        let mut w = 1.0;
        for node in &self.nodes {
            let mut idx = 0usize;
            for (i, &b) in node.bits.iter().enumerate() {
                idx |= (((coins >> b) & 1) as usize) << i;
            }
            w *= node.probs[idx];
        }
        w
    }

    /// Samples one round: coins, conditional product, one accept draw —
    /// identical in distribution to [`EqTreeProtocol::simulate_round`] on
    /// the planned instance.
    #[inline]
    pub fn round<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let w = self.round_weight(rng);
        rng.random::<f64>() < w
    }
}

impl LaneBatched for TreeRoundPlan {
    fn sample_lane_block(&self, trials: u64, stream: &BlockRng, lanes: usize) -> u64 {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane width {lanes} outside 1..={MAX_LANES}"
        );
        // SoA lane walk mirroring `round`: per lane one coin word and one
        // accumulator, per node one gather-multiply across the lane batch
        // (`round_plan` guarantees at most 64 coins, so a single word always
        // suffices). Per-trial counter streams — coin word first, accept
        // draw second — make the planes independent of lane grouping.
        let mut coins = [0u64; MAX_LANES];
        let mut draw = [0.0f64; MAX_LANES];
        let mut acc = [0.0f64; MAX_LANES];
        let mut accepts = 0u64;
        let mut t = 0u64;
        while t < trials {
            let l = (lanes as u64).min(trials - t) as usize;
            stream.fill_lane_streams(t, &mut coins[..l], &mut draw[..l]);
            acc[..l].fill(1.0);
            for node in &self.nodes {
                qsim::simd::tree_lane_accumulate(
                    &node.probs,
                    &node.bits,
                    &coins[..l],
                    &mut acc[..l],
                );
            }
            accepts += qsim::simd::count_accepts(&draw[..l], &acc[..l]);
            t += l as u64;
        }
        accepts
    }
}

impl BatchSampler for TreeRoundPlan {
    type Scratch = ();

    fn scratch(&self) {}

    fn sample_block(&self, trials: u64, _scratch: &mut (), stream: &BlockRng) -> u64 {
        self.sample_lane_block(trials, stream, default_lane_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology;

    fn spider_protocol(legs: usize, leg_len: usize, n: usize) -> (EqTreeProtocol, Vec<usize>) {
        let g = topology::spider(legs, leg_len);
        let terminals: Vec<usize> = (0..legs)
            .map(|k| topology::spider_leaf(k, leg_len))
            .collect();
        let proto = EqTreeProtocol::with_scheme(&g, &terminals, FingerprintScheme::small(n, 5), 4);
        (proto, terminals)
    }

    #[test]
    fn perfect_completeness_on_spider() {
        let (proto, _) = spider_protocol(3, 2, 4);
        let x = BitString::from_u64(9, 4);
        assert!((proto.completeness(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_completeness_on_path_terminals() {
        let g = topology::path(4);
        let proto = EqTreeProtocol::with_scheme(&g, &[0, 4], FingerprintScheme::small(3, 2), 2);
        let x = BitString::from_u64(5, 3);
        assert!((proto.completeness(&x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_differing_terminal_is_detected() {
        let (proto, terminals) = spider_protocol(3, 2, 4);
        let x = BitString::from_u64(9, 4);
        let y = BitString::from_u64(6, 4);
        let mut inputs = vec![x.clone(); terminals.len()];
        inputs[2] = y;
        // The natural cheat: claim everything equals x.
        let p = proto.acceptance_separable(&inputs, &proto.uniform_proof(&x));
        assert!(p < 1.0 - 1e-4, "acceptance {p}");
        let repeated = proto.repeated_acceptance(&inputs, &proto.uniform_proof(&x));
        assert!(repeated < p);
    }

    #[test]
    fn all_different_inputs_rejected_more_strongly_than_one_off() {
        let (proto, terminals) = spider_protocol(3, 1, 4);
        let base = BitString::from_u64(3, 4);
        let mut one_off = vec![base.clone(); terminals.len()];
        one_off[1] = BitString::from_u64(12, 4);
        let all_diff: Vec<BitString> = (0..terminals.len() as u64)
            .map(|k| BitString::from_u64(k * 5 % 16, 4))
            .collect();
        let p_one = proto.acceptance_separable(&one_off, &proto.uniform_proof(&base));
        let p_all = proto.acceptance_separable(&all_diff, &proto.uniform_proof(&base));
        assert!(
            p_all <= p_one + 1e-9,
            "all-different {p_all} vs one-off {p_one}"
        );
    }

    #[test]
    fn sampled_rounds_agree_with_exact_acceptance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A dimension-2 fingerprint keeps the density-matrix sampler's
        // per-node joint states tiny in debug builds.
        let g = topology::spider(3, 1);
        let terminals: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 1)).collect();
        let proto = EqTreeProtocol::with_scheme(
            &g,
            &terminals,
            FingerprintScheme::with_parameters(4, 1, 1, 5),
            4,
        );
        let x = BitString::from_u64(9, 4);
        let y = BitString::from_u64(6, 4);
        let mut inputs = vec![x.clone(); terminals.len()];
        inputs[1] = y;
        let proof = proto.uniform_proof(&x);
        let exact = proto.acceptance_separable(&inputs, &proof);
        let mut rng = StdRng::seed_from_u64(31);
        let trials = 2000;
        let est = (0..trials)
            .filter(|_| proto.simulate_round(&inputs, &proof, &mut rng))
            .count() as f64
            / trials as f64;
        assert!(
            (est - exact).abs() < 0.06,
            "estimated {est} vs exact {exact}"
        );
        // The density-matrix sampler (matrix-free permutation_test_on per
        // node) agrees with the closed-form sampler.
        let est_density = (0..trials)
            .filter(|_| proto.simulate_round_via_density(&inputs, &proof, &mut rng))
            .count() as f64
            / trials as f64;
        assert!(
            (est_density - exact).abs() < 0.06,
            "density-sampler estimate {est_density} vs exact {exact}"
        );
        // Honest rounds accept with certainty.
        let honest_inputs = vec![x.clone(); terminals.len()];
        for _ in 0..10 {
            assert!(proto.simulate_round(&honest_inputs, &proof, &mut rng));
            assert!(proto.simulate_round_via_density(&honest_inputs, &proof, &mut rng));
        }
    }

    #[test]
    fn tree_round_plan_matches_exact_acceptance_and_is_worker_invariant() {
        let (proto, terminals) = spider_protocol(3, 1, 4);
        let x = BitString::from_u64(9, 4);
        let y = BitString::from_u64(6, 4);
        let mut inputs = vec![x.clone(); terminals.len()];
        inputs[1] = y;
        let proof = proto.uniform_proof(&x);
        let exact = proto.acceptance_separable(&inputs, &proof);
        let report = proto.sample_rounds(&inputs, &proof, 40_000, 17);
        let eps = report.hoeffding_radius(1e-9);
        assert!(
            (report.acceptance_rate() - exact).abs() < eps,
            "batched tree rate {} vs exact {exact}",
            report.acceptance_rate()
        );
        let base = proto.sample_rounds_with_workers(&inputs, &proof, 20_000, 23, 1);
        for workers in [2usize, 4] {
            let r = proto.sample_rounds_with_workers(&inputs, &proof, 20_000, 23, workers);
            assert_eq!(r.accepts, base.accepts, "worker count {workers}");
        }
        // Honest rounds: every trial accepts.
        let honest_inputs = vec![x.clone(); terminals.len()];
        let honest = proto.sample_rounds(&honest_inputs, &proof, 5000, 29);
        assert_eq!(honest.accepts, honest.trials);
    }

    #[test]
    fn local_proof_size_is_independent_of_terminal_count() {
        // Theorem 19's headline: unlike FGNP21, the local proof size does not
        // grow with t.
        let n = 8;
        let (p3, _) = {
            let g = topology::spider(3, 2);
            let t: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 2)).collect();
            (EqTreeProtocol::new(&g, &t, n, 1), t)
        };
        let (p6, _) = {
            let g = topology::spider(6, 2);
            let t: Vec<usize> = (0..6).map(|k| topology::spider_leaf(k, 2)).collect();
            (EqTreeProtocol::new(&g, &t, n, 1), t)
        };
        assert_eq!(
            p3.costs().local_proof_qubits,
            p6.costs().local_proof_qubits,
            "local proof size must not depend on t"
        );
        // The FGNP bound, in contrast, doubles.
        assert!(
            EqTreeProtocol::fgnp_local_cost(n, 2, 6)
                > 1.9 * EqTreeProtocol::fgnp_local_cost(n, 2, 3)
        );
    }

    #[test]
    fn costs_follow_theorem_19_shape() {
        let n = 8;
        let g_small = topology::spider(3, 1);
        let t_small: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 1)).collect();
        let g_large = topology::spider(3, 3);
        let t_large: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 3)).collect();
        let c_small = EqTreeProtocol::new(&g_small, &t_small, n, 1).costs();
        let c_large = EqTreeProtocol::new(&g_large, &t_large, n, 1).costs();
        // Larger radius -> more repetitions -> larger local proof.
        assert!(c_large.local_proof_qubits > c_small.local_proof_qubits);
    }

    #[test]
    fn proof_nodes_exclude_terminal_leaves() {
        let (proto, terminals) = spider_protocol(3, 2, 4);
        let proof_nodes = proto.proof_nodes();
        for i in 0..terminals.len() {
            let leaf = proto.tree().terminal_leaf(i);
            assert!(!proof_nodes.contains(&leaf));
        }
        assert!(!proof_nodes.is_empty());
    }
}
