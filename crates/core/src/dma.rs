//! Classical dMA baselines and the cut-and-paste fooling attack
//! (Section 4.2 of the paper, Lemma 23, Proposition 24, Corollaries 25/27/31).
//!
//! The quantum advantage claimed by the paper is relative to classical
//! distributed Merlin–Arthur protocols. Two baselines are implemented:
//!
//! * the **trivial** protocol: the prover sends the whole `n`-bit input to
//!   every node, neighbours compare — `Θ(r·n)` total proof, perfectly sound;
//! * a **sketch** protocol family with an adjustable per-node proof size `s`:
//!   the prover sends an `s`-bit seeded linear hash of the input to every
//!   node. When `s` is large this behaves like the trivial protocol; when the
//!   proof budget drops below the fooling-set bound, the Lemma 23
//!   cut-and-paste attack finds a 0-input that every node accepts — which is
//!   exactly the mechanism behind the `Ω(r·n)` classical lower bound.

use commproto::bitstring::BitString;
use commproto::fingerprint::LinearCode;
use commproto::fooling::FoolingSet;
use netsim::{CostTracker, ProtocolCosts};

/// A classical dMA protocol for EQ on a path of length `r` where every node
/// receives an `s`-bit sketch of the (claimed) common input.
#[derive(Clone, Debug)]
pub struct SketchEqDma {
    n: usize,
    r: usize,
    sketch_bits: usize,
    code: LinearCode,
}

impl SketchEqDma {
    /// Builds the protocol with an `s`-bit seeded linear sketch.
    pub fn new(n: usize, r: usize, sketch_bits: usize, seed: u64) -> Self {
        assert!(sketch_bits >= 1, "sketch must have at least one bit");
        SketchEqDma {
            n,
            r,
            sketch_bits,
            code: LinearCode::random(n, sketch_bits, seed),
        }
    }

    /// The trivial protocol: the per-node proof carries (a faithful encoding
    /// of) the whole input — implemented as `2n` independent random parities,
    /// which is injective on `{0,1}^n` except with probability `2^{-n-1}` over
    /// the seed, so the attack below has no collision to exploit.
    pub fn trivial(n: usize, r: usize, seed: u64) -> Self {
        SketchEqDma::new(n, r, 2 * n, seed)
    }

    /// Input length.
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Path length.
    pub fn path_length(&self) -> usize {
        self.r
    }

    /// Per-node proof size in bits.
    pub fn sketch_bits(&self) -> usize {
        self.sketch_bits
    }

    /// The honest proof assignment for claimed input `x`: the same sketch at
    /// every node.
    pub fn honest_assignment(&self, x: &BitString) -> Vec<BitString> {
        vec![self.code.encode(x); self.r + 1]
    }

    /// Deterministic verification: node 0 checks its label is the sketch of
    /// `x`, node `r` checks its label is the sketch of `y`, and every node
    /// checks its label equals its right neighbour's. Returns `true` iff all
    /// nodes accept.
    pub fn accepts(&self, x: &BitString, y: &BitString, assignment: &[BitString]) -> bool {
        assert_eq!(assignment.len(), self.r + 1, "one label per node required");
        if assignment[0] != self.code.encode(x) || assignment[self.r] != self.code.encode(y) {
            return false;
        }
        assignment.windows(2).all(|w| w[0] == w[1])
    }

    /// Completeness: equal inputs with the honest assignment are always
    /// accepted.
    pub fn completeness(&self, x: &BitString) -> bool {
        self.accepts(x, x, &self.honest_assignment(x))
    }

    /// The Lemma 23 cut-and-paste attack: search the fooling set for two pairs
    /// whose honest proofs agree on some adjacent pair of nodes (here: whose
    /// sketches collide), and return a 0-input together with a forged
    /// assignment that every node accepts. Returns `None` when no collision
    /// exists (e.g. for the trivial protocol).
    pub fn fooling_attack(&self, fooling_set: &FoolingSet) -> Option<FoolingAttack> {
        let pairs = fooling_set.pairs();
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (x1, _y1) = &pairs[i];
                let (_x2, y2) = &pairs[j];
                if self.code.encode(x1) == self.code.encode(_x2) && x1 != _x2 {
                    // Forged input (x1, y2) with the proof of the colliding sketch:
                    // every node sees a locally consistent picture.
                    let assignment = self.honest_assignment(x1);
                    if self.accepts(x1, y2, &assignment) && x1 != y2 {
                        return Some(FoolingAttack {
                            x: x1.clone(),
                            y: y2.clone(),
                            assignment,
                        });
                    }
                }
            }
        }
        None
    }

    /// Cost summary: `s` bits of proof per node, `0` communication beyond the
    /// neighbour comparison (counted as `s`-bit messages).
    pub fn costs(&self) -> ProtocolCosts {
        let mut t = CostTracker::new();
        for j in 0..=self.r {
            t.record_proof_bits(j, self.sketch_bits as u64);
        }
        for j in 0..self.r {
            t.record_message_bits(j, j + 1, self.sketch_bits as u64);
        }
        t.set_rounds(1);
        t.summary()
    }
}

/// A successful cut-and-paste attack: a 0-input `(x, y)` and a proof
/// assignment accepted by every node.
#[derive(Clone, Debug)]
pub struct FoolingAttack {
    /// Left input.
    pub x: BitString,
    /// Right input.
    pub y: BitString,
    /// The forged per-node proof assignment.
    pub assignment: Vec<BitString>,
}

/// The classical lower bound of Proposition 24 / Corollary 25: any `ν`-round
/// dMA protocol for a function with a 1-fooling set of size `2^n` whose total
/// proof size is at most `⌊(r−1)/(2ν)⌋·⌊(n−1)/2⌋` bits has soundness error at
/// least `1 − 2p` (with completeness `1 − p`). Returns that threshold.
pub fn dma_total_proof_threshold(n: usize, r: usize, rounds: usize) -> u64 {
    if r < 1 || n < 1 {
        return 0;
    }
    (((r - 1) / (2 * rounds)) as u64) * (((n - 1) / 2) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commproto::fooling::eq_fooling_set;
    use commproto::problems::{Equality, TwoPartyFunction};

    #[test]
    fn trivial_protocol_is_complete_and_resists_the_attack() {
        let proto = SketchEqDma::trivial(6, 4, 1);
        let x = BitString::from_u64(37, 6);
        assert!(proto.completeness(&x));
        // With n independent parities no two of the 64 inputs collide (with
        // this seed), so the attack fails.
        assert!(proto.fooling_attack(&eq_fooling_set(6)).is_none());
    }

    #[test]
    fn short_sketches_fall_to_the_cut_and_paste_attack() {
        // s = 2 bits of proof per node versus a fooling set of size 2^6:
        // collisions are guaranteed by pigeonhole, and the attack succeeds.
        let proto = SketchEqDma::new(6, 4, 2, 3);
        let attack = proto
            .fooling_attack(&eq_fooling_set(6))
            .expect("pigeonhole guarantees a collision");
        let eq = Equality { n: 6 };
        assert!(
            !eq.eval(&attack.x, &attack.y),
            "the attack input must be a 0-input"
        );
        assert!(
            proto.accepts(&attack.x, &attack.y, &attack.assignment),
            "every node must accept the forged assignment"
        );
    }

    #[test]
    fn attack_threshold_matches_the_paper_formula() {
        // Total proof below ⌊(r-1)/2ν⌋·⌊(n-1)/2⌋ bits -> attackable.
        assert_eq!(dma_total_proof_threshold(9, 5, 1), 2 * 4);
        assert_eq!(dma_total_proof_threshold(9, 5, 2), 4);
        assert_eq!(dma_total_proof_threshold(3, 1, 1), 0);
        // The threshold grows linearly in both r and n: the Ω(rn) lower bound.
        assert!(dma_total_proof_threshold(65, 33, 1) >= 16 * 32);
    }

    #[test]
    fn mismatched_neighbour_labels_are_rejected() {
        let proto = SketchEqDma::new(4, 3, 3, 1);
        let x = BitString::from_u64(5, 4);
        let mut assignment = proto.honest_assignment(&x);
        assignment[1] = BitString::zeros(3).xor(&BitString::from_u64(1, 3));
        if assignment[1] == assignment[0] {
            assignment[1] = BitString::from_u64(2, 3);
        }
        assert!(!proto.accepts(&x, &x, &assignment));
    }

    #[test]
    fn quantum_vs_classical_total_proof_comparison() {
        // Table 2: the quantum EQ protocol's total proof is O(r^3 log n) per
        // repetition budget while any sound classical protocol needs Ω(rn)
        // bits; for n >> r^2 the quantum total is smaller.
        let n = 1 << 16;
        let r = 4;
        let quantum_local = crate::eq_path::EqPathProtocol::paper_local_cost(n, r);
        let quantum_total = quantum_local * (r as f64 + 1.0);
        let classical_total = dma_total_proof_threshold(n, r, 1) as f64;
        assert!(
            quantum_total < classical_total,
            "quantum {quantum_total} vs classical {classical_total}"
        );
    }

    #[test]
    fn costs_count_bits_not_qubits() {
        let c = SketchEqDma::new(8, 5, 3, 1).costs();
        assert_eq!(c.total_proof_bits, 6 * 3);
        assert_eq!(c.total_proof_qubits, 0);
        assert_eq!(c.local_proof_bits, 3);
    }
}
