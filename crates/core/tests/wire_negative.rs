//! Negative battery for every wire decoder a hostile or corrupted peer can
//! reach: [`dqma::cluster::ProgramSpec`] (the `program` control line),
//! [`dqma::cluster::NodeConfig`] (the node argv), and the service specs
//! ([`dqma::service::InstanceSpec`] / [`dqma::service::JobSpec`], the
//! journal and HTTP wire forms).
//!
//! The contract under test is uniform: **every** malformed frame —
//! truncated at any token boundary, corrupted at any token, or carrying an
//! oversized count — must come back as a structured `Err`, never a panic
//! and never an attacker-sized allocation. The tests are table-driven over
//! real encodings, so they track the codecs as they grow.

use commproto::bitstring::BitString;
use commproto::fingerprint::FingerprintScheme;
use dqma::chain::ChainCheat;
use dqma::cluster::{NodeConfig, ProgramSpec};
use dqma::eq_path::EqPathProtocol;
use dqma::eq_tree::EqTreeProtocol;
use dqma::relay::RelayEqProtocol;
use dqma::service::{InstanceSpec, JobSpec};
use netsim::topology;

/// One real encoding per program shape, produced by the actual encoders so
/// the negative tables can never drift from the wire format.
fn sample_program_specs() -> Vec<(&'static str, String)> {
    let proto = EqPathProtocol::with_scheme(3, FingerprintScheme::small(4, 7), 4);
    let x = BitString::from_u64(3, 4);
    let y = BitString::from_u64(12, 4);
    let chain = ProgramSpec::from_chain(&proto.net_program(&x, &y, ChainCheat::Interpolate));

    let relay_proto = RelayEqProtocol::with_spacing(4, 6, 2, 3);
    let rx = BitString::from_u64(11, 4);
    let relays = vec![rx.clone(); relay_proto.relay_points().len()];
    let relay =
        ProgramSpec::from_relay(&relay_proto.net_program(&rx, &rx, &relays, ChainCheat::AllLeft));

    let g = topology::spider(3, 1);
    let terminals: Vec<usize> = (0..3).map(|k| topology::spider_leaf(k, 1)).collect();
    let tree_proto = EqTreeProtocol::with_scheme(
        &g,
        &terminals,
        FingerprintScheme::with_parameters(4, 1, 1, 5),
        4,
    );
    let tx = BitString::from_u64(9, 4);
    let inputs = vec![tx.clone(); terminals.len()];
    let proof = tree_proto.uniform_proof(&tx);
    let tree = ProgramSpec::from_tree(&tree_proto.net_program(&inputs, &proof));

    vec![
        ("chain", chain.encode()),
        ("relay", relay.encode()),
        ("tree", tree.encode()),
    ]
}

#[test]
fn program_specs_roundtrip_through_their_wire_form() {
    for (label, line) in sample_program_specs() {
        let decoded = ProgramSpec::decode(&line)
            .unwrap_or_else(|e| panic!("{label}: own encoding must decode, got {e}"));
        assert_eq!(decoded.encode(), line, "{label}: decode∘encode is identity");
    }
}

/// Truncating a valid encoding at *every* whitespace boundary must yield a
/// structured error (or, for a prefix that happens to be complete, a
/// successful parse) — never a panic. This sweeps the classic torn-frame
/// shape: a peer dying mid-write.
#[test]
fn truncation_at_every_token_boundary_is_an_error_never_a_panic() {
    for (label, line) in sample_program_specs() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        for cut in 0..tokens.len() {
            let prefix = tokens[..cut].join(" ");
            let result = std::panic::catch_unwind(|| ProgramSpec::decode(&prefix));
            let decoded = result
                .unwrap_or_else(|_| panic!("{label}: decode panicked on {cut}-token truncation"));
            assert!(
                decoded.is_err(),
                "{label}: {cut}-token prefix of a {}-token spec must not decode",
                tokens.len()
            );
        }
    }
}

/// Corrupting any single token must be a structured error or a valid
/// different spec — never a panic. Each token is replaced by several
/// hostile substitutes (non-numeric, negative, non-hex, huge).
#[test]
fn single_token_corruption_is_an_error_never_a_panic() {
    let substitutes = ["zz", "-1", "18446744073709551616", "NaN", ":", "1e999", ""];
    for (label, line) in sample_program_specs() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        for i in 0..tokens.len() {
            for sub in substitutes {
                let mut mutated: Vec<&str> = tokens.clone();
                mutated[i] = sub;
                let frame = mutated.join(" ");
                let result = std::panic::catch_unwind(|| ProgramSpec::decode(&frame));
                assert!(
                    result.is_ok(),
                    "{label}: decode panicked with token {i} replaced by {sub:?}"
                );
            }
        }
    }
}

/// Attacker-controlled length prefixes far beyond any real fleet must be
/// refused up front — before sizing any allocation by them. (The cap is
/// `dqma::cluster` wire policy, 2^16; these counts are ~2^30 and would be
/// multi-gigabyte allocations if honoured.)
#[test]
fn oversized_counts_are_refused_before_allocation() {
    let hostile = [
        "chain 1073741824 3",
        "relay 1073741824 3 0",
        // Boundaries implying a single segment of ~2^30 tables.
        "relay 1 3 0 1073741824",
        "tree 1073741824 3 0",
        "tree 2 3 1073741824",
        "tree 1 3 0 i x 1073741824",
        "tree 1 3 0 i x 1 0:x 1073741824",
    ];
    for frame in hostile {
        let err = ProgramSpec::decode(frame).expect_err("oversized count must be refused");
        assert!(
            err.contains("cap") || err.contains("count"),
            "unexpected error {err:?} for {frame:?}"
        );
    }
    // Non-monotone relay boundaries are the other allocation-bomb shape:
    // segment length is a subtraction that must be checked, not wrapped.
    assert!(ProgramSpec::decode("relay 1 3 5 2").is_err());
    assert!(ProgramSpec::decode("relay 2 3 0 4 1").is_err());
}

#[test]
fn unknown_kinds_and_bad_roles_are_structured_errors() {
    for frame in [
        "",
        "warp 1 2 3",
        "tree 1 3 0 q",
        "tree 1 3 0 l zz",
        "tree 1 3 0 i x 1 5 0",    // child token missing ':'
        "tree 1 3 0 i x 1 5:zz 0", // bad shift
        "tree 1 3 0 i y 1 5:x 0",  // bad parent token
    ] {
        let result = std::panic::catch_unwind(|| ProgramSpec::decode(frame));
        let decoded = result.unwrap_or_else(|_| panic!("decode panicked on {frame:?}"));
        assert!(decoded.is_err(), "{frame:?} must not decode");
    }
}

/// Deterministic mutation fuzz: byte-level corruption (flips, deletions,
/// duplications) of real encodings must never panic the decoder. A simple
/// LCG drives the mutations so failures replay exactly.
#[test]
fn mutation_fuzz_never_panics_the_decoder() {
    let mut state: u64 = 0x5EED_CAFE;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for (label, line) in sample_program_specs() {
        let bytes = line.as_bytes().to_vec();
        for _ in 0..400 {
            let mut mutated = bytes.clone();
            match next() % 3 {
                0 => {
                    // Flip a byte to a printable character.
                    let i = next() as usize % mutated.len();
                    mutated[i] = b' ' + (next() % 94) as u8;
                }
                1 => {
                    // Delete a span.
                    let i = next() as usize % mutated.len();
                    let len = 1 + next() as usize % 8;
                    mutated.drain(i..(i + len).min(mutated.len()));
                }
                _ => {
                    // Duplicate a span (token smearing).
                    let i = next() as usize % mutated.len();
                    let len = 1 + next() as usize % 8;
                    let span: Vec<u8> = mutated[i..(i + len).min(mutated.len())].to_vec();
                    let at = next() as usize % (mutated.len() + 1);
                    for (k, b) in span.into_iter().enumerate() {
                        mutated.insert(at + k, b);
                    }
                }
            }
            let Ok(frame) = String::from_utf8(mutated) else {
                continue;
            };
            let result = std::panic::catch_unwind(|| {
                let _ = ProgramSpec::decode(&frame);
            });
            assert!(result.is_ok(), "{label}: decoder panicked on {frame:?}");
        }
    }
}

#[test]
fn node_argv_negatives_are_structured_errors() {
    let valid: Vec<String> = [
        "127.0.0.1:9000",
        "2",
        "5",
        "1000",
        "4096",
        "5",
        "3fd0000000000000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert!(
        NodeConfig::from_args(&valid).is_ok(),
        "baseline argv parses"
    );

    // Wrong arity in both directions.
    for n in [0, 1, 6, 8] {
        let args: Vec<String> = valid.iter().take(n.min(7)).cloned().collect();
        let args = if n > 7 {
            let mut a = valid.clone();
            a.push("extra".to_string());
            a
        } else {
            args
        };
        assert!(NodeConfig::from_args(&args).is_err(), "arity {n} must fail");
    }
    // Each numeric slot corrupted in turn.
    for slot in 1..7 {
        let mut args = valid.clone();
        args[slot] = "not-a-number".to_string();
        assert!(
            NodeConfig::from_args(&args).is_err(),
            "corrupt slot {slot} must fail"
        );
    }
}

/// The service-layer wire forms obey the same contract: hostile instance
/// and job encodings (journal lines, HTTP bodies) are structured errors.
#[test]
fn service_spec_wire_negatives_are_structured_errors() {
    // Truncation sweep over a canonical instance encoding.
    let spec = InstanceSpec::EqPath {
        r: 8,
        bits: 6,
        x: 0b101101,
        y: 0b101101,
        scheme_seed: 11,
        reps: 2,
        cheat: dqma::service::CheatSpec::Interpolate,
    };
    let line = spec.encode();
    let tokens: Vec<&str> = line.split_whitespace().collect();
    for cut in 0..tokens.len() {
        let prefix = tokens[..cut].join(" ");
        assert!(
            InstanceSpec::decode(&prefix).is_err(),
            "truncated instance {prefix:?} must not decode"
        );
    }
    assert_eq!(InstanceSpec::decode(&line).unwrap(), spec);

    // Out-of-cap parameters are refused at decode time, not at compile
    // time: the decoder is the admission boundary.
    for frame in [
        "eq_path 9999999 6 2d 2d 11 2 interpolate", // r over cap
        "eq_path 8 64 2d 2d 11 2 interpolate",      // bits over cap
        "eq_path 8 6 ff 2d 11 2 interpolate",       // x wider than bits
        "eq_path 8 6 2d 2d 11 999 interpolate",     // reps over cap
        "eq_tree 99 1 4 9 6 5 2",                   // arms over cap
        "relay 1 4 b b 3 all_left",                 // r under relay minimum
    ] {
        assert!(
            InstanceSpec::decode(frame).is_err(),
            "{frame:?} must not decode"
        );
    }

    // Hostile JSON bodies: structured errors, never panics.
    for body in [
        "",
        "{",
        "[1,2",
        "{\"instance\":17,\"trials\":1}",
        "{\"instance\":{\"protocol\":\"eq_path\",\"r\":8,\"bits\":6,\"x\":\"abc\",\"y\":\"110101\"},\"trials\":1}",
        "{\"instance\":{\"protocol\":\"eq_path\",\"r\":8,\"bits\":6,\"x\":\"101\",\"y\":\"110101\"},\"trials\":1}",
        "{\"instance\":{\"protocol\":\"eq_path\",\"r\":8,\"bits\":6,\"x\":\"101101\",\"y\":\"110101\"},\"trials\":-3}",
        "{\"instance\":{\"protocol\":\"eq_path\",\"r\":8,\"bits\":6,\"x\":\"101101\",\"y\":\"110101\"},\"trials\":1.5}",
    ] {
        let outcome = dqma::service::json::parse(body).and_then(|p| JobSpec::from_json(&p));
        assert!(outcome.is_err(), "hostile body {body:?} must not produce a job");
    }
}
