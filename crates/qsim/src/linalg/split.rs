//! Split (structure-of-arrays) storage for complex data.
//!
//! The numeric core keeps real and imaginary parts in two separate `f64`
//! planes instead of one interleaved `Vec<Complex>`. Every hot kernel in
//! [`crate::kernels`] then runs as a pair of plain `f64` loops over the two
//! planes — fused multiply-adds with unit stride and no per-element `Complex`
//! temporaries — which LLVM autovectorises where the interleaved layout
//! (AoS) defeated it.
//!
//! Both planes live in **one** allocation: a buffer of logical length `n`
//! holds the real plane at `data[0..n]` followed by the imaginary plane at
//! `data[n..2n]`. That keeps the allocator traffic of small states (the
//! dimension-2 fingerprint registers the protocol rounds shuffle by the
//! thousands) identical to the old interleaved `Vec<Complex>`, while large
//! kernels still see two contiguous unit-stride planes.
//!
//! Invariants:
//!
//! * `data.len() == 2 * len` always;
//! * element `i` of the logical complex sequence is `data[i] + i·data[len+i]`;
//! * matrices lay each plane out row-major, so a row of a `rows × cols`
//!   matrix is the contiguous range `r*cols..(r+1)*cols` *in both planes*.
//!
//! The AoS representation survives only at explicit boundaries
//! ([`SplitBuffer::from_complex`], [`SplitBuffer::to_complex_vec`]) and in
//! [`crate::naive`], which deliberately stays on interleaved `Vec<Complex>`
//! as the oracle the SoA kernels are pinned against.

use crate::complex::Complex;

/// A pair of equal-length `f64` planes (one allocation, real plane first)
/// holding the real and imaginary parts of a logical complex sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SplitBuffer {
    len: usize,
    data: Vec<f64>,
}

impl SplitBuffer {
    /// Creates a zero-filled buffer of the given logical length.
    pub fn zeros(len: usize) -> Self {
        SplitBuffer {
            len,
            data: vec![0.0; 2 * len],
        }
    }

    /// Creates a buffer of logical length `len` directly from its raw
    /// concatenated-planes representation (`data[0..len]` real,
    /// `data[len..2len]` imaginary) — the allocation-thrifty constructor the
    /// small fast paths use.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 2 * len`.
    pub fn from_raw(len: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), 2 * len, "split buffer length mismatch");
        SplitBuffer { len, data }
    }

    /// Splits an interleaved complex slice into planes (the AoS → SoA
    /// boundary conversion).
    pub fn from_complex(zs: &[Complex]) -> Self {
        let mut buf = SplitBuffer::zeros(zs.len());
        for (i, z) in zs.iter().enumerate() {
            buf.set(i, *z);
        }
        buf
    }

    /// Creates a buffer by evaluating `f` at each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> Complex) -> Self {
        let mut buf = SplitBuffer::zeros(len);
        for i in 0..len {
            buf.set(i, f(i));
        }
        buf
    }

    /// Logical (complex-element) length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i` as a [`Complex`] value.
    #[inline]
    pub fn get(&self, i: usize) -> Complex {
        debug_assert!(i < self.len);
        Complex::new(self.data[i], self.data[self.len + i])
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, z: Complex) {
        debug_assert!(i < self.len);
        self.data[i] = z.re;
        self.data[self.len + i] = z.im;
    }

    /// Adds `z` to element `i`.
    #[inline]
    pub fn add(&mut self, i: usize, z: Complex) {
        debug_assert!(i < self.len);
        self.data[i] += z.re;
        self.data[self.len + i] += z.im;
    }

    /// The real plane.
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.data[..self.len]
    }

    /// The imaginary plane.
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.data[self.len..]
    }

    /// Immutable view of both planes.
    #[inline]
    pub fn split(&self) -> Split<'_> {
        let (re, im) = self.data.split_at(self.len);
        Split { re, im }
    }

    /// Mutable view of both planes.
    #[inline]
    pub fn split_mut(&mut self) -> SplitMut<'_> {
        let (re, im) = self.data.split_at_mut(self.len);
        SplitMut { re, im }
    }

    /// Interleaves the planes back into a complex vector (the SoA → AoS
    /// boundary conversion, used by the [`crate::naive`] oracles).
    pub fn to_complex_vec(&self) -> Vec<Complex> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates the elements as [`Complex`] values.
    pub fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        let (re, im) = self.data.split_at(self.len);
        re.iter().zip(im.iter()).map(|(&r, &i)| Complex::new(r, i))
    }

    /// Sum of `re² + im²` over all elements.
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Multiplies every element by a real scalar in place.
    pub fn scale_real_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Multiplies every element by a complex scalar in place.
    pub fn scale_in_place(&mut self, c: Complex) {
        let (re, im) = self.data.split_at_mut(self.len);
        for (r, i) in re.iter_mut().zip(im.iter_mut()) {
            let (ar, ai) = (*r, *i);
            *r = ar * c.re - ai * c.im;
            *i = ar * c.im + ai * c.re;
        }
    }
}

/// Borrowed immutable view of a split complex sequence.
#[derive(Clone, Copy)]
pub struct Split<'a> {
    /// Real plane.
    pub re: &'a [f64],
    /// Imaginary plane.
    pub im: &'a [f64],
}

impl Split<'_> {
    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Returns `true` when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Complex {
        Complex::new(self.re[i], self.im[i])
    }
}

/// Borrowed mutable view of a split complex sequence.
pub struct SplitMut<'a> {
    /// Real plane.
    pub re: &'a mut [f64],
    /// Imaginary plane.
    pub im: &'a mut [f64],
}

impl SplitMut<'_> {
    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Returns `true` when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Reads element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Complex {
        Complex::new(self.re[i], self.im[i])
    }

    /// Writes element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, z: Complex) {
        self.re[i] = z.re;
        self.im[i] = z.im;
    }

    /// Reborrows the view with a shorter lifetime (so it can be handed to a
    /// callee without giving it up).
    #[inline]
    pub fn reborrow(&mut self) -> SplitMut<'_> {
        SplitMut {
            re: self.re,
            im: self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_complex() {
        let zs = [
            Complex::new(1.0, -2.0),
            Complex::ZERO,
            Complex::new(0.5, 3.5),
        ];
        let buf = SplitBuffer::from_complex(&zs);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.to_complex_vec(), zs.to_vec());
        for (i, &z) in zs.iter().enumerate() {
            assert_eq!(buf.get(i), z);
        }
    }

    #[test]
    fn planes_are_contiguous_halves_of_one_allocation() {
        let buf = SplitBuffer::from_fn(3, |i| Complex::new(i as f64, -(i as f64)));
        assert_eq!(buf.re(), &[0.0, 1.0, 2.0]);
        assert_eq!(buf.im(), &[0.0, -1.0, -2.0]);
        let s = buf.split();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(2), Complex::new(2.0, -2.0));
    }

    #[test]
    fn set_add_and_scale() {
        let mut buf = SplitBuffer::zeros(2);
        buf.set(0, Complex::new(1.0, 1.0));
        buf.add(0, Complex::new(0.5, -2.0));
        assert_eq!(buf.get(0), Complex::new(1.5, -1.0));
        buf.scale_real_in_place(2.0);
        assert_eq!(buf.get(0), Complex::new(3.0, -2.0));
        buf.scale_in_place(Complex::I);
        assert_eq!(buf.get(0), Complex::new(2.0, 3.0));
        assert!((buf.norm_sqr() - 13.0).abs() < 1e-12);
    }
}
