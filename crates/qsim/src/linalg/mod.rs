//! Complex dense linear algebra: vectors, matrices, and Hermitian
//! eigendecomposition.
//!
//! The protocols simulated by this crate only ever manipulate small, dense
//! operators. Storage is split re/im planes ([`split::SplitBuffer`]) so the
//! hot kernels in `qsim::kernels` and the blocked [`CMatrix::matmul`] run as
//! autovectorisable paired `f64` loops; entries are accessed by value
//! (`at`/`set`) since the planes cannot hand out `&Complex` references.

pub mod eigen;
pub mod matrix;
pub mod split;
pub mod vector;

pub use eigen::{abs_hermitian, eigh, max_eigenvalue, sqrt_psd, trace_norm, EigenDecomposition};
pub use matrix::CMatrix;
pub use split::{Split, SplitBuffer, SplitMut};
pub use vector::CVector;
