//! Complex dense linear algebra: vectors, matrices, and Hermitian
//! eigendecomposition.
//!
//! The protocols simulated by this crate only ever manipulate small, dense
//! operators, so the implementation favours clarity and testability over raw
//! performance.

pub mod eigen;
pub mod matrix;
pub mod vector;

pub use eigen::{abs_hermitian, eigh, max_eigenvalue, sqrt_psd, trace_norm, EigenDecomposition};
pub use matrix::CMatrix;
pub use vector::CVector;
