//! Dense complex matrices.

use crate::complex::Complex;
use crate::linalg::vector::CVector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix stored in row-major order.
///
/// This is the workhorse for density matrices, unitaries, projectors and POVM
/// elements. All protocol Hilbert spaces in this crate are small (at most a
/// few hundred dimensions), so a straightforward dense representation is both
/// simpler and fast enough.
///
/// # Examples
///
/// ```
/// use qsim::{Complex, CMatrix};
///
/// let h = CMatrix::from_rows(&[
///     vec![Complex::real(1.0), Complex::real(1.0)],
///     vec![Complex::real(1.0), Complex::real(-1.0)],
/// ]).scale(Complex::real(1.0 / 2f64.sqrt()));
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n`-dimensional identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a diagonal matrix from real diagonal entries.
    pub fn diag_reals(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = Complex::real(d);
        }
        m
    }

    /// Creates the rank-one outer product `|v><w|`.
    pub fn outer(v: &CVector, w: &CVector) -> Self {
        CMatrix::from_fn(v.dim(), w.dim(), |i, j| v[i] * w[j].conj())
    }

    /// Returns the projector `|v><v| / <v|v>` onto the span of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has zero norm.
    pub fn projector(v: &CVector) -> Self {
        let n = v.normalized();
        CMatrix::outer(&n, &n)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Returns the underlying row-major data mutably (used by the strided
    /// kernels in `qsim::kernels` to update matrices in place).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].conj())
    }

    /// Conjugate transpose (adjoint, dagger).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Scales every entry by `c`.
    pub fn scale(&self, c: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * c).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Matrix product `self * rhs`, cache-blocked.
    ///
    /// The product is tiled over the inner (`k`) and column (`j`) dimensions
    /// so that the working set of each tile — a strip of the output row, two
    /// strips of `rhs` rows — stays resident in L1/L2 while the `k` tile is
    /// consumed, and the `k` loop is unrolled two-wide so each pass over the
    /// output strip retires two rank-1 updates (halving the output-row
    /// load/store traffic, the bottleneck of the naive triple loop). The
    /// innermost loop is a contiguous zipped axpy, which the compiler
    /// vectorises without bounds checks. All-zero `k` pairs of `self` skip
    /// their pass (operators here are often sparse embeddings).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        const KC: usize = 64;
        const JC: usize = 512;
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        let mut out = CMatrix::zeros(m, n);
        for jc in (0..n).step_by(JC) {
            let jw = JC.min(n - jc);
            for kc in (0..kd).step_by(KC) {
                let kw = KC.min(kd - kc);
                for i in 0..m {
                    let out_row = &mut out.data[i * n + jc..i * n + jc + jw];
                    let a_row = &self.data[i * kd + kc..i * kd + kc + kw];
                    let mut dk = 0;
                    while dk + 1 < kw {
                        let (a0, a1) = (a_row[dk], a_row[dk + 1]);
                        let (z0, z1) = (a0.norm_sqr() == 0.0, a1.norm_sqr() == 0.0);
                        let k = kc + dk;
                        if !z0 && !z1 {
                            let r0 = &rhs.data[k * n + jc..k * n + jc + jw];
                            let r1 = &rhs.data[(k + 1) * n + jc..(k + 1) * n + jc + jw];
                            for ((o, &b0), &b1) in out_row.iter_mut().zip(r0.iter()).zip(r1.iter())
                            {
                                *o += a0 * b0 + a1 * b1;
                            }
                        } else if !z0 {
                            let r0 = &rhs.data[k * n + jc..k * n + jc + jw];
                            for (o, &b0) in out_row.iter_mut().zip(r0.iter()) {
                                *o += a0 * b0;
                            }
                        } else if !z1 {
                            let r1 = &rhs.data[(k + 1) * n + jc..(k + 1) * n + jc + jw];
                            for (o, &b1) in out_row.iter_mut().zip(r1.iter()) {
                                *o += a1 * b1;
                            }
                        }
                        dk += 2;
                    }
                    if dk < kw {
                        let a = a_row[dk];
                        if a.norm_sqr() != 0.0 {
                            let k = kc + dk;
                            let rhs_row = &rhs.data[k * n + jc..k * n + jc + jw];
                            for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector, returning `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn apply(&self, v: &CVector) -> CVector {
        assert_eq!(self.cols, v.dim(), "apply dimension mismatch");
        CVector::from_fn(self.rows, |i| {
            (0..self.cols).map(|j| self[(i, j)] * v[j]).sum()
        })
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = CMatrix::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self[(i1, j1)];
                if a.norm_sqr() == 0.0 {
                    continue;
                }
                for i2 in 0..rhs.rows {
                    for j2 in 0..rhs.cols {
                        out[(i1 * rhs.rows + i2, j1 * rhs.cols + j2)] = a * rhs[(i2, j2)];
                    }
                }
            }
        }
        out
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns `true` when `self` is Hermitian to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when `self` is unitary to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` when every entry of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns the `k`-fold Kronecker power of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn kron_pow(&self, k: usize) -> CMatrix {
        assert!(k >= 1, "kron_pow requires k >= 1");
        let mut out = self.clone();
        for _ in 1..k {
            out = out.kron(self);
        }
        out
    }

    /// Extracts a column as a vector.
    pub fn column(&self, j: usize) -> CVector {
        CVector::from_fn(self.rows, |i| self[(i, j)])
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "matrix addition row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix addition column mismatch");
        CMatrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "matrix subtraction row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix subtraction column mismatch");
        CMatrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| -self[(i, j)])
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ZERO, Complex::ONE],
            vec![Complex::ONE, Complex::ZERO],
        ])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ZERO, -Complex::I],
            vec![Complex::I, Complex::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ONE, Complex::ZERO],
            vec![Complex::ZERO, -Complex::ONE],
        ])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, 1e-12));
        assert!(id.matmul(&x).approx_eq(&x, 1e-12));
    }

    #[test]
    fn pauli_algebra() {
        // X * Y = iZ
        let lhs = pauli_x().matmul(&pauli_y());
        let rhs = pauli_z().scale(Complex::I);
        assert!(lhs.approx_eq(&rhs, 1e-12));
        // X^2 = I
        assert!(pauli_x()
            .matmul(&pauli_x())
            .approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn paulis_are_hermitian_and_unitary() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_hermitian(1e-12));
            assert!(p.is_unitary(1e-12));
        }
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex::new(i as f64, j as f64));
        let b = CMatrix::from_fn(3, 3, |i, j| Complex::new((i + j) as f64, (i * j) as f64));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trace_is_cyclic() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex::new(i as f64 - j as f64, 1.0));
        let b = CMatrix::from_fn(3, 3, |i, j| Complex::new((i * j) as f64, -(i as f64)));
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!(t1.approx_eq(t2, 1e-9));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMatrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let u = pauli_x().kron(&pauli_y()).kron(&pauli_z());
        assert!(u.is_unitary(1e-12));
        assert_eq!(u.rows(), 8);
    }

    #[test]
    fn outer_product_and_projector() {
        let v = CVector::from_reals(&[1.0, 1.0]).normalized();
        let p = CMatrix::projector(&v);
        assert!(p.is_hermitian(1e-12));
        // Projector is idempotent.
        assert!(p.matmul(&p).approx_eq(&p, 1e-12));
        assert!((p.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_matches_matmul_on_column() {
        let m = CMatrix::from_fn(3, 3, |i, j| Complex::new((i + 2 * j) as f64, j as f64));
        let v = CVector::from_reals(&[1.0, -1.0, 0.5]);
        let applied = m.apply(&v);
        for i in 0..3 {
            let expected: Complex = (0..3).map(|j| m[(i, j)] * v[j]).sum();
            assert!(applied[i].approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn kron_pow() {
        let x = pauli_x();
        let x3 = x.kron_pow(3);
        assert_eq!(x3.rows(), 8);
        // X⊗X⊗X maps |000> to |111>.
        let v = CVector::basis(8, 0);
        let w = x3.apply(&v);
        assert!(w.approx_eq(&CVector::basis(8, 7), 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = CMatrix::zeros(2, 3).matmul(&CMatrix::zeros(2, 3));
    }

    #[test]
    fn diag_and_column() {
        let d = CMatrix::diag_reals(&[1.0, 2.0, 3.0]);
        assert!((d.trace().re - 6.0).abs() < 1e-12);
        let c = d.column(1);
        assert!(c.approx_eq(&CVector::from_reals(&[0.0, 2.0, 0.0]), 1e-12));
    }
}
