//! Dense complex matrices on split (SoA) storage.

use crate::complex::Complex;
use crate::linalg::split::{Split, SplitBuffer, SplitMut};
use crate::linalg::vector::CVector;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense complex matrix, row-major in each of two split re/im planes.
///
/// This is the workhorse for density matrices, unitaries, projectors and POVM
/// elements. All protocol Hilbert spaces in this crate are small (at most a
/// few hundred dimensions), so a straightforward dense representation is both
/// simpler and fast enough. Entries are read with [`CMatrix::at`] and written
/// with [`CMatrix::set`]; the split planes cannot hand out `&Complex`
/// references, which is exactly what lets the [`crate::kernels`] hot loops
/// run as autovectorisable paired `f64` loops.
///
/// # Examples
///
/// ```
/// use qsim::{Complex, CMatrix};
///
/// let h = CMatrix::from_rows(&[
///     vec![Complex::real(1.0), Complex::real(1.0)],
///     vec![Complex::real(1.0), Complex::real(-1.0)],
/// ]).scale(Complex::real(1.0 / 2f64.sqrt()));
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    buf: SplitBuffer,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            buf: SplitBuffer::zeros(rows * cols),
        }
    }

    /// Creates the `n`-dimensional identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, Complex::ONE);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let buf = SplitBuffer::from_fn(rows * cols, |k| f(k / cols, k % cols));
        CMatrix { rows, cols, buf }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have the same length"
        );
        let buf = SplitBuffer::from_fn(r * c, |k| rows[k / c][k % c]);
        CMatrix {
            rows: r,
            cols: c,
            buf,
        }
    }

    /// Creates a matrix from an interleaved row-major entry list.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_complex(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        CMatrix {
            rows,
            cols,
            buf: SplitBuffer::from_complex(data),
        }
    }

    /// Creates a diagonal matrix from real diagonal entries.
    pub fn diag_reals(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, Complex::real(d));
        }
        m
    }

    /// Creates the rank-one outer product `|v><w|`.
    pub fn outer(v: &CVector, w: &CVector) -> Self {
        let (vr, vi) = (v.re(), v.im());
        let (wr, wi) = (w.re(), w.im());
        let (m, n) = (vr.len(), wr.len());
        let mut out = CMatrix::zeros(m, n);
        {
            let o = out.buf.split_mut();
            for i in 0..m {
                let (air, aii) = (vr[i], vi[i]);
                let row_re = &mut o.re[i * n..(i + 1) * n];
                let row_im = &mut o.im[i * n..(i + 1) * n];
                // v[i] * conj(w[j]) = (air + i·aii)(wr[j] - i·wi[j])
                for j in 0..n {
                    row_re[j] = air * wr[j] + aii * wi[j];
                    row_im[j] = aii * wr[j] - air * wi[j];
                }
            }
        }
        out
    }

    /// Returns the projector `|v><v| / <v|v>` onto the span of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has zero norm.
    pub fn projector(v: &CVector) -> Self {
        let n = v.normalized();
        CMatrix::outer(&n, &n)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Reads entry `(i, j)` as a value.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> Complex {
        self.buf.get(i * self.cols + j)
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, z: Complex) {
        self.buf.set(i * self.cols + j, z);
    }

    /// Adds `z` to entry `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, z: Complex) {
        self.buf.add(i * self.cols + j, z);
    }

    /// The real plane, row-major.
    #[inline]
    pub fn re(&self) -> &[f64] {
        self.buf.re()
    }

    /// The imaginary plane, row-major.
    #[inline]
    pub fn im(&self) -> &[f64] {
        self.buf.im()
    }

    /// Immutable split view of the row-major entries (used by the
    /// [`crate::kernels`] read-only paths).
    #[inline]
    pub fn split(&self) -> Split<'_> {
        self.buf.split()
    }

    /// Mutable split view of the row-major entries (used by the
    /// [`crate::kernels`] in-place paths).
    #[inline]
    pub fn split_mut(&mut self) -> SplitMut<'_> {
        self.buf.split_mut()
    }

    /// Returns the entries as an interleaved (AoS) row-major vector — the
    /// boundary conversion the [`crate::naive`] oracles use.
    pub fn to_complex_vec(&self) -> Vec<Complex> {
        self.buf.to_complex_vec()
    }

    /// Multiplies every entry by a real scalar in place.
    pub fn scale_real_in_place(&mut self, s: f64) {
        self.buf.scale_real_in_place(s);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j).conj())
    }

    /// Conjugate transpose (adjoint, dagger).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self.at(j, i).conj())
    }

    /// Scales every entry by `c`.
    pub fn scale(&self, c: Complex) -> CMatrix {
        let mut buf = self.buf.clone();
        buf.scale_in_place(c);
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            buf,
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self.at(i, i)).sum()
    }

    /// Matrix product `self * rhs`, cache-blocked over split re/im planes.
    ///
    /// The product is tiled over the inner (`k`) and column (`j`) dimensions
    /// so that the working set of each tile — a strip of the output row, two
    /// strips of `rhs` rows, in both planes — stays resident in L1/L2 while
    /// the `k` tile is consumed, and the `k` loop is unrolled two-wide so each
    /// pass over the output strip retires two rank-1 updates (halving the
    /// output-row load/store traffic, the bottleneck of the naive triple
    /// loop). The innermost loop is a pair of contiguous `f64`
    /// multiply-add strips with no complex temporaries, which the compiler
    /// vectorises without bounds checks. All-zero `k` pairs of `self` skip
    /// their pass (operators here are often sparse embeddings).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        const KC: usize = 64;
        const JC: usize = 512;
        let (m, kd, n) = (self.rows, self.cols, rhs.cols);
        let mut out = CMatrix::zeros(m, n);
        let o = out.buf.split_mut();
        let (are, aim) = (self.buf.re(), self.buf.im());
        let (bre, bim) = (rhs.buf.re(), rhs.buf.im());
        for jc in (0..n).step_by(JC) {
            let jw = JC.min(n - jc);
            for kc in (0..kd).step_by(KC) {
                let kw = KC.min(kd - kc);
                for i in 0..m {
                    let out_re = &mut o.re[i * n + jc..i * n + jc + jw];
                    let out_im = &mut o.im[i * n + jc..i * n + jc + jw];
                    let arow_re = &are[i * kd + kc..i * kd + kc + kw];
                    let arow_im = &aim[i * kd + kc..i * kd + kc + kw];
                    let mut dk = 0;
                    while dk + 1 < kw {
                        let (a0r, a0i) = (arow_re[dk], arow_im[dk]);
                        let (a1r, a1i) = (arow_re[dk + 1], arow_im[dk + 1]);
                        let (z0, z1) = (a0r == 0.0 && a0i == 0.0, a1r == 0.0 && a1i == 0.0);
                        let k = kc + dk;
                        if !z0 && !z1 {
                            let r0r = &bre[k * n + jc..k * n + jc + jw];
                            let r0i = &bim[k * n + jc..k * n + jc + jw];
                            let r1r = &bre[(k + 1) * n + jc..(k + 1) * n + jc + jw];
                            let r1i = &bim[(k + 1) * n + jc..(k + 1) * n + jc + jw];
                            for t in 0..jw {
                                out_re[t] +=
                                    a0r * r0r[t] - a0i * r0i[t] + a1r * r1r[t] - a1i * r1i[t];
                                out_im[t] +=
                                    a0r * r0i[t] + a0i * r0r[t] + a1r * r1i[t] + a1i * r1r[t];
                            }
                        } else if !z0 {
                            axpy_strip(out_re, out_im, a0r, a0i, bre, bim, k * n + jc, jw);
                        } else if !z1 {
                            axpy_strip(out_re, out_im, a1r, a1i, bre, bim, (k + 1) * n + jc, jw);
                        }
                        dk += 2;
                    }
                    if dk < kw {
                        let (ar, ai) = (arow_re[dk], arow_im[dk]);
                        if ar != 0.0 || ai != 0.0 {
                            let k = kc + dk;
                            axpy_strip(out_re, out_im, ar, ai, bre, bim, k * n + jc, jw);
                        }
                    }
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector, returning `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn apply(&self, v: &CVector) -> CVector {
        assert_eq!(self.cols, v.dim(), "apply dimension mismatch");
        if self.rows == 2 && self.cols == 2 {
            // Unrolled qubit path: boundary effects of the sampled protocol
            // rounds apply 2×2 operators to dimension-2 fingerprints.
            let (m00, m01, m10, m11) = (self.at(0, 0), self.at(0, 1), self.at(1, 0), self.at(1, 1));
            let (v0, v1) = (v.at(0), v.at(1));
            let (o0, o1) = (m00 * v0 + m01 * v1, m10 * v0 + m11 * v1);
            return CVector::from_buffer(SplitBuffer::from_raw(
                2,
                vec![o0.re, o1.re, o0.im, o1.im],
            ));
        }
        let (vr, vi) = (v.re(), v.im());
        let (are, aim) = (self.buf.re(), self.buf.im());
        let n = self.cols;
        let mut out = CVector::zeros(self.rows);
        {
            let o = out.split_mut();
            for i in 0..self.rows {
                let row_re = &are[i * n..(i + 1) * n];
                let row_im = &aim[i * n..(i + 1) * n];
                let mut acc_re = 0.0;
                let mut acc_im = 0.0;
                for j in 0..n {
                    acc_re += row_re[j] * vr[j] - row_im[j] * vi[j];
                    acc_im += row_re[j] * vi[j] + row_im[j] * vr[j];
                }
                o.re[i] = acc_re;
                o.im[i] = acc_im;
            }
        }
        out
    }

    /// Quadratic form `⟨v| self |v⟩`, computed without materialising
    /// `self · v` — the per-round boundary measurement of the sampled
    /// protocol rounds, which previously paid one `CVector` allocation per
    /// round through `v.inner(&m.apply(v))`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square of dimension `v.dim()`.
    pub fn quadratic_form(&self, v: &CVector) -> Complex {
        assert!(
            self.rows == self.cols && self.cols == v.dim(),
            "quadratic form dimension mismatch"
        );
        let (vr, vi) = (v.re(), v.im());
        let (are, aim) = (self.buf.re(), self.buf.im());
        let n = self.cols;
        if n == 2 {
            // Unrolled qubit path: dimension-2 fingerprint registers.
            let (m00, m01, m10, m11) = (self.at(0, 0), self.at(0, 1), self.at(1, 0), self.at(1, 1));
            let (v0, v1) = (v.at(0), v.at(1));
            let (o0, o1) = (m00 * v0 + m01 * v1, m10 * v0 + m11 * v1);
            return v0.conj() * o0 + v1.conj() * o1;
        }
        let mut acc_re = 0.0;
        let mut acc_im = 0.0;
        for i in 0..n {
            let row_re = &are[i * n..(i + 1) * n];
            let row_im = &aim[i * n..(i + 1) * n];
            // Row dot under the fixed four-partial reduction contract of
            // `simd::row_dot`, identical bits on the scalar and AVX2 paths.
            let (mv_re, mv_im) = crate::simd::row_dot(row_re, row_im, vr, vi);
            // conj(v_i) · (Mv)_i
            acc_re += vr[i] * mv_re + vi[i] * mv_im;
            acc_im += vr[i] * mv_im - vi[i] * mv_re;
        }
        Complex::new(acc_re, acc_im)
    }

    /// Overwrites `self` with the entries of `other`, reusing the existing
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &CMatrix) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "copy_from shape mismatch"
        );
        let dst = self.buf.split_mut();
        let src = other.buf.split();
        dst.re.copy_from_slice(src.re);
        dst.im.copy_from_slice(src.im);
    }

    /// In-place affine combination `self ← a·self + b·other` with real
    /// coefficients — the allocation-free form of the symmetrisation channel
    /// mix `ρ → ½ρ + ½SρS†` used by the batched samplers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mix_in_place(&mut self, a: f64, b: f64, other: &CMatrix) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "mix_in_place shape mismatch"
        );
        let dst = self.buf.split_mut();
        let src = other.buf.split();
        for (d, &s) in dst.re.iter_mut().zip(src.re.iter()) {
            *d = a * *d + b * s;
        }
        for (d, &s) in dst.im.iter_mut().zip(src.im.iter()) {
            *d = a * *d + b * s;
        }
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = CMatrix::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self.at(i1, j1);
                if a.norm_sqr() == 0.0 {
                    continue;
                }
                for i2 in 0..rhs.rows {
                    for j2 in 0..rhs.cols {
                        out.set(i1 * rhs.rows + i2, j1 * rhs.cols + j2, a * rhs.at(i2, j2));
                    }
                }
            }
        }
        out
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.buf.norm_sqr().sqrt()
    }

    /// Returns `true` when `self` is Hermitian to within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self.at(i, j).approx_eq(self.at(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when `self` is unitary to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Returns `true` when every entry of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .buf
                .iter()
                .zip(other.buf.iter())
                .all(|(a, b)| a.approx_eq(b, tol))
    }

    /// Returns the `k`-fold Kronecker power of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn kron_pow(&self, k: usize) -> CMatrix {
        assert!(k >= 1, "kron_pow requires k >= 1");
        let mut out = self.clone();
        for _ in 1..k {
            out = out.kron(self);
        }
        out
    }

    /// Extracts a column as a vector.
    pub fn column(&self, j: usize) -> CVector {
        CVector::from_fn(self.rows, |i| self.at(i, j))
    }
}

/// `out += (ar + i·ai) · b[off..off+len]` over split planes — the contiguous
/// vectorisable axpy strip of the blocked matmul.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy_strip(
    out_re: &mut [f64],
    out_im: &mut [f64],
    ar: f64,
    ai: f64,
    bre: &[f64],
    bim: &[f64],
    off: usize,
    len: usize,
) {
    let br = &bre[off..off + len];
    let bi = &bim[off..off + len];
    for t in 0..len {
        out_re[t] += ar * br[t] - ai * bi[t];
        out_im[t] += ar * bi[t] + ai * br[t];
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "matrix addition row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix addition column mismatch");
        CMatrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j) + rhs.at(i, j))
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "matrix subtraction row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix subtraction column mismatch");
        CMatrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j) - rhs.at(i, j))
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| -self.at(i, j))
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{} ", self.at(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ZERO, Complex::ONE],
            vec![Complex::ONE, Complex::ZERO],
        ])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ZERO, -Complex::I],
            vec![Complex::I, Complex::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex::ONE, Complex::ZERO],
            vec![Complex::ZERO, -Complex::ONE],
        ])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        assert!(x.matmul(&id).approx_eq(&x, 1e-12));
        assert!(id.matmul(&x).approx_eq(&x, 1e-12));
    }

    #[test]
    fn pauli_algebra() {
        // X * Y = iZ
        let lhs = pauli_x().matmul(&pauli_y());
        let rhs = pauli_z().scale(Complex::I);
        assert!(lhs.approx_eq(&rhs, 1e-12));
        // X^2 = I
        assert!(pauli_x()
            .matmul(&pauli_x())
            .approx_eq(&CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn paulis_are_hermitian_and_unitary() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_hermitian(1e-12));
            assert!(p.is_unitary(1e-12));
        }
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex::new(i as f64, j as f64));
        let b = CMatrix::from_fn(3, 3, |i, j| Complex::new((i + j) as f64, (i * j) as f64));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trace_is_cyclic() {
        let a = CMatrix::from_fn(3, 3, |i, j| Complex::new(i as f64 - j as f64, 1.0));
        let b = CMatrix::from_fn(3, 3, |i, j| Complex::new((i * j) as f64, -(i as f64)));
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!(t1.approx_eq(t2, 1e-9));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = CMatrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_of_unitaries_is_unitary() {
        let u = pauli_x().kron(&pauli_y()).kron(&pauli_z());
        assert!(u.is_unitary(1e-12));
        assert_eq!(u.rows(), 8);
    }

    #[test]
    fn outer_product_and_projector() {
        let v = CVector::from_reals(&[1.0, 1.0]).normalized();
        let p = CMatrix::projector(&v);
        assert!(p.is_hermitian(1e-12));
        // Projector is idempotent.
        assert!(p.matmul(&p).approx_eq(&p, 1e-12));
        assert!((p.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outer_product_with_complex_entries() {
        let v = CVector::new(vec![Complex::new(1.0, 2.0), Complex::new(0.0, -1.0)]);
        let w = CVector::new(vec![Complex::new(0.5, -0.5), Complex::new(2.0, 1.0)]);
        let m = CMatrix::outer(&v, &w);
        for i in 0..2 {
            for j in 0..2 {
                assert!(m.at(i, j).approx_eq(v.at(i) * w.at(j).conj(), 1e-12));
            }
        }
    }

    #[test]
    fn apply_matches_matmul_on_column() {
        let m = CMatrix::from_fn(3, 3, |i, j| Complex::new((i + 2 * j) as f64, j as f64));
        let v = CVector::from_reals(&[1.0, -1.0, 0.5]);
        let applied = m.apply(&v);
        for i in 0..3 {
            let expected: Complex = (0..3).map(|j| m.at(i, j) * v.at(j)).sum();
            assert!(applied.at(i).approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn kron_pow() {
        let x = pauli_x();
        let x3 = x.kron_pow(3);
        assert_eq!(x3.rows(), 8);
        // X⊗X⊗X maps |000> to |111>.
        let v = CVector::basis(8, 0);
        let w = x3.apply(&v);
        assert!(w.approx_eq(&CVector::basis(8, 7), 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = CMatrix::zeros(2, 3).matmul(&CMatrix::zeros(2, 3));
    }

    #[test]
    fn diag_and_column() {
        let d = CMatrix::diag_reals(&[1.0, 2.0, 3.0]);
        assert!((d.trace().re - 6.0).abs() < 1e-12);
        let c = d.column(1);
        assert!(c.approx_eq(&CVector::from_reals(&[0.0, 2.0, 0.0]), 1e-12));
    }

    #[test]
    fn split_planes_are_row_major() {
        let m = CMatrix::from_fn(2, 2, |i, j| Complex::new((2 * i + j) as f64, -1.0));
        assert_eq!(m.re(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.im(), &[-1.0; 4]);
    }
}
