//! Dense complex vectors on split (SoA) storage.

use crate::complex::Complex;
use crate::linalg::split::{Split, SplitBuffer, SplitMut};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense complex column vector.
///
/// Used to represent (unnormalised) pure-state amplitudes and intermediate
/// results of linear-algebra routines. Storage is split re/im planes
/// ([`SplitBuffer`]), so entries are read with [`CVector::at`] and written
/// with [`CVector::set`] (the planes cannot hand out `&Complex` references).
///
/// # Examples
///
/// ```
/// use qsim::{Complex, CVector};
///
/// let v = CVector::from_reals(&[1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(v.dim(), 4);
/// assert!((v.norm() - 2f64.sqrt()).abs() < 1e-12);
/// assert_eq!(v.at(3), Complex::ONE);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CVector {
    buf: SplitBuffer,
}

impl CVector {
    /// Creates a vector from a list of complex entries.
    pub fn new(data: Vec<Complex>) -> Self {
        CVector {
            buf: SplitBuffer::from_complex(&data),
        }
    }

    /// Creates a vector directly from its split backing.
    pub fn from_buffer(buf: SplitBuffer) -> Self {
        CVector { buf }
    }

    /// Creates the zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        CVector {
            buf: SplitBuffer::zeros(dim),
        }
    }

    /// Creates a computational-basis vector `|index>` of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        let mut v = CVector::zeros(dim);
        v.buf.set(index, Complex::ONE);
        v
    }

    /// Creates a vector from real entries.
    pub fn from_reals(entries: &[f64]) -> Self {
        CVector {
            buf: SplitBuffer::from_fn(entries.len(), |i| Complex::real(entries[i])),
        }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn(dim: usize, f: impl FnMut(usize) -> Complex) -> Self {
        CVector {
            buf: SplitBuffer::from_fn(dim, f),
        }
    }

    /// Returns the dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.buf.len()
    }

    /// Reads entry `i` as a value.
    #[inline]
    pub fn at(&self, i: usize) -> Complex {
        self.buf.get(i)
    }

    /// Writes entry `i`.
    #[inline]
    pub fn set(&mut self, i: usize, z: Complex) {
        self.buf.set(i, z);
    }

    /// Adds `z` to entry `i`.
    #[inline]
    pub fn add_at(&mut self, i: usize, z: Complex) {
        self.buf.add(i, z);
    }

    /// The real plane.
    #[inline]
    pub fn re(&self) -> &[f64] {
        self.buf.re()
    }

    /// The imaginary plane.
    #[inline]
    pub fn im(&self) -> &[f64] {
        self.buf.im()
    }

    /// Immutable split view of the entries (used by the [`crate::kernels`]
    /// read-only paths).
    #[inline]
    pub fn split(&self) -> Split<'_> {
        self.buf.split()
    }

    /// Mutable split view of the entries (used by the [`crate::kernels`]
    /// in-place paths).
    #[inline]
    pub fn split_mut(&mut self) -> SplitMut<'_> {
        self.buf.split_mut()
    }

    /// Iterates the entries as values.
    pub fn iter(&self) -> impl Iterator<Item = Complex> + '_ {
        self.buf.iter()
    }

    /// Consumes the vector and returns the entries interleaved.
    pub fn into_vec(self) -> Vec<Complex> {
        self.buf.to_complex_vec()
    }

    /// Returns the entries as an interleaved (AoS) vector — the boundary
    /// conversion the [`crate::naive`] oracles use.
    pub fn to_complex_vec(&self) -> Vec<Complex> {
        self.buf.to_complex_vec()
    }

    /// Returns the Hermitian inner product `<self|other>` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn inner(&self, other: &CVector) -> Complex {
        assert_eq!(self.dim(), other.dim(), "inner product dimension mismatch");
        let a = self.buf.split();
        let b = other.buf.split();
        if a.re.len() == 2 {
            // Unrolled qubit path: this is the per-node overlap of every
            // sampled protocol round (dimension-2 fingerprint registers).
            let (a0, a1) = (a.get(0), a.get(1));
            let (b0, b1) = (b.get(0), b.get(1));
            return Complex::new(
                a0.re * b0.re + a0.im * b0.im + a1.re * b1.re + a1.im * b1.im,
                a0.re * b0.im - a0.im * b0.re + a1.re * b1.im - a1.im * b1.re,
            );
        }
        let mut acc_re = 0.0;
        let mut acc_im = 0.0;
        // Zipped so the four plane streams carry no per-element bounds
        // checks — this runs per node in the sampled protocol rounds.
        for ((&ar, &ai), (&br, &bi)) in
            a.re.iter()
                .zip(a.im.iter())
                .zip(b.re.iter().zip(b.im.iter()))
        {
            // conj(a) * b = (ar - i·ai)(br + i·bi)
            acc_re += ar * br + ai * bi;
            acc_im += ar * bi - ai * br;
        }
        Complex::new(acc_re, acc_im)
    }

    /// Returns the squared Euclidean norm.
    #[inline]
    pub fn norm_sqr(&self) -> f64 {
        self.buf.norm_sqr()
    }

    /// Returns the Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns a normalised copy of this vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector has (numerically) zero norm.
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalise a zero vector");
        self.scale(Complex::real(1.0 / n))
    }

    /// Returns `self` multiplied by the scalar `c`.
    pub fn scale(&self, c: Complex) -> CVector {
        let mut buf = self.buf.clone();
        buf.scale_in_place(c);
        CVector { buf }
    }

    /// Multiplies every entry by a real scalar in place.
    pub fn scale_real_in_place(&mut self, s: f64) {
        self.buf.scale_real_in_place(s);
    }

    /// Returns the entrywise complex conjugate.
    pub fn conj(&self) -> CVector {
        CVector::from_fn(self.dim(), |i| self.at(i).conj())
    }

    /// Returns the Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CVector) -> CVector {
        let (ar, ai) = (self.buf.re(), self.buf.im());
        let (br, bi) = (other.buf.re(), other.buf.im());
        let n = br.len();
        let mut out = SplitBuffer::zeros(ar.len() * n);
        {
            let o = out.split_mut();
            for (k, (&xr, &xi)) in ar.iter().zip(ai.iter()).enumerate() {
                let out_re = &mut o.re[k * n..(k + 1) * n];
                let out_im = &mut o.im[k * n..(k + 1) * n];
                for t in 0..n {
                    out_re[t] = xr * br[t] - xi * bi[t];
                    out_im[t] = xr * bi[t] + xi * br[t];
                }
            }
        }
        CVector { buf: out }
    }

    /// Adds `c * other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled(&mut self, other: &CVector, c: Complex) {
        assert_eq!(self.dim(), other.dim(), "axpy dimension mismatch");
        let (br, bi) = (other.buf.re(), other.buf.im());
        let s = self.buf.split_mut();
        for k in 0..br.len() {
            s.re[k] += br[k] * c.re - bi[k] * c.im;
            s.im[k] += br[k] * c.im + bi[k] * c.re;
        }
    }

    /// Returns `true` when every entry is within `tol` of the corresponding
    /// entry of `other`.
    pub fn approx_eq(&self, other: &CVector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.approx_eq(b, tol))
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.dim(), rhs.dim(), "vector addition dimension mismatch");
        CVector::from_fn(self.dim(), |i| self.at(i) + rhs.at(i))
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "vector subtraction dimension mismatch"
        );
        CVector::from_fn(self.dim(), |i| self.at(i) - rhs.at(i))
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector::from_fn(self.dim(), |i| -self.at(i))
    }
}

impl Mul<Complex> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: Complex) -> CVector {
        self.scale(rhs)
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let e_i = CVector::basis(4, i);
                let e_j = CVector::basis(4, j);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(e_i.inner(&e_j).approx_eq(Complex::real(expected), 1e-12));
            }
        }
    }

    #[test]
    fn inner_product_is_conjugate_linear_in_first_argument() {
        let v = CVector::new(vec![Complex::new(1.0, 2.0), Complex::new(0.0, -1.0)]);
        let w = CVector::new(vec![Complex::new(0.5, 0.5), Complex::new(2.0, 0.0)]);
        let c = Complex::new(0.0, 3.0);
        let lhs = v.scale(c).inner(&w);
        let rhs = c.conj() * v.inner(&w);
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn norm_matches_inner_product() {
        let v = CVector::new(vec![Complex::new(1.0, 1.0), Complex::new(2.0, -1.0)]);
        assert!((v.norm_sqr() - v.inner(&v).re).abs() < 1e-12);
        assert!(v.inner(&v).im.abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = CVector::from_reals(&[3.0, 4.0]);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(n.approx_eq(&CVector::from_reals(&[0.6, 0.8]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalizing_zero_vector_panics() {
        let _ = CVector::zeros(3).normalized();
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[3.0, 4.0, 5.0]);
        let k = a.kron(&b);
        assert_eq!(k.dim(), 6);
        assert!(k.approx_eq(
            &CVector::from_reals(&[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]),
            1e-12
        ));
    }

    #[test]
    fn kron_norm_is_product_of_norms() {
        let a = CVector::new(vec![Complex::new(1.0, 1.0), Complex::new(0.5, -0.5)]);
        let b = CVector::from_reals(&[2.0, 1.0, 2.0]);
        assert!((a.kron(&b).norm() - a.norm() * b.norm()).abs() < 1e-12);
    }

    #[test]
    fn kron_with_complex_entries_matches_scalar_products() {
        let a = CVector::new(vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)]);
        let b = CVector::new(vec![Complex::new(0.0, 1.0), Complex::new(2.0, -1.0)]);
        let k = a.kron(&b);
        for i in 0..2 {
            for j in 0..2 {
                assert!(k.at(i * 2 + j).approx_eq(a.at(i) * b.at(j), 1e-12));
            }
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[3.0, -1.0]);
        assert!((&a + &b).approx_eq(&CVector::from_reals(&[4.0, 1.0]), 1e-12));
        assert!((&a - &b).approx_eq(&CVector::from_reals(&[-2.0, 3.0]), 1e-12));
        assert!((-&a).approx_eq(&CVector::from_reals(&[-1.0, -2.0]), 1e-12));
        let mut c = a.clone();
        c.add_scaled(&b, Complex::real(2.0));
        assert!(c.approx_eq(&CVector::from_reals(&[7.0, 0.0]), 1e-12));
    }

    #[test]
    fn split_planes_expose_soa_layout() {
        let v = CVector::new(vec![Complex::new(1.0, -1.0), Complex::new(2.0, 3.0)]);
        assert_eq!(v.re(), &[1.0, 2.0]);
        assert_eq!(v.im(), &[-1.0, 3.0]);
        assert_eq!(v.to_complex_vec()[1], Complex::new(2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn inner_dimension_mismatch_panics() {
        let _ = CVector::zeros(2).inner(&CVector::zeros(3));
    }
}
