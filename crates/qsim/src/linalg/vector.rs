//! Dense complex vectors.

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex column vector.
///
/// Used to represent (unnormalised) pure-state amplitudes and intermediate
/// results of linear-algebra routines.
///
/// # Examples
///
/// ```
/// use qsim::{Complex, CVector};
///
/// let v = CVector::from_reals(&[1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(v.dim(), 4);
/// assert!((v.norm() - 2f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CVector {
    data: Vec<Complex>,
}

impl CVector {
    /// Creates a vector from a slice of complex entries.
    pub fn new(data: Vec<Complex>) -> Self {
        CVector { data }
    }

    /// Creates the zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        CVector {
            data: vec![Complex::ZERO; dim],
        }
    }

    /// Creates a computational-basis vector `|index>` of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        let mut v = CVector::zeros(dim);
        v.data[index] = Complex::ONE;
        v
    }

    /// Creates a vector from real entries.
    pub fn from_reals(entries: &[f64]) -> Self {
        CVector {
            data: entries.iter().map(|&x| Complex::real(x)).collect(),
        }
    }

    /// Creates a vector by evaluating `f` at each index.
    pub fn from_fn(dim: usize, f: impl FnMut(usize) -> Complex) -> Self {
        CVector {
            data: (0..dim).map(f).collect(),
        }
    }

    /// Returns the dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Returns the underlying entries as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Returns the underlying entries as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Consumes the vector and returns the entries.
    pub fn into_vec(self) -> Vec<Complex> {
        self.data
    }

    /// Returns the Hermitian inner product `<self|other>` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &CVector) -> Complex {
        assert_eq!(self.dim(), other.dim(), "inner product dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Returns the squared Euclidean norm.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns the Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns a normalised copy of this vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector has (numerically) zero norm.
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalise a zero vector");
        self.scale(Complex::real(1.0 / n))
    }

    /// Returns `self` multiplied by the scalar `c`.
    pub fn scale(&self, c: Complex) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * c).collect(),
        }
    }

    /// Returns the entrywise complex conjugate.
    pub fn conj(&self) -> CVector {
        CVector {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Returns the Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CVector) -> CVector {
        let mut data = Vec::with_capacity(self.dim() * other.dim());
        for &a in &self.data {
            for &b in &other.data {
                data.push(a * b);
            }
        }
        CVector { data }
    }

    /// Adds `c * other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled(&mut self, other: &CVector, c: Complex) {
        assert_eq!(self.dim(), other.dim(), "axpy dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b * c;
        }
    }

    /// Returns `true` when every entry is within `tol` of the corresponding
    /// entry of `other`.
    pub fn approx_eq(&self, other: &CVector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl Index<usize> for CVector {
    type Output = Complex;
    #[inline]
    fn index(&self, i: usize) -> &Complex {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Complex {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.dim(), rhs.dim(), "vector addition dimension mismatch");
        CVector::from_fn(self.dim(), |i| self[i] + rhs[i])
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "vector subtraction dimension mismatch"
        );
        CVector::from_fn(self.dim(), |i| self[i] - rhs[i])
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector::from_fn(self.dim(), |i| -self[i])
    }
}

impl Mul<Complex> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: Complex) -> CVector {
        self.scale(rhs)
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let e_i = CVector::basis(4, i);
                let e_j = CVector::basis(4, j);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(e_i.inner(&e_j).approx_eq(Complex::real(expected), 1e-12));
            }
        }
    }

    #[test]
    fn inner_product_is_conjugate_linear_in_first_argument() {
        let v = CVector::new(vec![Complex::new(1.0, 2.0), Complex::new(0.0, -1.0)]);
        let w = CVector::new(vec![Complex::new(0.5, 0.5), Complex::new(2.0, 0.0)]);
        let c = Complex::new(0.0, 3.0);
        let lhs = v.scale(c).inner(&w);
        let rhs = c.conj() * v.inner(&w);
        assert!(lhs.approx_eq(rhs, 1e-12));
    }

    #[test]
    fn norm_matches_inner_product() {
        let v = CVector::new(vec![Complex::new(1.0, 1.0), Complex::new(2.0, -1.0)]);
        assert!((v.norm_sqr() - v.inner(&v).re).abs() < 1e-12);
        assert!(v.inner(&v).im.abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = CVector::from_reals(&[3.0, 4.0]);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(n.approx_eq(&CVector::from_reals(&[0.6, 0.8]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalizing_zero_vector_panics() {
        let _ = CVector::zeros(3).normalized();
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[3.0, 4.0, 5.0]);
        let k = a.kron(&b);
        assert_eq!(k.dim(), 6);
        assert!(k.approx_eq(
            &CVector::from_reals(&[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]),
            1e-12
        ));
    }

    #[test]
    fn kron_norm_is_product_of_norms() {
        let a = CVector::new(vec![Complex::new(1.0, 1.0), Complex::new(0.5, -0.5)]);
        let b = CVector::from_reals(&[2.0, 1.0, 2.0]);
        assert!((a.kron(&b).norm() - a.norm() * b.norm()).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = CVector::from_reals(&[1.0, 2.0]);
        let b = CVector::from_reals(&[3.0, -1.0]);
        assert!((&a + &b).approx_eq(&CVector::from_reals(&[4.0, 1.0]), 1e-12));
        assert!((&a - &b).approx_eq(&CVector::from_reals(&[-2.0, 3.0]), 1e-12));
        assert!((-&a).approx_eq(&CVector::from_reals(&[-1.0, -2.0]), 1e-12));
        let mut c = a.clone();
        c.add_scaled(&b, Complex::real(2.0));
        assert!(c.approx_eq(&CVector::from_reals(&[7.0, 0.0]), 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn inner_dimension_mismatch_panics() {
        let _ = CVector::zeros(2).inner(&CVector::zeros(3));
    }
}
