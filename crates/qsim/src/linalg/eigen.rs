//! Hermitian eigendecomposition and matrix functions.
//!
//! The simulator needs spectral machinery in a few places:
//!
//! * the trace distance `D(ρ, σ) = ||ρ − σ||₁ / 2` (eigenvalues of a Hermitian
//!   difference),
//! * the fidelity `F(ρ, σ) = tr √(√ρ σ √ρ)` (positive-semidefinite square
//!   roots),
//! * the *optimal prover*: the maximum acceptance probability of a dQMA
//!   verification procedure over all proofs equals the largest eigenvalue of
//!   its acceptance operator.
//!
//! All of these reduce to the eigendecomposition of a complex Hermitian
//! matrix, computed here with the cyclic Jacobi method. The matrices involved
//! are small (≤ a few hundred dimensions), where Jacobi is accurate and has
//! no external dependencies.

use crate::complex::Complex;
use crate::linalg::matrix::CMatrix;
use crate::linalg::vector::CVector;

/// Result of a Hermitian eigendecomposition: `A = V · diag(λ) · V†`.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: CMatrix,
}

impl EigenDecomposition {
    /// Returns the eigenvector associated with the `k`-th smallest eigenvalue.
    pub fn eigenvector(&self, k: usize) -> CVector {
        self.eigenvectors.column(k)
    }

    /// Returns the largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        *self
            .eigenvalues
            .last()
            .expect("eigendecomposition of an empty matrix")
    }

    /// Returns the eigenvector of the largest eigenvalue.
    pub fn max_eigenvector(&self) -> CVector {
        self.eigenvector(self.eigenvalues.len() - 1)
    }

    /// Reconstructs the original matrix `V diag(λ) V†`.
    pub fn reconstruct(&self) -> CMatrix {
        self.apply_function(|x| x)
    }

    /// Returns `V diag(f(λ)) V†`.
    pub fn apply_function(&self, f: impl Fn(f64) -> f64) -> CMatrix {
        let n = self.eigenvalues.len();
        let v = &self.eigenvectors;
        let mut out = CMatrix::zeros(n, n);
        for k in 0..n {
            let lam = f(self.eigenvalues[k]);
            if lam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = v.at(i, k).scale(lam);
                for j in 0..n {
                    out.add_at(i, j, vik * v.at(j, k).conj());
                }
            }
        }
        out
    }
}

/// Computes the eigendecomposition of a Hermitian matrix with the cyclic
/// Jacobi method.
///
/// # Panics
///
/// Panics if `a` is not square or not (numerically) Hermitian.
pub fn eigh(a: &CMatrix) -> EigenDecomposition {
    assert!(a.is_square(), "eigh requires a square matrix");
    assert!(
        a.is_hermitian(1e-8 * (1.0 + a.frobenius_norm())),
        "eigh requires a Hermitian matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = CMatrix::identity(n);

    let tol = 1e-14 * (1.0 + a.frobenius_norm());
    let max_sweeps = 100;

    for _ in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.at(p, q);
                let r = apq.abs();
                if r < tol / (n as f64) {
                    continue;
                }
                let app = m.at(p, p).re;
                let aqq = m.at(q, q).re;
                // Phase that makes the (p, q) entry real: a_pq = r e^{i phi}.
                let phase = apq / Complex::real(r);
                // Real Jacobi rotation on the phase-adjusted 2x2 block.
                let tau = (aqq - app) / (2.0 * r);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Combined unitary G = diag(1, e^{-i phi}) * R acting on the
                // (p, q) plane, where R is the real Jacobi rotation. The phase
                // factor makes the (p, q) entry real before rotating it away.
                let g00 = Complex::real(c);
                let g01 = Complex::real(s);
                let g10 = -phase.conj() * s;
                let g11 = phase.conj() * c;

                // m <- G^dagger m G : update columns p and q ...
                for i in 0..n {
                    let mip = m.at(i, p);
                    let miq = m.at(i, q);
                    m.set(i, p, mip * g00 + miq * g10);
                    m.set(i, q, mip * g01 + miq * g11);
                }
                // ... then rows p and q.
                for j in 0..n {
                    let mpj = m.at(p, j);
                    let mqj = m.at(q, j);
                    m.set(p, j, g00.conj() * mpj + g10.conj() * mqj);
                    m.set(q, j, g01.conj() * mpj + g11.conj() * mqj);
                }
                // v <- v G
                for i in 0..n {
                    let vip = v.at(i, p);
                    let viq = v.at(i, q);
                    v.set(i, p, vip * g00 + viq * g10);
                    v.set(i, q, vip * g01 + viq * g11);
                }
            }
        }
    }

    // Collect eigenvalues (diagonal is real up to round-off) and sort.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.at(i, i).re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-finite eigenvalue"));

    let eigenvalues: Vec<f64> = pairs.iter().map(|&(lam, _)| lam).collect();
    let eigenvectors = CMatrix::from_fn(n, n, |i, k| v.at(i, pairs[k].1));

    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

fn off_diagonal_norm(m: &CMatrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m.at(i, j).norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// Largest eigenvalue of a Hermitian matrix.
pub fn max_eigenvalue(a: &CMatrix) -> f64 {
    eigh(a).max_eigenvalue()
}

/// Largest eigenvalue and a corresponding unit eigenvector of a Hermitian
/// matrix, via shifted power iteration with a dense-Jacobi fallback.
///
/// The cheating-prover optimiser (`dqma::adversary`) needs only the top
/// eigenpair of acceptance operators whose dimension grows like `d^{2k}`; a
/// full cyclic-Jacobi sweep there costs `O(n³)` per sweep, while each power
/// step is a single `O(n²)` mat-vec. The iteration runs on the shifted matrix
/// `B = A + s·I`, with `s` chosen from the Gershgorin lower bound of the
/// spectrum so every eigenvalue of `B` is nonnegative — making the
/// algebraically largest eigenvalue of `A` the dominant (largest-modulus)
/// eigenvalue of `B`. Convergence is declared when the residual satisfies
/// `‖A·v − λ·v‖ ≤ tol · (1 + ‖A‖_F)` with `λ = ⟨v, A·v⟩` the Rayleigh
/// quotient; if `max_iters` steps do not reach the target (e.g. a
/// near-degenerate top eigenspace), the routine falls back to [`eigh`], so
/// the returned pair always meets the residual bound Jacobi provides.
///
/// # Panics
///
/// Panics if `a` is not square or not (numerically) Hermitian.
pub fn top_eigenpair(a: &CMatrix, tol: f64, max_iters: usize) -> (f64, CVector) {
    assert!(a.is_square(), "top_eigenpair requires a square matrix");
    let scale = 1.0 + a.frobenius_norm();
    assert!(
        a.is_hermitian(1e-8 * scale),
        "top_eigenpair requires a Hermitian matrix"
    );
    let n = a.rows();
    if n == 1 {
        return (a.at(0, 0).re, CVector::basis(1, 0));
    }

    // Gershgorin lower bound on the spectrum.
    let mut lo = f64::INFINITY;
    for i in 0..n {
        let mut radius = 0.0;
        for j in 0..n {
            if i != j {
                radius += a.at(i, j).abs();
            }
        }
        lo = lo.min(a.at(i, i).re - radius);
    }
    let shift = (-lo).max(0.0);

    // Deterministic pseudo-random start vector: a fixed basis start could be
    // exactly orthogonal to the top eigenspace of structured operators.
    let mut state = 0x9e3779b97f4a7c15u64 ^ (n as u64);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    let mut v = CVector::from_fn(n, |_| Complex::new(next(), next())).normalized();

    for _ in 0..max_iters {
        let av = a.apply(&v);
        let lambda = v.inner(&av).re;
        let mut residual = av.clone();
        residual.add_scaled(&v, Complex::real(-lambda));
        if residual.norm() <= tol * scale {
            return (lambda, v);
        }
        // Next iterate: B·v = A·v + s·v.
        let mut bv = av;
        bv.add_scaled(&v, Complex::real(shift));
        let nrm = bv.norm();
        if nrm <= f64::MIN_POSITIVE {
            // v is (numerically) in the kernel of B; restart from Jacobi.
            break;
        }
        v = bv.scale(Complex::real(1.0 / nrm));
    }

    let e = eigh(a);
    (e.max_eigenvalue(), e.max_eigenvector())
}

/// Positive-semidefinite square root of a Hermitian PSD matrix.
///
/// Small negative eigenvalues caused by round-off are clamped to zero.
pub fn sqrt_psd(a: &CMatrix) -> CMatrix {
    eigh(a).apply_function(|x| if x > 0.0 { x.sqrt() } else { 0.0 })
}

/// The matrix absolute value `|A| = √(A† A)` of a Hermitian matrix,
/// computed as `V diag(|λ|) V†`.
pub fn abs_hermitian(a: &CMatrix) -> CMatrix {
    eigh(a).apply_function(f64::abs)
}

/// Trace norm (sum of singular values) of an arbitrary matrix,
/// computed as `tr √(A† A)`.
pub fn trace_norm(a: &CMatrix) -> f64 {
    if a.is_square() && a.is_hermitian(1e-10 * (1.0 + a.frobenius_norm())) {
        return eigh(a).eigenvalues.iter().map(|x| x.abs()).sum();
    }
    let gram = a.adjoint().matmul(a);
    eigh(&gram)
        .eigenvalues
        .iter()
        .map(|&x| if x > 0.0 { x.sqrt() } else { 0.0 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> CMatrix {
        // Small deterministic pseudo-random Hermitian matrix.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = CMatrix::from_fn(n, n, |_, _| Complex::new(next(), next()));
        &b + &b.adjoint()
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let d = CMatrix::diag_reals(&[3.0, -1.0, 2.0]);
        let e = eigh(&d);
        assert!((e.eigenvalues[0] - (-1.0)).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-10);
        assert!((e.eigenvalues[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_x_eigenvalues_are_plus_minus_one() {
        let x = CMatrix::from_rows(&[
            vec![Complex::ZERO, Complex::ONE],
            vec![Complex::ONE, Complex::ZERO],
        ]);
        let e = eigh(&x);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_y_eigendecomposition() {
        let y = CMatrix::from_rows(&[
            vec![Complex::ZERO, -Complex::I],
            vec![Complex::I, Complex::ZERO],
        ]);
        let e = eigh(&y);
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
        assert!(e.eigenvectors.is_unitary(1e-9));
        assert!(e.reconstruct().approx_eq(&y, 1e-9));
    }

    #[test]
    fn reconstruction_of_random_hermitian() {
        for seed in 1..5u64 {
            let a = random_hermitian(6, seed);
            let e = eigh(&a);
            assert!(
                e.eigenvectors.is_unitary(1e-8),
                "V not unitary (seed {seed})"
            );
            assert!(
                e.reconstruct().approx_eq(&a, 1e-7),
                "V D V† != A (seed {seed})"
            );
            // Eigenvalues are sorted.
            for w in e.eigenvalues.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let a = random_hermitian(5, 42);
        let e = eigh(&a);
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace().re).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_satisfy_eigen_equation() {
        let a = random_hermitian(4, 7);
        let e = eigh(&a);
        for k in 0..4 {
            let v = e.eigenvector(k);
            let av = a.apply(&v);
            let lv = v.scale(Complex::real(e.eigenvalues[k]));
            assert!(av.approx_eq(&lv, 1e-7));
        }
    }

    #[test]
    fn sqrt_psd_squares_back() {
        let b = random_hermitian(4, 3);
        let a = b.matmul(&b); // PSD
        let s = sqrt_psd(&a);
        assert!(s.matmul(&s).approx_eq(&a, 1e-7));
        assert!(s.is_hermitian(1e-8));
    }

    #[test]
    fn trace_norm_of_hermitian_matches_abs_eigenvalues() {
        let a = random_hermitian(5, 11);
        let e = eigh(&a);
        let expected: f64 = e.eigenvalues.iter().map(|x| x.abs()).sum();
        assert!((trace_norm(&a) - expected).abs() < 1e-7);
    }

    #[test]
    fn trace_norm_of_rank_one() {
        // ||  |v><w|  ||_1 = |v| * |w|
        let v = CVector::from_reals(&[1.0, 2.0, 2.0]);
        let w = CVector::from_reals(&[0.0, 3.0, 4.0]);
        let m = CMatrix::outer(&v, &w);
        assert!((trace_norm(&m) - v.norm() * w.norm()).abs() < 1e-7);
    }

    #[test]
    fn max_eigenvalue_of_projector_is_one() {
        let v = CVector::from_reals(&[1.0, 1.0, 0.0]).normalized();
        let p = CMatrix::projector(&v);
        assert!((max_eigenvalue(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_eigenpair_matches_jacobi_on_random_hermitian() {
        for seed in 1..8u64 {
            let a = random_hermitian(7, seed);
            let (lam, v) = top_eigenpair(&a, 1e-12, 10_000);
            let e = eigh(&a);
            assert!(
                (lam - e.max_eigenvalue()).abs() < 1e-9,
                "seed {seed}: {lam} vs {}",
                e.max_eigenvalue()
            );
            let av = a.apply(&v);
            let lv = v.scale(Complex::real(lam));
            assert!(av.approx_eq(&lv, 1e-8), "residual too large (seed {seed})");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn top_eigenpair_handles_negative_dominant_modulus() {
        // |λ_min| > λ_max: unshifted power iteration would converge to the
        // *bottom* of the spectrum; the Gershgorin shift must prevent that.
        let a = CMatrix::diag_reals(&[-5.0, 1.0, 2.0]);
        let (lam, v) = top_eigenpair(&a, 1e-12, 10_000);
        assert!((lam - 2.0).abs() < 1e-10);
        assert!((v.at(2).abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn top_eigenpair_degenerate_top_eigenspace() {
        // Projector onto a 2-dimensional subspace: top eigenvalue 1 with
        // multiplicity 2. Any unit vector in the eigenspace is acceptable.
        let u = CVector::from_reals(&[1.0, 0.0, 1.0, 0.0]).normalized();
        let w = CVector::from_reals(&[0.0, 1.0, 0.0, -1.0]).normalized();
        let p = &CMatrix::projector(&u) + &CMatrix::projector(&w);
        let (lam, v) = top_eigenpair(&p, 1e-11, 10_000);
        assert!((lam - 1.0).abs() < 1e-9);
        let pv = p.apply(&v);
        assert!(pv.approx_eq(&v, 1e-8));
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn top_eigenpair_rejects_non_hermitian() {
        let m = CMatrix::from_rows(&[
            vec![Complex::ZERO, Complex::ONE],
            vec![Complex::ZERO, Complex::ZERO],
        ]);
        let _ = top_eigenpair(&m, 1e-10, 10);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn eigh_rejects_non_hermitian() {
        let m = CMatrix::from_rows(&[
            vec![Complex::ZERO, Complex::ONE],
            vec![Complex::ZERO, Complex::ZERO],
        ]);
        let _ = eigh(&m);
    }
}
