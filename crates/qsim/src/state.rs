//! Pure states over composite quantum registers.
//!
//! A [`PureState`] is an amplitude vector together with a list of subsystem
//! dimensions. Subsystems are indexed from `0` and ordered most-significant
//! first, i.e. the flat computational-basis index of the assignment
//! `(i_0, i_1, ..., i_{k-1})` is `((i_0 · d_1 + i_1) · d_2 + i_2) ...`.
//!
//! The dQMA protocols in the companion crates speak about named registers
//! (`R_{j,0}`, index registers, direction registers, ...): those map directly
//! onto subsystems here, with arbitrary per-subsystem dimension (qudits), so
//! that a fingerprint register of `q` qubits is simply one subsystem of
//! dimension `2^q`.

use crate::complex::Complex;
use crate::kernels;
use crate::linalg::{CMatrix, CVector};
use crate::plan::{KernelPlan, PlanScratch};
use rand::Rng;

/// Returns the product of subsystem dimensions.
pub fn total_dim(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Converts a multi-index (one entry per subsystem) to a flat index.
///
/// # Panics
///
/// Panics if the multi-index length or any entry is out of range.
pub fn flat_index(dims: &[usize], multi: &[usize]) -> usize {
    assert_eq!(dims.len(), multi.len(), "multi-index length mismatch");
    let mut idx = 0;
    for (d, &m) in dims.iter().zip(multi.iter()) {
        assert!(m < *d, "index {m} out of range for dimension {d}");
        idx = idx * d + m;
    }
    idx
}

/// Converts a flat index to a multi-index (one entry per subsystem).
pub fn unflatten_index(dims: &[usize], mut flat: usize) -> Vec<usize> {
    let mut out = vec![0; dims.len()];
    for i in (0..dims.len()).rev() {
        out[i] = flat % dims[i];
        flat /= dims[i];
    }
    out
}

/// A normalised (or normalisable) pure state on a composite register.
///
/// # Examples
///
/// ```
/// use qsim::{PureState, gates};
///
/// // |+>|0> on two qubits.
/// let mut state = PureState::computational_basis(&[2, 2], &[0, 0]);
/// state.apply_unitary(&[0], &gates::hadamard());
/// state.apply_unitary(&[0, 1], &gates::cnot());
/// // Now a Bell state: measuring both qubits gives correlated outcomes.
/// let probs = state.outcome_distribution(&[0, 1]);
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PureState {
    dims: Vec<usize>,
    amps: CVector,
}

impl PureState {
    /// Creates a state from raw amplitudes over subsystems with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude vector length does not equal the product of dimensions,
    /// or if any dimension is zero.
    pub fn from_amplitudes(dims: &[usize], amps: CVector) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "subsystem dimensions must be positive"
        );
        assert_eq!(
            amps.dim(),
            total_dim(dims),
            "amplitude vector length must equal the product of subsystem dimensions"
        );
        PureState {
            dims: dims.to_vec(),
            amps,
        }
    }

    /// Creates the computational-basis state `|i_0 i_1 ... >`.
    pub fn computational_basis(dims: &[usize], indices: &[usize]) -> Self {
        let flat = flat_index(dims, indices);
        PureState {
            dims: dims.to_vec(),
            amps: CVector::basis(total_dim(dims), flat),
        }
    }

    /// Creates a single-register basis state `|index>` of dimension `dim`.
    pub fn single(dim: usize, index: usize) -> Self {
        PureState::computational_basis(&[dim], &[index])
    }

    /// Creates the uniform superposition over a single register of dimension `dim`.
    pub fn uniform(dim: usize) -> Self {
        let amp = Complex::real(1.0 / (dim as f64).sqrt());
        PureState {
            dims: vec![dim],
            amps: CVector::from_fn(dim, |_| amp),
        }
    }

    /// Subsystem dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of subsystems.
    pub fn num_subsystems(&self) -> usize {
        self.dims.len()
    }

    /// Total Hilbert-space dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.dim()
    }

    /// Raw amplitude vector.
    pub fn amplitudes(&self) -> &CVector {
        &self.amps
    }

    /// Squared norm of the amplitude vector.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.norm_sqr()
    }

    /// Returns a normalised copy of the state.
    ///
    /// # Panics
    ///
    /// Panics if the state has zero norm.
    pub fn normalized(&self) -> PureState {
        PureState {
            dims: self.dims.clone(),
            amps: self.amps.normalized(),
        }
    }

    /// Hermitian inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics if total dimensions differ.
    #[inline]
    pub fn inner(&self, other: &PureState) -> Complex {
        self.amps.inner(&other.amps)
    }

    /// Squared overlap `|<self|other>|²`.
    #[inline]
    pub fn overlap_sqr(&self, other: &PureState) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Tensor product `self ⊗ other`, concatenating subsystem lists.
    pub fn tensor(&self, other: &PureState) -> PureState {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(&other.dims);
        PureState {
            dims,
            amps: self.amps.kron(&other.amps),
        }
    }

    /// Tensor product of many states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn tensor_all(states: &[PureState]) -> PureState {
        assert!(!states.is_empty(), "tensor_all requires at least one state");
        let mut out = states[0].clone();
        for s in &states[1..] {
            out = out.tensor(s);
        }
        out
    }

    /// Views the same amplitudes with a different subsystem split.
    ///
    /// # Panics
    ///
    /// Panics if the product of `new_dims` differs from the current total dimension.
    pub fn regroup(&self, new_dims: &[usize]) -> PureState {
        assert_eq!(
            total_dim(new_dims),
            self.dim(),
            "regroup must preserve the total dimension"
        );
        PureState {
            dims: new_dims.to_vec(),
            amps: self.amps.clone(),
        }
    }

    /// Applies a unitary (or any matrix) to the listed target subsystems.
    ///
    /// `targets` lists subsystem indices in the order that matches the matrix's
    /// tensor-factor ordering; they must be distinct.
    ///
    /// The update runs through the strided in-place kernels of
    /// [`crate::kernels`]: no full-vector clone, no per-amplitude heap
    /// allocation, and `O(D)` fast paths for diagonal and permutation
    /// operators.
    ///
    /// # Panics
    ///
    /// Panics if targets are repeated, out of range, or if the matrix dimension
    /// does not match the product of the target dimensions.
    pub fn apply_unitary(&mut self, targets: &[usize], u: &CMatrix) {
        kernels::apply_to_state_vector(self.amps.split_mut(), &self.dims, targets, u);
    }

    /// Plan executor of [`PureState::apply_unitary`]: applies the operator
    /// compiled into `plan` ([`KernelPlan::for_operator`] or stronger) with
    /// zero per-call metadata derivation.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different register shape or
    /// carries no operator.
    pub fn apply_unitary_with(&mut self, plan: &KernelPlan, scratch: &mut PlanScratch) {
        assert_eq!(
            plan.dims(),
            self.dims.as_slice(),
            "plan register shape mismatch"
        );
        kernels::apply_to_state_vector_with(self.amps.split_mut(), plan, scratch);
    }

    /// Applies the embedded class-averaging projector `P` of the listed target
    /// subsystems in place, without renormalising: `|ψ> → P |ψ>` (or
    /// `(I−P)|ψ>` with `complement`). With the `S_k` digit-orbit classes of
    /// [`crate::permutation::symmetric_classes`] this is the post-measurement
    /// update of the SWAP/permutation test on a pure state, in `O(D)`.
    pub fn apply_class_projector(
        &mut self,
        targets: &[usize],
        classes: &kernels::BlockClasses,
        complement: bool,
    ) {
        kernels::project_classes_vector(
            self.amps.split_mut(),
            &self.dims,
            targets,
            classes,
            complement,
        );
    }

    /// Plan executor of [`PureState::apply_class_projector`] over a class
    /// plan ([`KernelPlan::for_classes`] / [`KernelPlan::for_symmetric`] /
    /// [`crate::plan::cached_symmetric`]).
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different register shape or
    /// carries no class tables.
    pub fn apply_class_projector_with(
        &mut self,
        plan: &KernelPlan,
        complement: bool,
        scratch: &mut PlanScratch,
    ) {
        assert_eq!(
            plan.dims(),
            self.dims.as_slice(),
            "plan register shape mismatch"
        );
        kernels::project_classes_vector_with(self.amps.split_mut(), plan, complement, scratch);
    }

    /// Multiplies every amplitude by a real scalar in place (e.g. `1/√p` after
    /// a selective measurement update).
    pub fn rescale(&mut self, factor: f64) {
        self.amps.scale_real_in_place(factor);
    }

    /// Returns a new state with the subsystems reordered so that subsystem `perm[k]`
    /// of the original becomes subsystem `k` of the result.
    ///
    /// Compile-then-execute shim over [`PureState::permute_subsystems_with`].
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_subsystems()`.
    pub fn permute_subsystems(&self, perm: &[usize]) -> PureState {
        let plan = KernelPlan::for_subsystem_permutation(&self.dims, perm);
        self.permute_subsystems_with(&plan)
    }

    /// Plan executor of [`PureState::permute_subsystems`]: the inverse
    /// permutation, permuted dimensions and per-subsystem index weights all
    /// come from a [`KernelPlan::for_subsystem_permutation`] plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different register shape.
    pub fn permute_subsystems_with(&self, plan: &KernelPlan) -> PureState {
        assert_eq!(
            plan.dims(),
            self.dims.as_slice(),
            "plan register shape mismatch"
        );
        let (weights, new_dims) = plan.permute_data();
        let new_dims = new_dims.to_vec();
        let n = self.dims.len();
        let total = self.dim();
        let mut new_amps = CVector::zeros(total);
        if n == 0 {
            new_amps.set(0, self.amps.at(0));
            return PureState {
                dims: new_dims,
                amps: new_amps,
            };
        }
        // Old subsystem p lands at new position inv[p]; walking the old flat
        // index with an odometer, each old digit p contributes with weight
        // new_strides[inv[p]] to the new flat index — no per-amplitude
        // multi-index materialisation (the weights are plan metadata).
        let mut counters = vec![0usize; n];
        let mut new_flat = 0usize;
        let (sre, sim) = (self.amps.re(), self.amps.im());
        let out = new_amps.split_mut();
        for flat in 0..total {
            out.re[new_flat] = sre[flat];
            out.im[new_flat] = sim[flat];
            let mut i = n;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                counters[i] += 1;
                new_flat += weights[i];
                if counters[i] < self.dims[i] {
                    break;
                }
                new_flat -= self.dims[i] * weights[i];
                counters[i] = 0;
            }
        }
        PureState {
            dims: new_dims,
            amps: new_amps,
        }
    }

    /// Probability of obtaining `outcome` when measuring `targets` in the
    /// computational basis (without collapsing the state).
    pub fn outcome_probability(&self, targets: &[usize], outcome: &[usize]) -> f64 {
        match kernels::outcome_offset(&self.dims, targets, outcome) {
            None => 0.0,
            Some((lay, offset)) => {
                let (re, im) = (self.amps.re(), self.amps.im());
                let mut p = 0.0;
                lay.for_each_base(|base| {
                    let i = base + offset;
                    p += re[i] * re[i] + im[i] * im[i];
                });
                p
            }
        }
    }

    /// Full outcome distribution over the listed target subsystems, indexed by the
    /// flat index of the target multi-outcome.
    pub fn outcome_distribution(&self, targets: &[usize]) -> Vec<f64> {
        let target_dims: Vec<usize> = targets.iter().map(|&t| self.dims[t]).collect();
        let mut probs = vec![0.0; total_dim(&target_dims)];
        if kernels::targets_distinct(targets) {
            let lay = kernels::layout(&self.dims, targets);
            let (re, im) = (self.amps.re(), self.amps.im());
            for (tb, &off) in lay.offsets.iter().enumerate() {
                let mut acc = 0.0;
                lay.for_each_base(|base| {
                    let i = base + off;
                    acc += re[i] * re[i] + im[i] * im[i];
                });
                probs[tb] = acc;
            }
        } else {
            // Repeated targets: keep the original scan semantics.
            for flat in 0..self.dim() {
                let multi = unflatten_index(&self.dims, flat);
                let outcome: Vec<usize> = targets.iter().map(|&t| multi[t]).collect();
                probs[flat_index(&target_dims, &outcome)] += self.amps.at(flat).norm_sqr();
            }
        }
        probs
    }

    /// Measures the listed subsystems in the computational basis, sampling an
    /// outcome with `rng`, collapsing and renormalising the state.
    ///
    /// Returns the per-target outcomes.
    pub fn measure<R: Rng + ?Sized>(&mut self, targets: &[usize], rng: &mut R) -> Vec<usize> {
        let target_dims: Vec<usize> = targets.iter().map(|&t| self.dims[t]).collect();
        let probs = self.outcome_distribution(targets);
        let total_p: f64 = probs.iter().sum();
        let mut draw = rng.random::<f64>() * total_p;
        let mut chosen = probs.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if draw < p {
                chosen = i;
                break;
            }
            draw -= p;
        }
        let outcome = unflatten_index(&target_dims, chosen);
        self.collapse(targets, &outcome);
        outcome
    }

    /// Projects the state onto the given computational-basis outcome for the
    /// target subsystems and renormalises.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has probability (numerically) zero.
    pub fn collapse(&mut self, targets: &[usize], outcome: &[usize]) {
        let (lay, offset) = match kernels::outcome_offset(&self.dims, targets, outcome) {
            Some(found) => found,
            None => panic!("cannot collapse onto a zero-probability outcome"),
        };
        let (re, im) = (self.amps.re(), self.amps.im());
        let mut p = 0.0;
        lay.for_each_base(|base| {
            let i = base + offset;
            p += re[i] * re[i] + im[i] * im[i];
        });
        assert!(
            p > 1e-300,
            "cannot collapse onto a zero-probability outcome"
        );
        let scale = 1.0 / p.sqrt();
        let mut new_amps = CVector::zeros(self.dim());
        {
            let out = new_amps.split_mut();
            lay.for_each_base(|base| {
                let i = base + offset;
                out.re[i] = re[i] * scale;
                out.im[i] = im[i] * scale;
            });
        }
        self.amps = new_amps;
    }

    /// Returns `true` when the two states agree entrywise up to `tol`.
    pub fn approx_eq(&self, other: &PureState, tol: f64) -> bool {
        self.dims == other.dims && self.amps.approx_eq(&other.amps, tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_index_roundtrip() {
        let dims = [2, 3, 4];
        for flat in 0..24 {
            let multi = unflatten_index(&dims, flat);
            assert_eq!(flat_index(&dims, &multi), flat);
        }
    }

    #[test]
    fn basis_state_probabilities() {
        let s = PureState::computational_basis(&[2, 3], &[1, 2]);
        assert_eq!(s.dim(), 6);
        assert!((s.outcome_probability(&[0], &[1]) - 1.0).abs() < 1e-12);
        assert!((s.outcome_probability(&[1], &[2]) - 1.0).abs() < 1e-12);
        assert!((s.outcome_probability(&[1], &[0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_superposition_distribution() {
        let s = PureState::uniform(5);
        let probs = s.outcome_distribution(&[0]);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_of_basis_states() {
        let a = PureState::single(2, 1);
        let b = PureState::single(3, 2);
        let t = a.tensor(&b);
        assert_eq!(t.dims(), &[2, 3]);
        assert!((t.outcome_probability(&[0, 1], &[1, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_then_measure_is_uniform() {
        let mut s = PureState::single(2, 0);
        s.apply_unitary(&[0], &gates::hadamard());
        let probs = s.outcome_distribution(&[0]);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut s = PureState::computational_basis(&[2, 2], &[0, 0]);
        s.apply_unitary(&[0], &gates::hadamard());
        s.apply_unitary(&[0, 1], &gates::cnot());
        assert!((s.outcome_probability(&[0, 1], &[0, 1])).abs() < 1e-12);
        assert!((s.outcome_probability(&[0, 1], &[1, 0])).abs() < 1e-12);
        assert!((s.outcome_probability(&[0, 1], &[0, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_on_second_subsystem() {
        let mut s = PureState::computational_basis(&[2, 2], &[0, 0]);
        s.apply_unitary(&[1], &gates::pauli_x());
        assert!((s.outcome_probability(&[0, 1], &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_preserves_norm() {
        let mut s = PureState::from_amplitudes(
            &[2, 2, 2],
            CVector::from_reals(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]),
        )
        .normalized();
        s.apply_unitary(&[1], &gates::hadamard());
        s.apply_unitary(&[0, 2], &gates::cnot());
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permute_subsystems_swaps_outcomes() {
        let s = PureState::computational_basis(&[2, 3], &[1, 2]);
        let p = s.permute_subsystems(&[1, 0]);
        assert_eq!(p.dims(), &[3, 2]);
        assert!((p.outcome_probability(&[0, 1], &[2, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_collapses_state() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = PureState::computational_basis(&[2, 2], &[0, 0]);
        s.apply_unitary(&[0], &gates::hadamard());
        s.apply_unitary(&[0, 1], &gates::cnot());
        let outcome = s.measure(&[0], &mut rng);
        // After measuring the first qubit of a Bell state, the second matches it.
        let p = s.outcome_probability(&[1], &[outcome[0]]);
        assert!((p - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_statistics_match_distribution() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            let mut s = PureState::single(2, 0);
            s.apply_unitary(&[0], &gates::hadamard());
            let o = s.measure(&[0], &mut rng);
            counts[o[0]] += 1;
        }
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.06, "observed fraction {frac}");
    }

    #[test]
    fn regroup_preserves_amplitudes() {
        let s = PureState::computational_basis(&[2, 2, 2], &[1, 0, 1]);
        let r = s.regroup(&[4, 2]);
        assert_eq!(r.dims(), &[4, 2]);
        assert!((r.outcome_probability(&[0, 1], &[2, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_panic() {
        let mut s = PureState::computational_basis(&[2, 2], &[0, 0]);
        s.apply_unitary(&[0, 0], &gates::cnot());
    }

    #[test]
    #[should_panic(expected = "operator dimension mismatch")]
    fn wrong_operator_dimension_panics() {
        let mut s = PureState::computational_basis(&[2, 2], &[0, 0]);
        s.apply_unitary(&[0], &gates::cnot());
    }

    #[test]
    fn collapse_on_partial_outcome() {
        let mut s = PureState::from_amplitudes(&[2, 2], CVector::from_reals(&[0.5, 0.5, 0.5, 0.5]));
        s.collapse(&[0], &[1]);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.outcome_probability(&[0], &[1]) - 1.0).abs() < 1e-12);
        assert!((s.outcome_probability(&[1], &[0]) - 0.5).abs() < 1e-12);
    }
}
