//! Complex number arithmetic used throughout the simulator.
//!
//! The simulator deliberately avoids external linear-algebra crates, so it
//! carries its own small, well-tested complex type. [`Complex`] is a plain
//! `f64` pair with value semantics (`Copy`), the full set of arithmetic
//! operator impls, and the handful of helpers quantum-information code needs
//! (conjugation, modulus, polar form).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use qsim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns the squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics (by producing non-finite components) is avoided: dividing by an
    /// exactly-zero complex number yields non-finite values just like `f64`
    /// division; callers should check [`Complex::norm_sqr`] when that matters.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns the principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` when `self` and `other` differ by at most `tol` in modulus.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1 + 2i)(3 - i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert!(a.mul(b).approx_eq(Complex::new(5.0, 5.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I).approx_eq(Complex::new(-1.0, 0.0), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.5, -1.5);
        let b = Complex::new(0.5, 3.0);
        let c = a * b;
        assert!((c / b).approx_eq(a, TOL));
        assert!((c / a).approx_eq(b, TOL));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-1.0, 1.0);
        let w = Complex::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, TOL));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(Complex::real(-1.0), 1e-10));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 1.0), (-3.0, 2.0), (1.5, -2.5)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt failed for {z}");
        }
    }

    #[test]
    fn recip_is_inverse() {
        let z = Complex::new(0.3, -0.7);
        assert!((z * z.recip()).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert_eq!(total, Complex::new(6.0, -6.0));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(2.0 * z, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -1.0));
        assert_eq!(-z, Complex::new(-1.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert!(format!("{}", Complex::new(1.0, 1.0)).contains('+'));
        assert!(format!("{}", Complex::new(1.0, -1.0)).contains('-'));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        assert_eq!(z, Complex::new(2.0, 1.0));
        z -= Complex::I;
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::I;
        assert_eq!(z, Complex::new(0.0, 2.0));
        z /= Complex::new(0.0, 2.0);
        assert!(z.approx_eq(Complex::ONE, TOL));
    }
}
