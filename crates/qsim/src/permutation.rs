//! The permutation test (Section 3.1 of the paper, Lemmas 15–16).
//!
//! The permutation test generalises the SWAP test from two registers to `k`
//! registers: its acceptance effect is the projector onto the symmetric
//! subspace of `(C^d)^{⊗k}`, i.e. the average `(1/k!) Σ_π U_π` of all
//! register-permutation unitaries. The paper uses it (Algorithm 5) so that a
//! node can test *all* the states received from its children at once, which is
//! what removes the factor `t` from the FGNP21 proof size.

use crate::complex::Complex;
use crate::density::DensityMatrix;
use crate::kernels::{self, BlockClasses};
use crate::linalg::CMatrix;
use crate::plan::{self, PlanScratch};
use crate::state::{flat_index, unflatten_index, PureState};
use rand::Rng;

/// Returns all permutations of `0..k`, each exactly once, in Heap's-algorithm
/// generation order (NOT lexicographic — callers must treat the result as a
/// set).
///
/// # Panics
///
/// Panics if `k > 8` (the permutation test is only ever applied to a handful
/// of registers; larger symmetric groups would be astronomically large).
pub fn permutations(k: usize) -> Vec<Vec<usize>> {
    assert!(k <= 8, "permutations(k) supports k <= 8");
    let mut items: Vec<usize> = (0..k).collect();
    let mut out = Vec::new();
    heap_permute(&mut items, k, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// The unitary `U_π` permuting `k` registers of dimension `d` each:
/// `U_π |i_1>···|i_k> = |i_{π⁻¹(1)}>···|i_{π⁻¹(k)}>`.
pub fn permutation_operator(d: usize, perm: &[usize]) -> CMatrix {
    let k = perm.len();
    let dims = vec![d; k];
    let total: usize = dims.iter().product();
    // Inverse permutation.
    let mut inv = vec![0usize; k];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    let mut m = CMatrix::zeros(total, total);
    for col in 0..total {
        let multi = unflatten_index(&dims, col);
        let permuted: Vec<usize> = (0..k).map(|slot| multi[inv[slot]]).collect();
        let row = flat_index(&dims, &permuted);
        m.set(row, col, Complex::ONE);
    }
    m
}

/// The projector onto the symmetric subspace of `k` registers of dimension `d`:
/// `Π_sym = (1/k!) Σ_{π ∈ S_k} U_π`.
pub fn symmetric_projector(d: usize, k: usize) -> CMatrix {
    let perms = permutations(k);
    let total = d.pow(k as u32);
    let mut sum = CMatrix::zeros(total, total);
    for p in &perms {
        sum = &sum + &permutation_operator(d, p);
    }
    sum.scale(Complex::real(1.0 / perms.len() as f64))
}

/// Dimension of the symmetric subspace of `k` registers of dimension `d`:
/// the binomial coefficient `C(d + k − 1, k)`.
pub fn symmetric_subspace_dim(d: usize, k: usize) -> usize {
    // Compute C(d+k-1, k) with integer arithmetic.
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num *= (d + k - 1 - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den) as usize
}

/// The `S_k` digit-orbit partition of the block indices `0..d^k`: two block
/// indices are in the same class iff their base-`d` digit strings are
/// permutations of each other.
///
/// The class-averaging projector of this partition (see
/// [`kernels::BlockClasses`]) *is* the symmetric-subspace projector
/// `Π_sym = (1/k!) Σ_π U_π`: averaging over all `k!` permutations counts each
/// orbit element `k!/|orbit|` times, which collapses to a plain orbit
/// average. This is what lets the post-measurement effects run in `O(D²)`
/// with no `k!` factor.
///
/// The partition is `O(d^k)` metadata (not an operator); its single
/// process-wide memo lives in the plan layer ([`plan::symmetric_classes`]),
/// which this function delegates to — the hot measurement paths pay the
/// construction once per `(d, k)` and then fetch full compiled class plans
/// from [`plan::cached_symmetric`].
pub fn symmetric_classes(d: usize, k: usize) -> std::sync::Arc<BlockClasses> {
    plan::symmetric_classes(d, k)
}

fn assert_equal_target_dims(rho: &DensityMatrix, targets: &[usize]) -> usize {
    let d = rho.dims()[targets[0]];
    assert!(
        targets.iter().all(|&t| rho.dims()[t] == d),
        "permutation test registers must have equal dimension"
    );
    d
}

/// Acceptance probability of the permutation test on a joint state of `k`
/// registers, each of dimension `d` (Lemma 15): `tr(Π_sym ρ)`.
///
/// Matrix-free: computed as `(1/k!) Σ_π tr(U_π ρ)` where each `tr(U_π ρ)` is
/// an `O(D)` gather over permuted index pairs ([`kernels::monomial_embedded_trace`])
/// — `O(k!·D)` total, with zero projector allocation. The dense-projector
/// path survives as [`crate::naive::permutation_test_acceptance`].
///
/// # Panics
///
/// Panics if the registers do not all have the same dimension.
pub fn permutation_test_acceptance(rho: &DensityMatrix) -> f64 {
    let targets: Vec<usize> = (0..rho.dims().len()).collect();
    permutation_test_acceptance_on(rho, &targets)
}

/// Acceptance probability of the permutation test on a product of pure states
/// (all of the same dimension).
///
/// Fast path: evaluated through the Gram-matrix closed form
/// ([`permutation_test_acceptance_gram`]) — the joint state (let alone its
/// `d^k × d^k` density matrix) is never formed.
pub fn permutation_test_acceptance_pure(states: &[PureState]) -> f64 {
    assert!(
        !states.is_empty(),
        "permutation test needs at least one state"
    );
    let d = states[0].dim();
    assert!(
        states.iter().all(|s| s.dim() == d),
        "permutation test registers must have equal dimension"
    );
    permutation_test_acceptance_gram(states)
}

/// Acceptance probability of the permutation test on a *product* of pure
/// states, computed from their Gram matrix without ever forming the joint
/// state: `tr(Π_sym ⊗_i |ψ_i><ψ_i|) = (1/k!) Σ_π Π_i <ψ_i|ψ_{π(i)}>`.
///
/// This is how the tree protocols evaluate the test for honest and separable
/// proofs even when the joint Hilbert space would be too large to materialise.
pub fn permutation_test_acceptance_gram(states: &[PureState]) -> f64 {
    let k = states.len();
    assert!(k >= 1, "permutation test needs at least one state");
    let gram: Vec<Vec<Complex>> = states
        .iter()
        .map(|a| states.iter().map(|b| a.inner(b)).collect())
        .collect();
    let mut total = Complex::ZERO;
    let perms = permutations(k);
    for p in &perms {
        let mut prod = Complex::ONE;
        for (i, &pi) in p.iter().enumerate() {
            prod *= gram[i][pi];
        }
        total += prod;
    }
    (total.re / perms.len() as f64).clamp(0.0, 1.0)
}

/// `tr(embed(U_π) · ρ)` for a single register permutation `π` of the listed
/// (equal-dimension) targets: an `O(D)` gather over permuted index pairs
/// through [`kernels::monomial_embedded_trace`] — each `U_π` is monomial, so
/// no operator is ever built.
pub fn permutation_unitary_expectation(
    rho: &DensityMatrix,
    targets: &[usize],
    perm: &[usize],
) -> Complex {
    let d = assert_equal_target_dims(rho, targets);
    assert_eq!(perm.len(), targets.len(), "permutation length mismatch");
    let src = plan::permutation_src(d, perm);
    let phase = vec![Complex::ONE; src.len()];
    kernels::monomial_embedded_trace(rho.matrix(), rho.dims(), targets, &src, &phase)
}

/// Acceptance probability of the permutation test applied to a subset of the
/// registers of a larger state, without disturbing it.
///
/// Matrix-free: `tr(Π_sym ρ) = (1/k!) Σ_π tr(embed(U_π) ρ)`, each term an
/// `O(D)` monomial gather ([`permutation_unitary_expectation`]); the sum is
/// evaluated in its orbit-grouped form ([`kernels::class_projection_trace`]),
/// which regroups the `k!` gathers by digit orbit — at most `k!·D` and
/// typically far fewer visited entries, with zero projector allocation. The
/// dense-projector path survives as
/// [`crate::naive::permutation_test_acceptance_on`].
pub fn permutation_test_acceptance_on(rho: &DensityMatrix, targets: &[usize]) -> f64 {
    let plan = plan::cached_symmetric(rho.dims(), targets);
    kernels::class_projection_trace_with(rho.matrix(), &plan)
        .re
        .clamp(0.0, 1.0)
}

/// Applies the accept effect of the permutation test in place, without
/// renormalising: `ρ → Π_sym ρ Π_sym`.
///
/// Implemented as an in-place register symmetrisation — class averaging over
/// the `S_k` digit orbits through the [`kernels`] stride machinery: `O(D²)`,
/// no `k!` factor, no projector allocation.
pub fn project_symmetric_on(rho: &mut DensityMatrix, targets: &[usize]) {
    let plan = plan::cached_symmetric(rho.dims(), targets);
    rho.apply_class_projector_with(&plan, false, &mut PlanScratch::default());
}

/// Applies the reject effect of the permutation test in place, without
/// renormalising: `ρ → (I − Π_sym) ρ (I − Π_sym)`.
pub fn project_complement_on(rho: &mut DensityMatrix, targets: &[usize]) {
    let plan = plan::cached_symmetric(rho.dims(), targets);
    rho.apply_class_projector_with(&plan, true, &mut PlanScratch::default());
}

/// Performs the permutation test on the listed registers of a larger state,
/// sampling the outcome and collapsing the state accordingly. Both the
/// acceptance probability and the post-measurement effect are matrix-free
/// (see [`permutation_test_acceptance_on`], [`project_symmetric_on`]).
///
/// Returns `true` on acceptance.
pub fn permutation_test_on<R: Rng + ?Sized>(
    rho: &mut DensityMatrix,
    targets: &[usize],
    rng: &mut R,
) -> bool {
    let plan = plan::cached_symmetric(rho.dims(), targets);
    let p_accept = kernels::class_projection_trace_with(rho.matrix(), &plan)
        .re
        .clamp(0.0, 1.0);
    let accept = rng.random::<f64>() < p_accept;
    let p = if accept { p_accept } else { 1.0 - p_accept };
    if p > 1e-12 {
        rho.apply_class_projector_with(&plan, !accept, &mut PlanScratch::default());
        rho.rescale(1.0 / p);
    }
    accept
}

/// Performs the permutation test on the listed registers of a larger *pure*
/// state, sampling the outcome and collapsing in place. The acceptance
/// probability `‖Π_sym |ψ>‖²` and both effect branches run as `O(D)` class
/// averages — the pure-state fast path of the protocol samplers.
///
/// Returns `true` on acceptance.
pub fn permutation_test_on_pure<R: Rng + ?Sized>(
    psi: &mut PureState,
    targets: &[usize],
    rng: &mut R,
) -> bool {
    let plan = plan::cached_symmetric(psi.dims(), targets);
    let mut scratch = PlanScratch::default();
    let p_accept =
        kernels::class_projection_weight_with(psi.amplitudes().split(), &plan, &mut scratch)
            .clamp(0.0, 1.0);
    let accept = rng.random::<f64>() < p_accept;
    let p = if accept { p_accept } else { 1.0 - p_accept };
    if p > 1e-12 {
        psi.apply_class_projector_with(&plan, !accept, &mut scratch);
        psi.rescale(1.0 / p.sqrt());
    }
    accept
}

/// Right-multiplies a matrix by the embedded symmetric-subspace projector of
/// the listed (equal-dimension) registers, in place and matrix-free:
/// `M → M · embed(Π_sym)` as a class average over columns, `O(rows · D)`.
///
/// This is how the chain acceptance-operator construction applies its SWAP
/// effects without ever building the `d²×d²` projector.
pub fn right_project_symmetric(mat: &mut CMatrix, dims: &[usize], targets: &[usize]) {
    let plan = plan::cached_symmetric(dims, targets);
    kernels::project_classes_cols_with(mat, &plan, false, &mut PlanScratch::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{swap_test_distance_bound, trace_distance};
    use crate::random::RandomStateGenerator;
    use crate::swap_test::swap_test_projector;

    #[test]
    fn permutations_count_is_factorial() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn permutations_form_the_full_symmetric_group_as_a_set() {
        // Heap's algorithm emits each permutation exactly once; callers must
        // not depend on the order, so assert the *set*, not the sequence.
        for k in 1..=5usize {
            let mut perms = permutations(k);
            let count = perms.len();
            perms.sort();
            perms.dedup();
            assert_eq!(perms.len(), count, "k={k}: duplicates emitted");
            assert_eq!(count, (1..=k).product::<usize>(), "k={k}: wrong count");
            for p in &perms {
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..k).collect::<Vec<_>>(),
                    "k={k}: not a permutation"
                );
            }
        }
    }

    #[test]
    fn symmetric_classes_average_is_the_symmetric_projector() {
        for (d, k) in [(2usize, 2usize), (2, 3), (3, 2), (2, 4), (3, 3)] {
            let classes = symmetric_classes(d, k);
            let total = d.pow(k as u32);
            let dense = symmetric_projector(d, k);
            let class_matrix = CMatrix::from_fn(total, total, |r, c| {
                if classes.class_of[r] == classes.class_of[c] {
                    Complex::real(1.0 / classes.class_size[classes.class_of[r]] as f64)
                } else {
                    Complex::ZERO
                }
            });
            assert!(
                class_matrix.approx_eq(&dense, 1e-12),
                "d={d}, k={k}: class average differs from Π_sym"
            );
        }
    }

    #[test]
    fn permutation_operators_are_unitary_and_compose() {
        let d = 2;
        for p in permutations(3) {
            assert!(permutation_operator(d, &p).is_unitary(1e-12));
        }
        // U_sigma U_tau = U_{sigma . tau} for the cycle and a transposition.
        let sigma = vec![1usize, 2, 0];
        let tau = vec![1usize, 0, 2];
        let lhs = permutation_operator(d, &sigma).matmul(&permutation_operator(d, &tau));
        let composed: Vec<usize> = (0..3).map(|i| sigma[tau[i]]).collect();
        let rhs = permutation_operator(d, &composed);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn identity_permutation_is_identity_operator() {
        let u = permutation_operator(3, &[0, 1, 2]);
        assert!(u.approx_eq(&CMatrix::identity(27), 1e-12));
    }

    #[test]
    fn symmetric_projector_for_two_registers_matches_swap_test() {
        for d in [2, 3] {
            let p = symmetric_projector(d, 2);
            assert!(p.approx_eq(&swap_test_projector(d), 1e-12));
        }
    }

    #[test]
    fn symmetric_projector_is_projector_with_correct_rank() {
        for (d, k) in [(2, 2), (2, 3), (3, 2), (2, 4)] {
            let p = symmetric_projector(d, k);
            assert!(p.is_hermitian(1e-12));
            assert!(p.matmul(&p).approx_eq(&p, 1e-9));
            let expected_rank = symmetric_subspace_dim(d, k) as f64;
            assert!(
                (p.trace().re - expected_rank).abs() < 1e-8,
                "rank mismatch for d={d}, k={k}"
            );
        }
    }

    #[test]
    fn symmetric_subspace_dims() {
        assert_eq!(symmetric_subspace_dim(2, 2), 3);
        assert_eq!(symmetric_subspace_dim(2, 3), 4);
        assert_eq!(symmetric_subspace_dim(3, 2), 6);
        assert_eq!(symmetric_subspace_dim(4, 3), 20);
    }

    #[test]
    fn identical_copies_always_accept() {
        // Lemma 15: the test accepts |phi>^{\otimes k} with probability 1.
        let mut gen = RandomStateGenerator::new(5);
        let phi = gen.random_pure(&[2]);
        for k in 2..=4 {
            let copies: Vec<PureState> = (0..k).map(|_| phi.clone()).collect();
            let p = permutation_test_acceptance_pure(&copies);
            assert!((p - 1.0).abs() < 1e-9, "k={k} acceptance {p}");
        }
    }

    #[test]
    fn distinct_orthogonal_states_accept_below_one() {
        let zero = PureState::single(2, 0);
        let one = PureState::single(2, 1);
        let p = permutation_test_acceptance_pure(&[zero.clone(), one.clone(), zero]);
        assert!(p < 0.9, "acceptance {p} should be bounded away from 1");
    }

    #[test]
    fn lemma_16_bound_on_random_states() {
        // If the permutation test accepts with probability 1 - eps, the reduced
        // states on any two registers are within 2 sqrt(eps) + eps.
        let mut gen = RandomStateGenerator::new(6);
        for _ in 0..5 {
            let rho = gen.random_density(&[2, 2, 2], 2);
            let eps = 1.0 - permutation_test_acceptance(&rho);
            for i in 0..3 {
                for j in (i + 1)..3 {
                    let d = trace_distance(
                        &rho.partial_trace_keep(&[i]),
                        &rho.partial_trace_keep(&[j]),
                    );
                    assert!(
                        d <= swap_test_distance_bound(eps) + 1e-7,
                        "pair ({i},{j}): distance {d} exceeds bound at eps {eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_formula_matches_dense_projector_formula() {
        let mut gen = RandomStateGenerator::new(21);
        for k in 2..=3usize {
            let states: Vec<PureState> = (0..k).map(|_| gen.random_pure(&[3])).collect();
            let via_gram = permutation_test_acceptance_gram(&states);
            let via_projector = crate::naive::permutation_test_acceptance_pure(&states);
            assert!(
                (via_gram - via_projector).abs() < 1e-9,
                "k={k}: {via_gram} vs {via_projector}"
            );
        }
    }

    #[test]
    fn gram_formula_on_identical_states_is_one() {
        let mut gen = RandomStateGenerator::new(22);
        let phi = gen.random_pure(&[5]);
        let copies: Vec<PureState> = (0..4).map(|_| phi.clone()).collect();
        assert!((permutation_test_acceptance_gram(&copies) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn acceptance_on_sub_registers() {
        let mut gen = RandomStateGenerator::new(7);
        let phi = gen.random_pure(&[2]);
        let other = gen.random_pure(&[3]);
        let joint = DensityMatrix::from_pure(&phi.tensor(&other).tensor(&phi).tensor(&phi));
        let p = permutation_test_acceptance_on(&joint, &[0, 2, 3]);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_test_on_collapse_keeps_trace() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let mut gen = RandomStateGenerator::new(8);
        let mut rho = gen.random_density(&[2, 2, 2], 2);
        let _ = permutation_test_on(&mut rho, &[0, 1, 2], &mut rng);
        assert!((rho.trace() - 1.0).abs() < 1e-9);
    }
}
