//! Seeded random states, unitaries, and counter-based stream splitting.
//!
//! Adversarial provers and property tests need Haar-like random pure states,
//! random density matrices of chosen rank, and random unitaries. Everything
//! here is driven by an explicit seed so experiments are reproducible.
//!
//! [`CounterRng`] is the splittable counterpart for Monte-Carlo engines: a
//! counter-mode SplitMix64 stream whose key is a pure function of a logical
//! coordinate (e.g. `(seed, block, trial)`), so any number of independent
//! streams can be opened in any order — or in lockstep lanes — without
//! sequential state handoff, and the draws of stream `t` never depend on how
//! the surrounding loop was chunked.

use crate::complex::Complex;
use crate::density::DensityMatrix;
use crate::linalg::{CMatrix, CVector};
use crate::state::{total_dim, PureState};
use rand::rngs::{SplitMix64, StdRng};
use rand::{Rng, RngCore, SeedableRng};

/// Golden-ratio increment shared by all stream-key derivations (the same
/// constant SplitMix64 itself advances by, reused for key spacing).
pub(crate) const STREAM_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Odd multiplier (the xorshift1024* mixing constant) that spaces keys along
/// the *trial* axis, decorrelating it from the block axis which is spaced by
/// [`STREAM_GAMMA`].
pub(crate) const TRIAL_GAMMA: u64 = 0x2545_F491_4F6C_DD1D;

/// Counter-based splittable RNG: a SplitMix64 stream opened at an arbitrary
/// key.
///
/// Unlike a sequential generator, the `n`-th draw is a pure function of
/// `(key, n)`, so callers can derive one independent stream per logical unit
/// of work (per Monte-Carlo trial, per lane) from coordinates alone. This is
/// what makes lane-batched trial engines grouping-invariant: a trial's draws
/// are identical whether it runs alone, inside a 4-lane chunk, or inside a
/// 64-lane chunk. Statistical quality is that of SplitMix64 (passes BigCrush;
/// 2^64 period per stream), and distinct keys give overlap probability
/// negligible at any realistic draw count.
#[derive(Clone, Debug)]
pub struct CounterRng {
    stream: SplitMix64,
}

impl CounterRng {
    /// Opens the stream with the given key.
    pub fn new(key: u64) -> Self {
        CounterRng {
            stream: SplitMix64::new(key),
        }
    }

    /// Derives the shared key material for one `(seed, block)` coordinate.
    ///
    /// The block term is finalised through one SplitMix64 round so the block
    /// axis and the trial axis (which is XOR-mixed on top by
    /// [`CounterRng::for_trial_key`]) cannot cancel linearly.
    pub fn block_key(seed: u64, block: u64) -> u64 {
        SplitMix64::new(seed ^ block.wrapping_add(1).wrapping_mul(STREAM_GAMMA)).next_word()
    }

    /// Opens the stream of one trial within a block keyed by
    /// [`CounterRng::block_key`].
    #[inline]
    pub fn for_trial_key(block_key: u64, trial: u64) -> Self {
        CounterRng::new(block_key ^ trial.wrapping_add(1).wrapping_mul(TRIAL_GAMMA))
    }

    /// Convenience composition of [`CounterRng::block_key`] and
    /// [`CounterRng::for_trial_key`].
    pub fn for_trial(seed: u64, block: u64, trial: u64) -> Self {
        CounterRng::for_trial_key(CounterRng::block_key(seed, block), trial)
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.stream.next_word()
    }
}

/// Generator of random quantum objects with a fixed seed.
#[derive(Clone, Debug)]
pub struct RandomStateGenerator {
    rng: StdRng,
}

impl RandomStateGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        RandomStateGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a standard normal real number (Box–Muller).
    fn gaussian(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.random();
            let u2: f64 = self.rng.random();
            if u1 > 1e-300 {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Samples a complex number with i.i.d. standard normal components.
    fn complex_gaussian(&mut self) -> Complex {
        Complex::new(self.gaussian(), self.gaussian())
    }

    /// Samples a Haar-random pure state on the given register.
    pub fn random_pure(&mut self, dims: &[usize]) -> PureState {
        let d = total_dim(dims);
        let v = CVector::from_fn(d, |_| self.complex_gaussian()).normalized();
        PureState::from_amplitudes(dims, v)
    }

    /// Samples a random density matrix of the given rank (mixture of `rank`
    /// Haar-random pure states with Dirichlet-like random weights).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn random_density(&mut self, dims: &[usize], rank: usize) -> DensityMatrix {
        assert!(rank >= 1, "rank must be at least 1");
        let parts: Vec<(f64, DensityMatrix)> = (0..rank)
            .map(|_| {
                let w: f64 = self.rng.random::<f64>() + 1e-9;
                (w, DensityMatrix::from_pure(&self.random_pure(dims)))
            })
            .collect();
        DensityMatrix::mixture(&parts)
    }

    /// Samples a Haar-like random unitary of dimension `d` via Gram–Schmidt on
    /// a complex Gaussian matrix.
    pub fn random_unitary(&mut self, d: usize) -> CMatrix {
        // Columns of a Gaussian matrix, orthonormalised.
        let mut cols: Vec<CVector> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut v = CVector::from_fn(d, |_| self.complex_gaussian());
            for c in &cols {
                let proj = c.inner(&v);
                v.add_scaled(c, -proj);
            }
            cols.push(v.normalized());
        }
        CMatrix::from_fn(d, d, |i, j| cols[j].at(i))
    }

    /// Samples a uniformly random bit string of length `n`.
    pub fn random_bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.rng.random::<bool>()).collect()
    }

    /// Returns a mutable reference to the underlying RNG for ad-hoc sampling.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pure_states_are_normalised() {
        let mut gen = RandomStateGenerator::new(1);
        for _ in 0..10 {
            let s = gen.random_pure(&[2, 3]);
            assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn random_density_is_valid() {
        let mut gen = RandomStateGenerator::new(2);
        for rank in 1..4 {
            let rho = gen.random_density(&[2, 2], rank);
            assert!(rho.is_valid(1e-8));
        }
    }

    #[test]
    fn rank_one_density_is_pure() {
        let mut gen = RandomStateGenerator::new(3);
        let rho = gen.random_density(&[3], 1);
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut gen = RandomStateGenerator::new(4);
        for d in [2, 3, 5] {
            let u = gen.random_unitary(d);
            assert!(u.is_unitary(1e-9), "dimension {d}");
        }
    }

    #[test]
    fn seeding_is_reproducible() {
        let mut a = RandomStateGenerator::new(99);
        let mut b = RandomStateGenerator::new(99);
        let sa = a.random_pure(&[4]);
        let sb = b.random_pure(&[4]);
        assert!(sa.approx_eq(&sb, 1e-15));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomStateGenerator::new(1);
        let mut b = RandomStateGenerator::new(2);
        let sa = a.random_pure(&[4]);
        let sb = b.random_pure(&[4]);
        assert!(!sa.approx_eq(&sb, 1e-6));
    }

    #[test]
    fn random_bits_length() {
        let mut gen = RandomStateGenerator::new(5);
        assert_eq!(gen.random_bits(17).len(), 17);
    }

    #[test]
    fn overlap_of_random_states_is_small_in_high_dimension() {
        let mut gen = RandomStateGenerator::new(6);
        let a = gen.random_pure(&[32]);
        let b = gen.random_pure(&[32]);
        assert!(
            a.overlap_sqr(&b) < 0.5,
            "random 32-dim states should be nearly orthogonal"
        );
    }
}
