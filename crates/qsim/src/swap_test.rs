//! The SWAP test (Section 3.1 of the paper, Lemmas 13–14).
//!
//! The SWAP test on a bipartite input accepts with probability
//! `1/2 + |α|²/2` where `α` is the amplitude of the input in the symmetric
//! subspace; for a product of pure states `|ψ₁>|ψ₂>` this is
//! `1/2 + |<ψ₁|ψ₂>|²/2`. The acceptance effect is exactly the projector onto
//! the symmetric subspace of the two registers, which is how it is
//! implemented here (no ancilla needed for exact simulation).

use crate::complex::Complex;
use crate::density::DensityMatrix;
use crate::gates;
use crate::linalg::CMatrix;
use crate::permutation;
use crate::state::PureState;
use rand::Rng;

/// The projector `(I + SWAP)/2` onto the symmetric subspace of two registers
/// of dimension `d` each. This is the acceptance effect of the SWAP test.
pub fn swap_test_projector(d: usize) -> CMatrix {
    let id = CMatrix::identity(d * d);
    let sw = gates::swap(d);
    (&id + &sw).scale(Complex::real(0.5))
}

/// Acceptance probability of the SWAP test on a product of two pure states:
/// `1/2 + |<a|b>|²/2`.
///
/// # Panics
///
/// Panics if the states have different total dimensions.
#[inline]
pub fn swap_test_acceptance_pure(a: &PureState, b: &PureState) -> f64 {
    assert_eq!(
        a.dim(),
        b.dim(),
        "SWAP test requires equal register dimensions"
    );
    0.5 + 0.5 * a.overlap_sqr(b)
}

/// Acceptance probability of the SWAP test on a joint (possibly entangled or
/// mixed) state of two registers of equal dimension.
///
/// Matrix-free: `tr(Π ρ) = (tr ρ + tr(SWAP·ρ))/2` where `tr(SWAP·ρ)` is an
/// `O(D)` gather over swapped index pairs — the projector is never built.
/// The dense-projector path survives as [`crate::naive::swap_test_acceptance`].
///
/// # Panics
///
/// Panics if the state does not consist of exactly two equal-dimension registers.
pub fn swap_test_acceptance(rho: &DensityMatrix) -> f64 {
    assert_eq!(
        rho.dims().len(),
        2,
        "SWAP test acts on exactly two registers"
    );
    swap_test_acceptance_on(rho, 0, 1)
}

/// Acceptance probability of the SWAP test applied to two registers inside a
/// larger state, without disturbing it. Matrix-free (see
/// [`swap_test_acceptance`]).
pub fn swap_test_acceptance_on(rho: &DensityMatrix, r1: usize, r2: usize) -> f64 {
    let d = rho.dims()[r1];
    assert_eq!(
        d,
        rho.dims()[r2],
        "SWAP test registers must have equal dimension"
    );
    permutation::permutation_test_acceptance_on(rho, &[r1, r2])
}

/// Performs the SWAP test on registers `r1` and `r2` of a larger state,
/// sampling the outcome and collapsing the state accordingly. Both the
/// acceptance probability and the post-measurement effect (register
/// symmetrisation, both branches) are matrix-free.
///
/// Returns `true` on acceptance.
pub fn swap_test_on<R: Rng + ?Sized>(
    rho: &mut DensityMatrix,
    r1: usize,
    r2: usize,
    rng: &mut R,
) -> bool {
    let d = rho.dims()[r1];
    assert_eq!(
        d,
        rho.dims()[r2],
        "SWAP test registers must have equal dimension"
    );
    permutation::permutation_test_on(rho, &[r1, r2], rng)
}

/// Performs the SWAP test on registers `r1` and `r2` of a larger *pure*
/// state, sampling and collapsing in place — the pure-state fast path of the
/// protocol samplers (`O(D)` per test).
///
/// Returns `true` on acceptance.
pub fn swap_test_on_pure<R: Rng + ?Sized>(
    psi: &mut PureState,
    r1: usize,
    r2: usize,
    rng: &mut R,
) -> bool {
    let d = psi.dims()[r1];
    assert_eq!(
        d,
        psi.dims()[r2],
        "SWAP test registers must have equal dimension"
    );
    permutation::permutation_test_on_pure(psi, &[r1, r2], rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{swap_test_distance_bound, trace_distance};
    use crate::random::RandomStateGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_pure_states_always_accept() {
        let mut gen = RandomStateGenerator::new(1);
        let psi = gen.random_pure(&[4]);
        assert!((swap_test_acceptance_pure(&psi, &psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_states_accept_with_half() {
        let a = PureState::single(2, 0);
        let b = PureState::single(2, 1);
        assert!((swap_test_acceptance_pure(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn acceptance_matches_projector_formula() {
        let mut gen = RandomStateGenerator::new(2);
        for _ in 0..5 {
            let a = gen.random_pure(&[3]);
            let b = gen.random_pure(&[3]);
            let joint = DensityMatrix::from_pure(&a.tensor(&b));
            let analytic = swap_test_acceptance_pure(&a, &b);
            let operator = swap_test_acceptance(&joint);
            assert!((analytic - operator).abs() < 1e-10);
        }
    }

    #[test]
    fn projector_is_idempotent_and_hermitian() {
        let p = swap_test_projector(3);
        assert!(p.is_hermitian(1e-12));
        assert!(p.matmul(&p).approx_eq(&p, 1e-10));
        // The symmetric subspace of two qutrits has dimension d(d+1)/2 = 6.
        assert!((p.trace().re - 6.0).abs() < 1e-10);
    }

    #[test]
    fn lemma_14_bound_holds_for_random_joint_states() {
        // If the SWAP test accepts with probability 1 - eps, then
        // D(rho_1, rho_2) <= 2 sqrt(eps) + eps.
        let mut gen = RandomStateGenerator::new(3);
        for _ in 0..10 {
            let rho = gen.random_density(&[2, 2], 2);
            let eps = 1.0 - swap_test_acceptance(&rho);
            let d = trace_distance(&rho.partial_trace_keep(&[0]), &rho.partial_trace_keep(&[1]));
            assert!(
                d <= swap_test_distance_bound(eps) + 1e-8,
                "distance {d} exceeds bound {} at eps {eps}",
                swap_test_distance_bound(eps)
            );
        }
    }

    #[test]
    fn perfect_acceptance_implies_equal_reduced_states() {
        // Symmetric pure states accept with certainty and have equal marginals.
        let mut gen = RandomStateGenerator::new(4);
        let psi = gen.random_pure(&[3]);
        let joint = DensityMatrix::from_pure(&psi.tensor(&psi));
        assert!((swap_test_acceptance(&joint) - 1.0).abs() < 1e-10);
        let d = trace_distance(
            &joint.partial_trace_keep(&[0]),
            &joint.partial_trace_keep(&[1]),
        );
        assert!(d < 1e-8);
    }

    #[test]
    fn swap_test_on_collapses_and_reports() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = PureState::single(2, 0);
        let b = PureState::single(2, 1);
        let mut rho = DensityMatrix::from_pure(&a.tensor(&b));
        let mut accepts = 0;
        let trials = 400;
        for _ in 0..trials {
            let mut r = rho.clone();
            if swap_test_on(&mut r, 0, 1, &mut rng) {
                accepts += 1;
            }
            assert!((r.trace() - 1.0).abs() < 1e-9);
        }
        let frac = f64::from(accepts) / f64::from(trials);
        assert!((frac - 0.5).abs() < 0.1, "observed acceptance {frac}");
        // Original state untouched by the cloned runs.
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        let _ = &mut rho;
    }

    #[test]
    fn acceptance_on_subregisters_of_larger_state() {
        let mut gen = RandomStateGenerator::new(9);
        let psi = gen.random_pure(&[2]);
        let extra = gen.random_pure(&[3]);
        let joint = DensityMatrix::from_pure(&psi.tensor(&extra).tensor(&psi));
        let p = swap_test_acceptance_on(&joint, 0, 2);
        assert!((p - 1.0).abs() < 1e-10);
    }
}
