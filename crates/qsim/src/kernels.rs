//! Strided, in-place, allocation-free gate kernels.
//!
//! Every protocol cost in the companion crates is driven through repeated
//! application of *local* operators — operators acting on a few target
//! subsystems of a larger register. The naive way to do this (retained in
//! [`crate::naive`] as a test oracle) re-derives a heap-allocated multi-index
//! per amplitude and clones the full state per gate; the kernels here instead
//!
//! * precompute, once per call, the flat-index **offset** of every element of
//!   the target block (`offsets[b] = Σ_k b_k · stride(targets[k])`);
//! * enumerate the non-target subsystems with an incremental **odometer**
//!   (one add/subtract per step, no allocation per amplitude);
//! * gather/scatter each target block through those offsets and apply the
//!   block operator in place.
//!
//! Cost: `O(D · block)` for a state vector of dimension `D` and
//! `O(D² · block)` for a density-matrix conjugation — compared to
//! `O(D · block²)` plus a full clone, respectively `O(D³)` plus a `D×D`
//! temporary, for the naive path.
//!
//! Structured operators get fast paths: diagonal operators multiply in place
//! (`O(D)`), and monomial operators — permutation matrices up to per-entry
//! phases, which is what [`crate::gates::swap`], [`crate::permutation`] and
//! [`crate::swap_test`] produce — scatter in `O(D)` instead of `O(D · block)`.
//! Single-qubit (block = 2) dense operators use an unrolled 2×2 path.
//!
//! With the `parallel` crate feature the outer odometer loop of the two large
//! kernels is split across `std::thread::scope` threads (rayon cannot be
//! vendored in this offline build environment).

use crate::complex::Complex;
use crate::linalg::CMatrix;
use crate::state::total_dim;

/// Minimum number of scalar operations before the `parallel` feature spawns
/// threads; below this the spawn overhead dominates.
#[cfg(feature = "parallel")]
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// Row-major subsystem strides: `strides[i]` is the flat-index distance
/// between consecutive values of subsystem `i` (last subsystem fastest).
pub(crate) fn subsystem_strides(dims: &[usize]) -> Vec<usize> {
    let n = dims.len();
    let mut strides = vec![1usize; n];
    for i in (0..n.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Precomputed flat-index geometry of a set of target subsystems.
pub(crate) struct TargetLayout {
    /// Product of the target dimensions.
    pub block: usize,
    /// `offsets[b]` is the flat-index offset of target-block element `b`
    /// (row-major over the target dimensions, `offsets[0] == 0`).
    pub offsets: Vec<usize>,
    /// Dimensions of the non-target subsystems.
    pub other_dims: Vec<usize>,
    /// Strides of the non-target subsystems.
    pub other_strides: Vec<usize>,
    /// Number of non-target index combinations.
    pub other_total: usize,
}

/// Validates targets against `dims` with the same panic messages the previous
/// implementations used, returning the per-target dimensions.
pub(crate) fn validate_targets(dims: &[usize], targets: &[usize]) -> Vec<usize> {
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < dims.len(), "target {t} out of range");
        assert!(
            !targets[(i + 1)..].contains(&t),
            "duplicate target subsystem {t}"
        );
    }
    targets.iter().map(|&t| dims[t]).collect()
}

pub(crate) fn layout(dims: &[usize], targets: &[usize]) -> TargetLayout {
    let strides = subsystem_strides(dims);
    let target_dims = validate_targets(dims, targets);
    let block = total_dim(&target_dims);

    // Expand the block offsets target by target, most significant first, so
    // that offsets[b] matches the row-major flat index `b` over target_dims.
    let mut offsets = vec![0usize];
    for (&t, &d) in targets.iter().zip(target_dims.iter()) {
        let stride = strides[t];
        let mut next = Vec::with_capacity(offsets.len() * d);
        for &o in &offsets {
            for v in 0..d {
                next.push(o + v * stride);
            }
        }
        offsets = next;
    }
    debug_assert_eq!(offsets.len(), block);

    let mut other_dims = Vec::with_capacity(dims.len() - targets.len());
    let mut other_strides = Vec::with_capacity(dims.len() - targets.len());
    for i in 0..dims.len() {
        if !targets.contains(&i) {
            other_dims.push(dims[i]);
            other_strides.push(strides[i]);
        }
    }
    let other_total = total_dim(&other_dims);
    TargetLayout {
        block,
        offsets,
        other_dims,
        other_strides,
        other_total,
    }
}

impl TargetLayout {
    /// Calls `f(base)` for every combination of the non-target subsystem
    /// indices, where `base` is the flat index with all targets at 0.
    #[inline]
    pub(crate) fn for_each_base(&self, f: impl FnMut(usize)) {
        for_each_base_range(
            &self.other_dims,
            &self.other_strides,
            0,
            self.other_total,
            f,
        );
    }
}

/// Odometer over the non-target subsystems, visiting base indices `lo..hi`
/// (in row-major order of the non-target multi-index). One add per step.
fn for_each_base_range(
    other_dims: &[usize],
    other_strides: &[usize],
    lo: usize,
    hi: usize,
    mut f: impl FnMut(usize),
) {
    if lo >= hi {
        return;
    }
    let n = other_dims.len();
    if n == 0 {
        f(0);
        return;
    }
    // Seed the odometer at position `lo`.
    let mut counters = vec![0usize; n];
    let mut rest = lo;
    let mut base = 0usize;
    for i in (0..n).rev() {
        counters[i] = rest % other_dims[i];
        rest /= other_dims[i];
        base += counters[i] * other_strides[i];
    }
    let mut remaining = hi - lo;
    loop {
        f(base);
        remaining -= 1;
        if remaining == 0 {
            return;
        }
        let mut i = n;
        loop {
            debug_assert!(i > 0, "odometer overflow before visiting `remaining` bases");
            i -= 1;
            counters[i] += 1;
            base += other_strides[i];
            if counters[i] < other_dims[i] {
                break;
            }
            base -= other_dims[i] * other_strides[i];
            counters[i] = 0;
        }
    }
}

/// Resolves a (targets, outcome) measurement constraint into the layout of
/// the constrained subsystems plus the flat-index offset encoding the
/// outcome: the flat indices compatible with the outcome are exactly
/// `{base + offset}` over the layout's bases. Returns `None` when the
/// constraint is unsatisfiable (an out-of-range outcome value, or
/// conflicting duplicate targets), which corresponds to probability zero.
pub(crate) fn outcome_offset(
    dims: &[usize],
    targets: &[usize],
    outcome: &[usize],
) -> Option<(TargetLayout, usize)> {
    assert_eq!(targets.len(), outcome.len(), "outcome length mismatch");
    let mut fixed: Vec<Option<usize>> = vec![None; dims.len()];
    for (&t, &o) in targets.iter().zip(outcome.iter()) {
        assert!(t < dims.len(), "target {t} out of range");
        if o >= dims[t] {
            return None;
        }
        match fixed[t] {
            None => fixed[t] = Some(o),
            Some(prev) if prev != o => return None,
            Some(_) => {}
        }
    }
    let strides = subsystem_strides(dims);
    let mut distinct = Vec::new();
    let mut offset = 0usize;
    for (i, slot) in fixed.iter().enumerate() {
        if let Some(o) = slot {
            distinct.push(i);
            offset += o * strides[i];
        }
    }
    Some((layout(dims, &distinct), offset))
}

/// Returns `true` when the target list has no repeats — the precondition for
/// the layout-based fast paths; callers with repeated targets fall back to
/// scan semantics.
pub(crate) fn targets_distinct(targets: &[usize]) -> bool {
    targets.len() <= 1
        || targets
            .iter()
            .enumerate()
            .all(|(i, t)| !targets[(i + 1)..].contains(t))
}

/// Structural classification of a block operator, used to pick fast paths.
enum OpKind {
    /// The identity: nothing to do.
    Identity,
    /// Diagonal: entrywise multiplication.
    Diagonal(Vec<Complex>),
    /// One nonzero per row: `out[r] = phase[r] · in[src[r]]`. Covers
    /// permutation operators (SWAP, register cycles) and phased variants.
    Monomial {
        src: Vec<usize>,
        phase: Vec<Complex>,
    },
    /// General dense operator.
    Dense,
}

fn classify(u: &CMatrix) -> OpKind {
    let n = u.rows();
    let mut diagonal = true;
    'diag: for r in 0..n {
        for c in 0..n {
            if r != c && u[(r, c)].norm_sqr() != 0.0 {
                diagonal = false;
                break 'diag;
            }
        }
    }
    if diagonal {
        let d: Vec<Complex> = (0..n).map(|i| u[(i, i)]).collect();
        if d.iter().all(|&z| z == Complex::ONE) {
            return OpKind::Identity;
        }
        return OpKind::Diagonal(d);
    }
    let mut src = Vec::with_capacity(n);
    let mut phase = Vec::with_capacity(n);
    for r in 0..n {
        let mut nonzero = None;
        for c in 0..n {
            if u[(r, c)].norm_sqr() != 0.0 {
                if nonzero.is_some() {
                    return OpKind::Dense;
                }
                nonzero = Some(c);
            }
        }
        match nonzero {
            Some(c) => {
                src.push(c);
                phase.push(u[(r, c)]);
            }
            None => return OpKind::Dense,
        }
    }
    OpKind::Monomial { src, phase }
}

/// Applies a local operator to a state vector in place:
/// `|ψ⟩ → embed(op) |ψ⟩` without materialising the embedded operator.
///
/// `amps` is the amplitude vector over subsystems of dimensions `dims`;
/// `targets` lists the subsystems the operator acts on, in the order matching
/// the operator's tensor-factor ordering.
///
/// # Panics
///
/// Panics if targets repeat or are out of range, if `op` is not square of the
/// product of target dimensions, or if `amps.len()` differs from the product
/// of `dims`.
pub fn apply_to_state_vector(
    amps: &mut [Complex],
    dims: &[usize],
    targets: &[usize],
    op: &CMatrix,
) {
    let lay = prepared(amps.len(), dims, targets, op);
    apply_vec(amps, &lay, op, &classify(op), false, true, &mut Vec::new());
}

/// Shared validation: checks the operator shape and the data length.
fn prepared(len: usize, dims: &[usize], targets: &[usize], op: &CMatrix) -> TargetLayout {
    let lay = layout(dims, targets);
    assert!(
        op.rows() == lay.block && op.cols() == lay.block,
        "operator dimension mismatch: got {}x{}, expected {block}x{block}",
        op.rows(),
        op.cols(),
        block = lay.block
    );
    assert_eq!(len, total_dim(dims), "state dimension mismatch");
    lay
}

/// Core vector kernel. With `transposed == false` computes
/// `out[r] = Σ_c op[r,c] · in[c]` per block (left action); with
/// `transposed == true` computes `out[c] = Σ_r in[r] · op[r,c]` (right action
/// on a row of a matrix, i.e. multiplication by the embedded operator from
/// the right).
///
/// `scratch` is a caller-owned gather buffer: callers invoking this kernel
/// many times (once per matrix row) pass the same buffer so the allocation
/// happens once per gate, not once per row.
fn apply_vec(
    amps: &mut [Complex],
    lay: &TargetLayout,
    op: &CMatrix,
    kind: &OpKind,
    transposed: bool,
    parallel_ok: bool,
    scratch: &mut Vec<Complex>,
) {
    let _ = parallel_ok;
    let block = lay.block;
    let offsets = &lay.offsets;
    match kind {
        OpKind::Identity => {}
        OpKind::Diagonal(d) => {
            // Diagonal operators are symmetric under transposition.
            lay.for_each_base(|base| {
                for (b, &off) in offsets.iter().enumerate() {
                    amps[base + off] *= d[b];
                }
            });
        }
        OpKind::Monomial { src, phase } => {
            scratch.resize(block, Complex::ZERO);
            let scratch = &mut scratch[..block];
            lay.for_each_base(|base| {
                for (b, &off) in offsets.iter().enumerate() {
                    scratch[b] = amps[base + off];
                }
                if transposed {
                    // out[src[r]] += in[r]·phase[r]; unwritten slots are 0.
                    for &off in offsets.iter() {
                        amps[base + off] = Complex::ZERO;
                    }
                    for (r, (&s, &ph)) in src.iter().zip(phase.iter()).enumerate() {
                        amps[base + offsets[s]] += scratch[r] * ph;
                    }
                } else {
                    for (r, (&s, &ph)) in src.iter().zip(phase.iter()).enumerate() {
                        amps[base + offsets[r]] = scratch[s] * ph;
                    }
                }
            });
        }
        OpKind::Dense => {
            #[cfg(feature = "parallel")]
            {
                // `parallel_ok` is false when the caller invokes this kernel
                // once per matrix row: spawning a thread scope per row would
                // cost far more than the row's work (the caller parallelises
                // across rows instead).
                if parallel_ok
                    && lay.other_total * block * block >= PARALLEL_THRESHOLD
                    && apply_vec_dense_parallel(amps, lay, op, transposed)
                {
                    return;
                }
            }
            if block == 2 && !transposed {
                let (u00, u01, u10, u11) = (op[(0, 0)], op[(0, 1)], op[(1, 0)], op[(1, 1)]);
                let off1 = offsets[1];
                lay.for_each_base(|base| {
                    let a = amps[base];
                    let b = amps[base + off1];
                    amps[base] = u00 * a + u01 * b;
                    amps[base + off1] = u10 * a + u11 * b;
                });
                return;
            }
            scratch.resize(block, Complex::ZERO);
            let scratch = &mut scratch[..block];
            let uflat = op.as_slice();
            lay.for_each_base(|base| {
                dense_block(amps, base, offsets, uflat, block, scratch, transposed);
            });
        }
    }
}

/// Gather, dense block multiply, scatter — one target block at `base`.
///
/// NOTE: `apply_vec_dense_parallel` (feature `parallel`) carries a raw-pointer
/// twin of this body — keep the two in sync when changing either.
#[inline]
fn dense_block(
    amps: &mut [Complex],
    base: usize,
    offsets: &[usize],
    uflat: &[Complex],
    block: usize,
    scratch: &mut [Complex],
    transposed: bool,
) {
    for (b, &off) in offsets.iter().enumerate() {
        scratch[b] = amps[base + off];
    }
    if transposed {
        for (j, &off) in offsets.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (r, &s) in scratch.iter().enumerate() {
                acc += s * uflat[r * block + j];
            }
            amps[base + off] = acc;
        }
    } else {
        for (r, &off) in offsets.iter().enumerate() {
            let row = &uflat[r * block..(r + 1) * block];
            let mut acc = Complex::ZERO;
            for (&uc, &s) in row.iter().zip(scratch.iter()) {
                acc += uc * s;
            }
            amps[base + off] = acc;
        }
    }
}

#[cfg(feature = "parallel")]
mod par {
    /// Raw pointer that may cross thread boundaries. Safety rests on the
    /// caller handing each thread a disjoint set of indices. The pointer is
    /// only reachable through [`SendPtr::get`], so edition-2021 disjoint
    /// closure capture grabs the (Send) wrapper, not the raw field.
    pub(super) struct SendPtr(*mut crate::complex::Complex);
    unsafe impl Send for SendPtr {}
    impl SendPtr {
        pub(super) fn new(ptr: *mut crate::complex::Complex) -> Self {
            SendPtr(ptr)
        }
        pub(super) fn get(&self) -> *mut crate::complex::Complex {
            self.0
        }
    }
    impl Clone for SendPtr {
        fn clone(&self) -> Self {
            SendPtr(self.0)
        }
    }
}

/// Worker count for the `parallel` feature: `QSIM_PARALLEL_THREADS` when set
/// (a testability/tuning override — results are identical for any value
/// because threads write disjoint index sets), otherwise the host parallelism.
///
/// Public so benchmark harnesses can label their reports with the exact
/// worker count the kernels will use, rather than re-deriving the policy.
#[cfg(feature = "parallel")]
pub fn parallel_threads() -> usize {
    std::env::var("QSIM_PARALLEL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Parallel dense path: splits the non-target odometer across threads.
/// Returns `false` when only one thread is available (caller falls back).
/// The per-base body is a raw-pointer twin of [`dense_block`] — keep the two
/// in sync when changing either.
///
/// Safety: the flat indices `base + offset` visited by distinct non-target
/// bases are disjoint (the target offsets and the non-target bases decompose
/// every flat index uniquely), so threads write disjoint elements.
#[cfg(feature = "parallel")]
fn apply_vec_dense_parallel(
    amps: &mut [Complex],
    lay: &TargetLayout,
    op: &CMatrix,
    transposed: bool,
) -> bool {
    let threads = parallel_threads().min(lay.other_total);
    if threads <= 1 {
        return false;
    }
    let block = lay.block;
    let uflat = op.as_slice();
    let ptr = par::SendPtr::new(amps.as_mut_ptr());
    let chunk = lay.other_total.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(lay.other_total);
            if lo >= hi {
                break;
            }
            let ptr = ptr.clone();
            let offsets = &lay.offsets;
            let (other_dims, other_strides) = (&lay.other_dims, &lay.other_strides);
            scope.spawn(move || {
                let data = ptr.get();
                let mut scratch = vec![Complex::ZERO; block];
                for_each_base_range(other_dims, other_strides, lo, hi, |base| {
                    for (b, &off) in offsets.iter().enumerate() {
                        scratch[b] = unsafe { *data.add(base + off) };
                    }
                    if transposed {
                        for (j, &off) in offsets.iter().enumerate() {
                            let mut acc = Complex::ZERO;
                            for (r, &s) in scratch.iter().enumerate() {
                                acc += s * uflat[r * block + j];
                            }
                            unsafe { *data.add(base + off) = acc };
                        }
                    } else {
                        for (r, &off) in offsets.iter().enumerate() {
                            let row = &uflat[r * block..(r + 1) * block];
                            let mut acc = Complex::ZERO;
                            for (&uc, &s) in row.iter().zip(scratch.iter()) {
                                acc += uc * s;
                            }
                            unsafe { *data.add(base + off) = acc };
                        }
                    }
                });
            });
        }
    });
    true
}

/// Left-multiplies a matrix by an embedded local operator in place:
/// `M → embed(op) · M`, without materialising `embed(op)`.
///
/// `M` has `total_dim(dims)` rows (its row index ranges over the composite
/// register) and any number of columns. Cost `O(rows · cols · block)`.
///
/// # Panics
///
/// Panics on target/operator shape mismatches, or if `mat.rows()` differs
/// from the product of `dims`.
pub fn left_multiply_matrix(mat: &mut CMatrix, dims: &[usize], targets: &[usize], op: &CMatrix) {
    let lay = prepared(mat.rows(), dims, targets, op);
    let ncols = mat.cols();
    let block = lay.block;
    let data = mat.as_mut_slice();
    match classify(op) {
        OpKind::Identity => {}
        OpKind::Diagonal(d) => {
            lay.for_each_base(|base| {
                for (b, &off) in lay.offsets.iter().enumerate() {
                    let row = &mut data[(base + off) * ncols..][..ncols];
                    for x in row {
                        *x *= d[b];
                    }
                }
            });
        }
        OpKind::Monomial { src, phase } => {
            let mut scratch = vec![Complex::ZERO; block * ncols];
            lay.for_each_base(|base| {
                for (b, &off) in lay.offsets.iter().enumerate() {
                    scratch[b * ncols..(b + 1) * ncols]
                        .copy_from_slice(&data[(base + off) * ncols..][..ncols]);
                }
                for (r, (&s, &ph)) in src.iter().zip(phase.iter()).enumerate() {
                    let out = &mut data[(base + lay.offsets[r]) * ncols..][..ncols];
                    for (o, &x) in out.iter_mut().zip(&scratch[s * ncols..(s + 1) * ncols]) {
                        *o = x * ph;
                    }
                }
            });
        }
        OpKind::Dense => {
            let mut scratch = vec![Complex::ZERO; block * ncols];
            lay.for_each_base(|base| {
                for (b, &off) in lay.offsets.iter().enumerate() {
                    scratch[b * ncols..(b + 1) * ncols]
                        .copy_from_slice(&data[(base + off) * ncols..][..ncols]);
                }
                for (r, &off) in lay.offsets.iter().enumerate() {
                    let out = &mut data[(base + off) * ncols..][..ncols];
                    let coeff = op[(r, 0)];
                    for (o, &x) in out.iter_mut().zip(&scratch[..ncols]) {
                        *o = coeff * x;
                    }
                    for c in 1..block {
                        let coeff = op[(r, c)];
                        if coeff.norm_sqr() == 0.0 {
                            continue;
                        }
                        for (o, &x) in out.iter_mut().zip(&scratch[c * ncols..(c + 1) * ncols]) {
                            *o += coeff * x;
                        }
                    }
                }
            });
        }
    }
}

/// Right-multiplies a matrix by an embedded local operator in place:
/// `M → M · embed(op)`, without materialising `embed(op)`.
///
/// `M` has `total_dim(dims)` columns (its column index ranges over the
/// composite register) and any number of rows. Cost `O(rows · cols · block)`.
///
/// # Panics
///
/// Panics on target/operator shape mismatches, or if `mat.cols()` differs
/// from the product of `dims`.
pub fn right_multiply_matrix(mat: &mut CMatrix, dims: &[usize], targets: &[usize], op: &CMatrix) {
    let lay = prepared(mat.cols(), dims, targets, op);
    let nrows = mat.rows();
    let ctotal = mat.cols();
    let kind = classify(op);
    // Row i of the product is (row i of M) · embed(op): the transposed vector
    // kernel applied to each (contiguous) row. Per-row parallelism inside
    // `apply_vec` is disabled — a thread scope per row would dwarf the row's
    // work — and the `parallel` feature splits across rows instead (rows are
    // disjoint `chunks_mut` slices, so this is safe code).
    #[cfg(feature = "parallel")]
    {
        let threads = parallel_threads().min(nrows);
        if threads > 1 && nrows * ctotal * lay.block >= PARALLEL_THRESHOLD {
            let rows_per_thread = nrows.div_ceil(threads);
            std::thread::scope(|scope| {
                let mut rest = mat.as_mut_slice();
                while !rest.is_empty() {
                    let take = (rows_per_thread * ctotal).min(rest.len());
                    let (chunk, tail) = rest.split_at_mut(take);
                    rest = tail;
                    let (lay, kind) = (&lay, &kind);
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        for row in chunk.chunks_mut(ctotal) {
                            apply_vec(row, lay, op, kind, true, false, &mut scratch);
                        }
                    });
                }
            });
            return;
        }
    }
    let _ = nrows;
    let mut scratch = Vec::new();
    for row in mat.as_mut_slice().chunks_mut(ctotal) {
        apply_vec(row, &lay, op, &kind, true, false, &mut scratch);
    }
}

/// Trace of an embedded monomial operator against a square matrix:
/// `tr(embed(A) · M)` where `A` is the block operator with exactly one
/// nonzero per row, `A[r, src[r]] = phase[r]`.
///
/// Permutation unitaries `U_π` (and SWAP in particular) are monomial, so this
/// is the `O(D)` stride walk behind the matrix-free SWAP/permutation tests:
/// `tr(embed(A)·M) = Σ_base Σ_r phase[r] · M[base+off_{src[r]}, base+off_r]`
/// visits each of the `D = total_dim(dims)` per-base block entries once —
/// no operator, embedded or block-local, is ever materialised.
///
/// # Panics
///
/// Panics if `M` is not square of dimension `total_dim(dims)`, or if
/// `src`/`phase` do not have one entry per target-block index.
pub fn monomial_embedded_trace(
    mat: &CMatrix,
    dims: &[usize],
    targets: &[usize],
    src: &[usize],
    phase: &[Complex],
) -> Complex {
    let lay = layout(dims, targets);
    assert_eq!(src.len(), lay.block, "monomial source map length mismatch");
    assert_eq!(
        phase.len(),
        lay.block,
        "monomial phase vector length mismatch"
    );
    assert!(
        mat.rows() == total_dim(dims) && mat.cols() == mat.rows(),
        "matrix dimension mismatch"
    );
    let offsets = &lay.offsets;
    let mut acc = Complex::ZERO;
    lay.for_each_base(|base| {
        for (r, (&s, &ph)) in src.iter().zip(phase.iter()).enumerate() {
            acc += ph * mat[(base + offsets[s], base + offsets[r])];
        }
    });
    acc
}

/// A partition of the target-block indices into equivalence classes:
/// `class_of[b]` is the class of block index `b` and `class_size[c]` the
/// number of block indices in class `c`.
///
/// The associated orthogonal projector `P[r, c] = [r ~ c] / |class(r)|`
/// averages each class. When the classes are the orbits of the register
/// digits under `S_k` (see [`crate::permutation::symmetric_classes`]), `P`
/// is exactly the symmetric-subspace projector `Π_sym = (1/k!) Σ_π U_π`, so
/// the [`project_classes_rows`]/[`project_classes_cols`] pair implements the
/// post-measurement effect `Π_sym ρ Π_sym` of the permutation test as an
/// in-place register symmetrisation — `O(D²)` with no `k!` factor and no
/// projector allocation.
#[derive(Clone, Debug)]
pub struct BlockClasses {
    /// Class id of each target-block index.
    pub class_of: Vec<usize>,
    /// Number of block indices in each class.
    pub class_size: Vec<usize>,
}

impl BlockClasses {
    fn validate(&self, block: usize) {
        assert_eq!(self.class_of.len(), block, "class map length mismatch");
        assert!(
            self.class_of.iter().all(|&c| c < self.class_size.len()),
            "class id out of range"
        );
    }
}

/// Applies the class-averaging projector of `classes` to a single vector over
/// the composite register, in place: `v → embed(P) v` (or `(I − P) v` with
/// `complement`). Each amplitude is visited a constant number of times: `O(D)`.
pub fn project_classes_vector(
    amps: &mut [Complex],
    dims: &[usize],
    targets: &[usize],
    classes: &BlockClasses,
    complement: bool,
) {
    let lay = layout(dims, targets);
    classes.validate(lay.block);
    assert_eq!(amps.len(), total_dim(dims), "state dimension mismatch");
    let nclasses = classes.class_size.len();
    let mut sums = vec![Complex::ZERO; nclasses];
    project_vector_impl(amps, &lay, classes, complement, &mut sums);
}

/// Shared per-base class-averaging body for vectors and matrix rows.
fn project_vector_impl(
    amps: &mut [Complex],
    lay: &TargetLayout,
    classes: &BlockClasses,
    complement: bool,
    sums: &mut [Complex],
) {
    let offsets = &lay.offsets;
    lay.for_each_base(|base| {
        for s in sums.iter_mut() {
            *s = Complex::ZERO;
        }
        for (b, &off) in offsets.iter().enumerate() {
            sums[classes.class_of[b]] += amps[base + off];
        }
        for (b, &off) in offsets.iter().enumerate() {
            let c = classes.class_of[b];
            let avg = sums[c] * Complex::real(1.0 / classes.class_size[c] as f64);
            if complement {
                amps[base + off] -= avg;
            } else {
                amps[base + off] = avg;
            }
        }
    });
}

/// Squared norm of the class-averaging projection of a vector, without
/// materialising the projected vector: `‖embed(P) v‖² = Σ_class |Σ v|²/|class|`
/// summed per base. This is the acceptance probability of the permutation
/// test on a pure state when `classes` are the `S_k` digit orbits.
pub fn class_projection_weight(
    amps: &[Complex],
    dims: &[usize],
    targets: &[usize],
    classes: &BlockClasses,
) -> f64 {
    let lay = layout(dims, targets);
    classes.validate(lay.block);
    assert_eq!(amps.len(), total_dim(dims), "state dimension mismatch");
    let offsets = &lay.offsets;
    let nclasses = classes.class_size.len();
    let mut sums = vec![Complex::ZERO; nclasses];
    let mut weight = 0.0;
    lay.for_each_base(|base| {
        for s in sums.iter_mut() {
            *s = Complex::ZERO;
        }
        for (b, &off) in offsets.iter().enumerate() {
            sums[classes.class_of[b]] += amps[base + off];
        }
        for (c, &s) in sums.iter().enumerate() {
            weight += s.norm_sqr() / classes.class_size[c] as f64;
        }
    });
    weight
}

/// Trace of the embedded class-averaging projector against a square matrix:
/// `tr(embed(P)·M) = Σ_base Σ_class (Σ_{r,c ∈ class} M[base+off_c, base+off_r]) / |class|`.
///
/// When the classes are the `S_k` digit orbits this equals
/// `(1/k!) Σ_π tr(embed(U_π)·M)` — the permutation-test acceptance — with the
/// `k!` monomial gathers regrouped by orbit, so the cost per base drops from
/// `k!·block` to `Σ_orbit |orbit|² ≤ k!·block` and the permutations are never
/// enumerated.
pub fn class_projection_trace(
    mat: &CMatrix,
    dims: &[usize],
    targets: &[usize],
    classes: &BlockClasses,
) -> Complex {
    let lay = layout(dims, targets);
    classes.validate(lay.block);
    assert!(
        mat.rows() == total_dim(dims) && mat.cols() == mat.rows(),
        "matrix dimension mismatch"
    );
    // Group the block offsets by class once per call.
    let nclasses = classes.class_size.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nclasses];
    for (b, &c) in classes.class_of.iter().enumerate() {
        members[c].push(lay.offsets[b]);
    }
    let mut acc = Complex::ZERO;
    lay.for_each_base(|base| {
        for (c, offs) in members.iter().enumerate() {
            let mut class_sum = Complex::ZERO;
            for &or in offs {
                for &oc in offs {
                    class_sum += mat[(base + oc, base + or)];
                }
            }
            acc += class_sum * Complex::real(1.0 / classes.class_size[c] as f64);
        }
    });
    acc
}

/// Left-multiplies a matrix by the embedded class-averaging projector in
/// place: `M → embed(P) · M` (or `(I − P) · M` with `complement`), where `M`
/// has `total_dim(dims)` rows. Cost `O(rows · cols)` — no `block` factor.
pub fn project_classes_rows(
    mat: &mut CMatrix,
    dims: &[usize],
    targets: &[usize],
    classes: &BlockClasses,
    complement: bool,
) {
    let lay = layout(dims, targets);
    classes.validate(lay.block);
    assert_eq!(mat.rows(), total_dim(dims), "matrix row dimension mismatch");
    let ncols = mat.cols();
    let nclasses = classes.class_size.len();
    let offsets = &lay.offsets;
    let data = mat.as_mut_slice();
    let mut sums = vec![Complex::ZERO; nclasses * ncols];
    lay.for_each_base(|base| {
        for s in sums.iter_mut() {
            *s = Complex::ZERO;
        }
        for (b, &off) in offsets.iter().enumerate() {
            let c = classes.class_of[b];
            let row = &data[(base + off) * ncols..][..ncols];
            for (acc, &x) in sums[c * ncols..(c + 1) * ncols].iter_mut().zip(row) {
                *acc += x;
            }
        }
        for (b, &off) in offsets.iter().enumerate() {
            let c = classes.class_of[b];
            let inv = Complex::real(1.0 / classes.class_size[c] as f64);
            let row = &mut data[(base + off) * ncols..][..ncols];
            for (x, &s) in row.iter_mut().zip(&sums[c * ncols..(c + 1) * ncols]) {
                if complement {
                    *x -= s * inv;
                } else {
                    *x = s * inv;
                }
            }
        }
    });
}

/// Right-multiplies a matrix by the embedded class-averaging projector in
/// place: `M → M · embed(P)` (or `M · (I − P)` with `complement`), where `M`
/// has `total_dim(dims)` columns. `P` is symmetric, so this is the row-wise
/// application of [`project_classes_vector`]. Cost `O(rows · cols)`.
pub fn project_classes_cols(
    mat: &mut CMatrix,
    dims: &[usize],
    targets: &[usize],
    classes: &BlockClasses,
    complement: bool,
) {
    let lay = layout(dims, targets);
    classes.validate(lay.block);
    let ctotal = total_dim(dims);
    assert_eq!(mat.cols(), ctotal, "matrix column dimension mismatch");
    let nclasses = classes.class_size.len();
    let mut sums = vec![Complex::ZERO; nclasses];
    for row in mat.as_mut_slice().chunks_mut(ctotal) {
        project_vector_impl(row, &lay, classes, complement, &mut sums);
    }
}

/// Conjugates a square matrix by an embedded local operator in place:
/// `M → embed(op) · M · embed(op)†`, without materialising `embed(op)`.
///
/// This is the density-matrix update `ρ → U ρ U†` for a local unitary, and
/// works for arbitrary (non-unitary) local operators such as measurement
/// effects. Cost `O(D² · block)` versus `O(D³)` for embed-then-matmul.
///
/// # Panics
///
/// Panics on target/operator shape mismatches, or if `mat` is not square of
/// dimension `total_dim(dims)`.
pub fn conjugate_matrix(mat: &mut CMatrix, dims: &[usize], targets: &[usize], op: &CMatrix) {
    assert_eq!(
        mat.rows(),
        mat.cols(),
        "conjugation requires a square matrix"
    );
    left_multiply_matrix(mat, dims, targets, op);
    right_multiply_matrix(mat, dims, targets, &op.adjoint());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::linalg::CVector;
    use crate::random::RandomStateGenerator;

    #[test]
    fn strides_row_major() {
        assert_eq!(subsystem_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(subsystem_strides(&[5]), vec![1]);
        assert_eq!(subsystem_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn layout_offsets_match_flat_index() {
        use crate::state::flat_index;
        let dims = [2, 3, 2, 2];
        let targets = [2, 0];
        let lay = layout(&dims, &targets);
        assert_eq!(lay.block, 4);
        // offsets[b] must equal flat_index with the target multi-index b and
        // zeros elsewhere.
        for b in 0..lay.block {
            let (b0, b1) = (b / 2, b % 2);
            let mut multi = [0usize; 4];
            multi[2] = b0;
            multi[0] = b1;
            assert_eq!(lay.offsets[b], flat_index(&dims, &multi));
        }
        assert_eq!(lay.other_total, 6);
    }

    #[test]
    fn odometer_visits_every_base_once() {
        let dims = [2, 3, 2];
        let lay = layout(&dims, &[1]);
        let mut seen = Vec::new();
        lay.for_each_base(|b| seen.push(b));
        let mut expected: Vec<usize> = Vec::new();
        for i in 0..2 {
            for k in 0..2 {
                expected.push(i * 6 + k);
            }
        }
        seen.sort_unstable();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn odometer_range_splits_cleanly() {
        let dims = [3usize, 2, 2];
        let strides = subsystem_strides(&dims);
        let mut all = Vec::new();
        for_each_base_range(&dims, &strides, 0, 12, |b| all.push(b));
        for split in [1, 5, 7, 11] {
            let mut lo_part = Vec::new();
            let mut hi_part = Vec::new();
            for_each_base_range(&dims, &strides, 0, split, |b| lo_part.push(b));
            for_each_base_range(&dims, &strides, split, 12, |b| hi_part.push(b));
            lo_part.extend(hi_part);
            assert_eq!(lo_part, all, "split at {split}");
        }
    }

    #[test]
    fn swap_gate_classified_as_monomial() {
        match classify(&gates::swap(3)) {
            OpKind::Monomial { .. } => {}
            _ => panic!("swap should classify as monomial"),
        }
        match classify(&CMatrix::identity(4)) {
            OpKind::Identity => {}
            _ => panic!("identity should classify as identity"),
        }
        match classify(&gates::hadamard()) {
            OpKind::Dense => {}
            _ => panic!("hadamard should classify as dense"),
        }
    }

    #[test]
    fn conjugate_matches_explicit_embedding() {
        let mut gen = RandomStateGenerator::new(11);
        let dims = [2usize, 3, 2];
        let targets = [2usize, 0];
        let u = gen.random_unitary(4);
        let rho = gen.random_density(&dims, 2);
        let mut fast = rho.matrix().clone();
        conjugate_matrix(&mut fast, &dims, &targets, &u);
        let full = crate::density::embed_operator(&dims, &targets, &u);
        let slow = full.matmul(rho.matrix()).matmul(&full.adjoint());
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn right_multiply_matches_explicit_embedding() {
        let mut gen = RandomStateGenerator::new(12);
        let dims = [2usize, 2, 3];
        let targets = [1usize, 2];
        let u = gen.random_unitary(6);
        let m = CMatrix::from_fn(12, 12, |i, j| Complex::new(i as f64, j as f64));
        let mut fast = m.clone();
        right_multiply_matrix(&mut fast, &dims, &targets, &u);
        let slow = m.matmul(&crate::density::embed_operator(&dims, &targets, &u));
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn diagonal_fast_path_matches_dense() {
        let dims = [2usize, 2, 2];
        let phase = CMatrix::from_rows(&[
            vec![Complex::ONE, Complex::ZERO],
            vec![Complex::ZERO, Complex::I],
        ]);
        let mut gen = RandomStateGenerator::new(13);
        let psi = gen.random_pure(&dims);
        let mut fast: Vec<Complex> = psi.amplitudes().as_slice().to_vec();
        apply_to_state_vector(&mut fast, &dims, &[1], &phase);
        let slow = crate::density::embed_operator(&dims, &[1], &phase).apply(psi.amplitudes());
        assert!(CVector::new(fast).approx_eq(&slow, 1e-12));
    }
}
